#!/usr/bin/env python3
"""Example 1 from the paper: recurring log-processing aggregation.

A data center collects click logs continuously; a recurring query
aggregates the recent past over a dimension (here: content object) to
detect emerging patterns. This example runs the same query on plain
Hadoop (fresh job per window) and on Redoop, and prints the per-window
response times side by side — a miniature of the paper's Figure 6.

Run:  python examples/log_processing.py
"""

from repro.bench import (
    ExperimentConfig,
    build_workload,
    format_phase_split,
    format_response_table,
    format_speedup_summary,
    run_hadoop_series,
    run_redoop_series,
)
from repro.hadoop import ClusterConfig


def main() -> None:
    # A 12-node cluster; each window covers 1 virtual hour of logs and
    # slides by 6 minutes (overlap 0.9 — mostly re-used data).
    config = ExperimentConfig(
        kind="aggregation",
        win=3600.0,
        overlap=0.9,
        num_windows=6,
        rate=4_000_000.0,  # 4 MB/s of log lines
        record_size=500_000,
        num_reducers=24,
        cluster_config=ClusterConfig(num_nodes=12),
        seed=42,
    )

    print("generating synthetic WorldCup-style click logs ...")
    workload = build_workload(config)
    total_gb = sum(
        sum(r.size for r in records) for _b, records in workload["wcc"]
    ) / 2**30
    print(f"  {total_gb:.1f} virtual GB across {len(workload['wcc'])} batches\n")

    print("running plain Hadoop (one fresh job per window) ...")
    hadoop = run_hadoop_series(config, workload=workload)
    print("running Redoop (window-aware caching) ...\n")
    redoop = run_redoop_series(config, workload=workload)

    series = {"hadoop": hadoop, "redoop": redoop}
    print(format_response_table(series, title="per-window response time (s)"))
    print()
    print(format_phase_split(series, title="total shuffle/reduce time (s)"))
    print()
    print(format_speedup_summary(series, title="steady-state speedup"))

    assert hadoop.output_digests == redoop.output_digests
    print("\nboth systems produced identical window answers ✔")


if __name__ == "__main__":
    main()
