#!/usr/bin/env python3
"""Example 3 from the paper: clickstream analysis under traffic spikes.

Ad brokers rebuild predictive models with recurring queries over
clickstreams whose volume fluctuates — a flash sale doubles traffic
for a while, then it subsides. This example reproduces the paper's
adaptive-execution story (Sec. 3.3 / Fig. 8): when the Execution
Profiler detects fluctuation, Redoop switches to *proactive* mode and
maps arriving sub-panes immediately, so the window-close work shrinks
to the final sub-pane plus the merge.

Run:  python examples/clickstream_adaptive.py
"""


from repro.bench import (
    ExperimentConfig,
    build_workload,
    format_response_table,
    format_speedup_summary,
    run_hadoop_series,
    run_redoop_series,
)
from repro.hadoop import ClusterConfig
from repro.workloads import paper_spike_windows


def main() -> None:
    num_windows = 8
    config = ExperimentConfig(
        kind="aggregation",
        win=3600.0,
        overlap=0.25,  # mostly fresh data each window: spikes hurt most
        num_windows=num_windows,
        rate=5_000_000.0,
        record_size=500_000,
        num_reducers=24,
        cluster_config=ClusterConfig(num_nodes=12),
        seed=17,
        spiked_recurrences=frozenset(paper_spike_windows(num_windows)),
    )

    print(
        "clickstream aggregation, win=1h slide=45min; windows "
        f"{sorted(config.spiked_recurrences)} carry doubled traffic\n"
    )
    workload = build_workload(config)

    print("running plain Hadoop ...")
    hadoop = run_hadoop_series(config, workload=workload)
    print("running Redoop without adaptivity ...")
    plain = run_redoop_series(config, workload=workload)
    print("running Redoop with adaptive/proactive execution ...\n")
    adaptive = run_redoop_series(config, label="adaptive", adaptive=True,
                                 workload=workload)

    series = {"hadoop": hadoop, "redoop": plain, "adaptive": adaptive}
    print(format_response_table(series, title="per-window response time (s)"))
    print()
    print(format_speedup_summary(series, title="speedups (windows 2+)"))
    print(
        "\nthe adaptive runtime detects the fluctuation after the first "
        "spike and pre-processes arriving sub-panes; spiked windows then "
        "cost barely more than quiet ones."
    )

    assert plain.output_digests == adaptive.output_digests
    print("adaptivity changed no answers ✔")


if __name__ == "__main__":
    main()
