#!/usr/bin/env python3
"""Example 2 from the paper: news-feed updates via a windowed join.

LinkedIn-style feed generation joins member-activity streams to build
periodic updates ("which company do most of your connections work
at?"). Here two sensor-style sources play the member streams: the
recurring query equi-joins them on a shared key over a sliding window,
re-executing each slide.

The example shows Redoop's pane-pair machinery in action: the first
window computes every pane combination; later windows reuse cached
pair outputs and compute only combinations involving new panes.

Run:  python examples/news_feed_join.py
"""

from repro.core import RecurringQuery, RedoopRuntime, WindowSpec
from repro.hadoop import BatchFile, Cluster, MapReduceJob, Record, small_test_config


def make_records(source: str, t0: float, t1: float, n: int, seed: int):
    import random

    rng = random.Random((source, seed).__hash__())
    records = []
    for i in range(n):
        member = rng.randrange(8)
        payload = (
            {"src": source, "member": member, "company": f"co{rng.randrange(4)}"}
            if source == "profiles"
            else {"src": source, "member": member, "action": rng.choice(
                ["connect", "endorse", "post"]
            )}
        )
        records.append(
            Record(ts=t0 + i * (t1 - t0) / n, value=payload, size=200)
        )
    return records


def mapper(record):
    # Tag each record with its stream so the reducer can split sides.
    yield record.value["member"], (record.value["src"], record.value)


def reducer(member, values):
    profiles = [v for src, v in values if src == "profiles"]
    actions = [v for src, v in values if src == "activity"]
    for profile in profiles:
        for action in actions:
            yield member, (profile["company"], action["action"])


def main() -> None:
    job = MapReduceJob(
        name="feed-join", mapper=mapper, reducer=reducer, num_reducers=4
    )
    spec = WindowSpec(win=40.0, slide=10.0)  # 4 panes, 1 new per slide
    query = RecurringQuery(
        name="feed-join",
        job=job,
        windows={"profiles": spec, "activity": spec},
        # default finalize: concatenate pane-pair join outputs
    )

    cluster = Cluster(small_test_config(), seed=9)
    runtime = RedoopRuntime(cluster)
    runtime.register_query(query, {"profiles": 400_000.0, "activity": 400_000.0})

    for i in range(7):
        t0, t1 = i * 10.0, (i + 1) * 10.0
        for source in ("profiles", "activity"):
            batch = BatchFile(
                path=f"/batches/{source}/{i}", source=source, t_start=t0, t_end=t1
            )
            runtime.ingest(batch, make_records(source, t0, t1, n=40, seed=i))

    print("recurring feed join: win=40s, slide=10s (overlap 0.75)\n")
    for recurrence in (1, 2, 3, 4):
        result = runtime.run_recurrence("feed-join", recurrence)
        computed = result.counters.get("join.combos_computed")
        reused = result.counters.get("cache.rout_hits")
        print(
            f"window {recurrence}: response {result.response_time:6.2f}s, "
            f"{len(result.output):4d} joined updates, "
            f"pane pairs computed={computed:.0f} reused-from-cache={reused:.0f}"
        )

    print(
        "\nwindow 1 computes all 16 pane pairs (x4 reduce partitions = 64 "
        "tasks); each later window only the 7 pairs touching its new "
        "panes — the other 9 come straight from the reduce-output cache."
    )


if __name__ == "__main__":
    main()
