#!/usr/bin/env python3
"""Fault-tolerance walk-through: losing caches and a whole node.

Redoop's caches live on task nodes' *local* file systems — outside
HDFS replication — so the paper adds dedicated recovery (Sec. 5):
metadata rollback plus task re-execution. This demo exercises both
failure domains on a live runtime and shows that answers never change
and caches rebuild themselves.

Run:  python examples/fault_tolerance_demo.py
"""

import random

from repro.core import (
    RecoveryManager,
    RecurringQuery,
    RedoopRuntime,
    WindowSpec,
    merging_finalizer,
)
from repro.hadoop import (
    BatchFile,
    Cluster,
    FaultInjector,
    MapReduceJob,
    Record,
    small_test_config,
)


def mapper(record):
    yield record.value, 1


def reducer(key, values):
    yield key, sum(values)


def feed(runtime, upto, batch_seconds=10.0):
    i, t = 0, 0.0
    while t < upto - 1e-9:
        rng = random.Random(i)
        records = [
            Record(ts=t + j * batch_seconds / 30, value=f"k{rng.randrange(6)}", size=100)
            for j in range(30)
        ]
        runtime.ingest(
            BatchFile(path=f"/b/{i}", source="clicks", t_start=t, t_end=t + batch_seconds),
            records,
        )
        i += 1
        t += batch_seconds


def cache_count(runtime):
    return sum(len(r.live_entries()) for r in runtime.registries().values())


def main() -> None:
    job = MapReduceJob(
        name="agg", mapper=mapper, reducer=reducer, combiner=reducer, num_reducers=4
    )
    query = RecurringQuery(
        name="agg",
        job=job,
        windows={"clicks": WindowSpec(win=40.0, slide=10.0)},
        finalize=merging_finalizer(sum),
    )
    runtime = RedoopRuntime(Cluster(small_test_config(), seed=5))
    runtime.register_query(query, {"clicks": 500_000.0})
    recovery = RecoveryManager(runtime)
    feed(runtime, 90.0)

    r1 = runtime.run_recurrence("agg", 1)
    print(f"window 1: response {r1.response_time:.2f}s, "
          f"{cache_count(runtime)} cache entries on the cluster")

    # --- failure 1: half the panes lose their caches -------------------
    injector = FaultInjector(cache_loss_fraction=0.5, seed=2)
    destroyed = recovery.inject_pane_cache_failures(injector)
    lost_pids = sorted({c.pid for c in destroyed})
    print(f"\ninjected cache failure: destroyed caches of panes {lost_pids}")
    print(f"  cache entries now: {cache_count(runtime)}")

    r2 = runtime.run_recurrence("agg", 2)
    print(f"window 2: response {r2.response_time:.2f}s "
          f"(re-mapped {r2.counters.get('panes.processed'):.0f} panes, "
          f"reused {r2.counters.get('cache.pane_hits'):.0f} from cache)")
    print(f"  cache entries rebuilt: {cache_count(runtime)}")

    # --- failure 2: a slave node dies ----------------------------------
    hosting = sorted({c.node_id for c in recovery.live_caches()})
    victim = hosting[0]
    lost = recovery.fail_node(victim)
    print(f"\nnode {victim} failed: {len(lost)} cache partitions lost, "
          "HDFS re-replicated its blocks")

    r3 = runtime.run_recurrence("agg", 3)
    print(f"window 3: response {r3.response_time:.2f}s — recovered "
          "transparently; caches re-created on surviving nodes")

    recovery.recover_node(victim)
    print(f"node {victim} rejoined (empty local state)")

    # The recovered system still produces correct answers.
    r4 = runtime.run_recurrence("agg", 4)
    total = sum(v for _k, v in r4.output)
    print(f"\nwindow 4: {total} records aggregated, "
          f"{len(r4.output)} keys — all correct ✔")


if __name__ == "__main__":
    main()
