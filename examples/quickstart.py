#!/usr/bin/env python3
"""Quickstart: a recurring word-count on the Redoop runtime.

Demonstrates the full public API in ~60 lines:

1. define a MapReduce job (mapper / combiner / reducer),
2. wrap it in a RecurringQuery with window constraints (win, slide)
   and a finalize function that merges per-pane partial counts,
3. register it with a RedoopRuntime on a simulated cluster,
4. stream batches in and execute recurrences.

Run:  python examples/quickstart.py
"""

import random

from repro.core import RecurringQuery, RedoopRuntime, WindowSpec, merging_finalizer
from repro.hadoop import BatchFile, Cluster, MapReduceJob, Record, small_test_config

WORDS = ["redoop", "hadoop", "window", "pane", "cache", "query"]


def mapper(record):
    """One record in, (word, 1) pairs out — classic word count."""
    for word in record.value.split():
        yield word, 1


def reducer(key, values):
    yield key, sum(values)


def make_batch(index: int, t0: float, t1: float, n: int = 60):
    rng = random.Random(index)
    records = [
        Record(
            ts=t0 + i * (t1 - t0) / n,
            value=" ".join(rng.choices(WORDS, k=3)),
            size=100,
        )
        for i in range(n)
    ]
    batch = BatchFile(
        path=f"/batches/logs/{index:04d}", source="logs", t_start=t0, t_end=t1
    )
    return batch, records


def main() -> None:
    job = MapReduceJob(
        name="wordcount",
        mapper=mapper,
        reducer=reducer,
        combiner=reducer,
        num_reducers=4,
    )
    # Process the last 60 seconds of logs, every 20 seconds.
    query = RecurringQuery(
        name="wordcount",
        job=job,
        windows={"logs": WindowSpec(win=60.0, slide=20.0)},
        finalize=merging_finalizer(sum),  # per-pane counts add up
    )

    cluster = Cluster(small_test_config(), seed=1)
    runtime = RedoopRuntime(cluster)
    runtime.register_query(query, {"logs": 500_000.0})

    # Stream six 20-second batches, executing whenever a window closes.
    for i in range(6):
        batch, records = make_batch(i, i * 20.0, (i + 1) * 20.0)
        runtime.ingest(batch, records)

    for recurrence in (1, 2, 3, 4):
        result = runtime.run_recurrence("wordcount", recurrence)
        window = result.window_bounds["logs"]
        top = sorted(result.output, key=lambda kv: -kv[1])[:3]
        print(
            f"window {recurrence} [{window[0]:4.0f}s, {window[1]:4.0f}s): "
            f"response {result.response_time:6.2f}s  "
            f"top words: {', '.join(f'{w}={c}' for w, c in top)}"
        )
    cached_kb = runtime.counters.get("cache.bytes_written") / 1024
    print(f"\ntotal cache written across recurrences: {cached_kb:.0f} KB")


if __name__ == "__main__":
    main()
