#!/usr/bin/env python3
"""Declarative recurring queries with RecurringQueryBuilder.

Hand-writing a Redoop query means keeping the mapper, reducer, and
finalize functions algebraically consistent — get one wrong and the
incremental answers silently diverge from the from-scratch ones. The
builder generates all three from a declaration, and this example runs
the result on the runtime with the due-time execution loop.

Run:  python examples/query_builder.py
"""

import random

from repro.core import RecurringQueryBuilder, RedoopRuntime
from repro.hadoop import BatchFile, Cluster, Record, small_test_config


def make_batch(i: int, t0: float, t1: float, n: int = 40):
    rng = random.Random(i)
    records = [
        Record(
            ts=t0 + j * (t1 - t0) / n,
            value={
                "region": rng.choice(["eu", "us", "apac"]),
                "bytes": rng.randrange(200, 9_000),
                "client": f"c{rng.randrange(12)}",
            },
            size=120,
        )
        for j in range(n)
    ]
    return (
        BatchFile(path=f"/b/{i}", source="clicks", t_start=t0, t_end=t1),
        records,
    )


def main() -> None:
    # "Every 15 s, over the last 45 s of clicks, per region: request
    # count, total and average payload, and distinct clients — but only
    # for responses larger than 1 KB."
    query = (
        RecurringQueryBuilder("traffic", source="clicks", win=45.0, slide=15.0)
        .key("region")
        .where(lambda v: v["bytes"] > 1_000)
        .count("requests")
        .sum("bytes", "volume")
        .avg("bytes", "avg_bytes")
        .distinct("client", "clients")
        .build(num_reducers=4)
    )

    runtime = RedoopRuntime(Cluster(small_test_config(), seed=21))
    runtime.register_query(query, {"clicks": 400_000.0})

    # Stream batches and let the runtime fire whatever is due.
    now = 0.0
    for i in range(6):
        batch, records = make_batch(i, i * 15.0, (i + 1) * 15.0)
        runtime.ingest(batch, records)
        now = (i + 1) * 15.0
        for result in runtime.run_due_recurrences(now):
            print(
                f"window {result.recurrence} "
                f"[{result.window_bounds['clicks'][0]:3.0f}s,"
                f"{result.window_bounds['clicks'][1]:3.0f}s) "
                f"response {result.response_time:5.2f}s"
            )
            for region, row in sorted(result.output):
                print(
                    f"    {region:5} requests={row['requests']:3d} "
                    f"volume={row['volume']:7d} "
                    f"avg={row['avg_bytes']:7.1f} "
                    f"clients={row['clients']:2d}"
                )

    print(
        "\nthe builder guarantees the reducer and finalizer agree, so "
        "cached pane partials merge into exactly the from-scratch answer."
    )


if __name__ == "__main__":
    main()
