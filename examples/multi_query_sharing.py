#!/usr/bin/env python3
"""Multi-query sharing: one source, several windows, one set of panes.

The Semantic Analyzer plans partitioning for *all* registered queries
(Sec. 3.1): a source read by a 40s/10s query and a 60s/20s query is
packed once at the 10-second GCD pane. Queries running the *same job*
additionally share their reduce-input/output caches, and the cache
controller's doneQueryMask (Sec. 4.2, Table 2) holds each cache until
every query has finished with it.

Run:  python examples/multi_query_sharing.py
"""

import random

from repro.core import RecurringQuery, RedoopRuntime, WindowSpec, merging_finalizer
from repro.hadoop import BatchFile, Cluster, MapReduceJob, Record, small_test_config


def mapper(record):
    yield record.value["page"], 1


def reducer(key, values):
    yield key, sum(values)


def feed(runtime, upto, batch_seconds=10.0):
    i, t = 0, 0.0
    while t < upto - 1e-9:
        rng = random.Random(i)
        records = [
            Record(
                ts=t + j * batch_seconds / 50,
                value={"page": f"/p{rng.randrange(8)}"},
                size=100,
            )
            for j in range(50)
        ]
        runtime.ingest(
            BatchFile(path=f"/b/{i}", source="hits", t_start=t, t_end=t + batch_seconds),
            records,
        )
        i += 1
        t += batch_seconds


def main() -> None:
    # ONE job object shared by two queries with different windows.
    job = MapReduceJob(
        name="page-hits", mapper=mapper, reducer=reducer,
        combiner=reducer, num_reducers=4,
    )
    hourly = RecurringQuery(
        name="hits-40s", job=job,
        windows={"hits": WindowSpec(win=40.0, slide=10.0)},
        finalize=merging_finalizer(sum),
    )
    daily = RecurringQuery(
        name="hits-60s", job=job,
        windows={"hits": WindowSpec(win=60.0, slide=20.0)},
        finalize=merging_finalizer(sum),
    )

    runtime = RedoopRuntime(Cluster(small_test_config(), seed=4))
    runtime.register_query(hourly, {"hits": 500_000.0})
    runtime.register_query(daily, {"hits": 500_000.0})

    shared_pane = runtime._states["hits-40s"].spec("hits").pane_seconds
    print(f"shared pane size across both queries: {shared_pane:.0f}s "
          "(GCD of 40, 10, 60, 20)\n")

    feed(runtime, 80.0)
    pane_files = runtime.cluster.hdfs.glob("/panes/hits/*")
    print(f"the source was packed ONCE: {len(pane_files)} pane files serve "
          "both queries\n")

    # Execute recurrences in due-time order (40s-query windows 1 and 2
    # are due at t=40 and t=50; the 60s-query's first window at t=60).
    r1 = runtime.run_recurrence("hits-40s", 1)
    print(f"hits-40s window 1 (due t=40): response {r1.response_time:5.2f}s, "
          f"pane cache hits {r1.counters.get('cache.pane_hits'):.0f} "
          "(cold start)")

    r2 = runtime.run_recurrence("hits-40s", 2)
    print(f"hits-40s window 2 (due t=50): response {r2.response_time:5.2f}s, "
          f"pane cache hits {r2.counters.get('cache.pane_hits'):.0f}")

    r3 = runtime.run_recurrence("hits-60s", 1)
    print(f"hits-60s window 1 (due t=60): response {r3.response_time:5.2f}s, "
          f"pane cache hits {r3.counters.get('cache.pane_hits'):.0f} "
          "of 6 panes reused from hits-40s")

    print(
        "\nbecause both queries run the same job, the 60s query's first "
        "window found 5 of its 6 panes already cached by the 40s query — "
        "only the newest pane needed map+shuffle. The doneQueryMask keeps "
        "each pane cached until BOTH queries have moved past it."
    )


if __name__ == "__main__":
    main()
