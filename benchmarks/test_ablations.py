"""Ablation benches for the design choices DESIGN.md calls out.

Three ablations isolate individual Redoop mechanisms:

* **pane headers** (Sec. 3.2) — reading one pane out of a shared
  multi-pane file via the header vs scanning the whole file;
* **cache levels** (Sec. 4) — reduce-input + reduce-output caching vs
  input-only vs no caching at all;
* **cache-aware scheduling** (Sec. 4.3, Eq. 4) — Eq. 4 locality vs a
  deliberately cache-blind placement that rotates partitions away from
  their caches every window.
"""

from __future__ import annotations


from repro.bench import (
    ablation_cache_levels,
    ablation_pane_headers,
    ablation_scheduler,
    format_response_table,
)

from .conftest import emit


def test_ablation_pane_headers(benchmark, bench_scale):
    series = benchmark.pedantic(
        ablation_pane_headers, kwargs=dict(scale=bench_scale), rounds=1,
        iterations=1,
    )
    emit(
        format_response_table(
            series, title="Ablation: multi-pane file headers on/off"
        )
    )
    with_h = series["with-headers"].total_response()
    without = series["without-headers"].total_response()
    assert series["with-headers"].output_digests == series[
        "without-headers"
    ].output_digests
    # Headers avoid scanning sibling panes in shared files.
    assert with_h < without


def test_ablation_cache_levels(benchmark, bench_scale):
    series = benchmark.pedantic(
        ablation_cache_levels, kwargs=dict(scale=bench_scale), rounds=1,
        iterations=1,
    )
    emit(
        format_response_table(
            series, title="Ablation: cache levels (both / input-only / none)"
        )
    )
    both = series["both-caches"].avg_response(skip_first=True)
    input_only = series["input-only"].avg_response(skip_first=True)
    none = series["no-caching"].avg_response(skip_first=True)
    assert series["both-caches"].output_digests == series[
        "no-caching"
    ].output_digests
    # Each cache level buys additional time.
    assert both <= input_only * 1.01
    assert input_only < none
    assert both < none


def test_ablation_scheduler(benchmark, bench_scale):
    series = benchmark.pedantic(
        ablation_scheduler, kwargs=dict(scale=bench_scale), rounds=1,
        iterations=1,
    )
    emit(
        format_response_table(
            series, title="Ablation: cache-aware vs cache-blind scheduling"
        )
    )
    aware = series["cache-aware"].avg_response(skip_first=True)
    blind = series["cache-blind"].avg_response(skip_first=True)
    # Eq. 4's locality term is worth real time once caches exist.
    assert aware < blind
