"""Figure 8: adaptive input partitioning under workload fluctuations.

Windows 1, 4, 7, 10 carry the normal load; the rest are doubled
(paper Sec. 6.3). Three systems per overlap: plain Hadoop, Redoop
without adaptivity, Redoop with the adaptive/proactive strategy.

Expected shape: adaptive Redoop smooths the spikes by starting early
on arriving sub-panes; at low overlap it beats Hadoop by ~2.7x on
average while non-adaptive Redoop only has a slight edge; at high
overlap caching already dominates and adaptivity adds little.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench import (
    aggregation_config,
    build_workload,
    format_response_table,
    format_speedup_summary,
    run_hadoop_series,
    run_redoop_series,
)
from repro.workloads import paper_spike_windows

from .conftest import emit


@pytest.mark.parametrize("overlap", [0.9, 0.5, 0.1])
def test_fig8_adaptive(benchmark, overlap, bench_scale, bench_windows):
    config = replace(
        aggregation_config(
            overlap, scale=bench_scale, num_windows=bench_windows
        ),
        spiked_recurrences=frozenset(paper_spike_windows(bench_windows)),
    )
    workload = build_workload(config)

    def run():
        return {
            "hadoop": run_hadoop_series(config, workload=workload),
            "redoop": run_redoop_series(config, workload=workload),
            "adaptive": run_redoop_series(
                config, label="adaptive", adaptive=True, workload=workload
            ),
        }

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    emit(
        format_response_table(
            series,
            title=f"Fig 8 adaptive partitioning (overlap={overlap}, "
            "windows 2,3,5,6,8,9 doubled)",
        )
    )
    emit(format_speedup_summary(series))

    # Adaptivity never changes answers.
    assert series["redoop"].output_digests == series["adaptive"].output_digests
    assert series["hadoop"].output_digests == series["redoop"].output_digests

    # After the detector warms up, adaptive is at least as good as
    # non-adaptive Redoop and clearly better than Hadoop.
    tail = slice(2, None)
    adaptive_tail = sum(series["adaptive"].response_times()[tail])
    redoop_tail = sum(series["redoop"].response_times()[tail])
    hadoop_tail = sum(series["hadoop"].response_times()[tail])
    assert adaptive_tail <= redoop_tail * 1.05
    assert adaptive_tail < hadoop_tail
    if overlap == 0.1:
        # The paper's marquee case: adaptivity rescues low overlap.
        assert adaptive_tail < 0.6 * hadoop_tail
        assert redoop_tail > 0.7 * hadoop_tail  # plain Redoop only slight gain
