"""Figure 6: recurring aggregation, Redoop vs plain Hadoop.

Regenerates, per overlap setting (0.9 / 0.5 / 0.1):

* panels (a)(c)(e) — per-window response times for 10 windows;
* panels (b)(d)(f) — summed shuffle vs reduce time distribution.

Expected shape (paper Sec. 6.2.1): window 1 roughly ties; windows 2-10
Redoop wins by up to ~8x at overlap 0.9, moderately at 0.5, and only
marginally at 0.1; both shuffle and reduce shrink under Redoop.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    aggregation_config,
    build_workload,
    format_phase_split,
    format_response_table,
    format_speedup_summary,
    run_hadoop_series,
    run_redoop_series,
)

from .conftest import emit, speedup_floor


@pytest.mark.parametrize("overlap", [0.9, 0.5, 0.1])
def test_fig6_aggregation(benchmark, overlap, bench_scale, bench_windows):
    config = aggregation_config(
        overlap, scale=bench_scale, num_windows=bench_windows
    )
    workload = build_workload(config)

    def run():
        hadoop = run_hadoop_series(config, workload=workload)
        redoop = run_redoop_series(config, workload=workload)
        return {"hadoop": hadoop, "redoop": redoop}

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    hadoop, redoop = series["hadoop"], series["redoop"]

    emit(
        format_response_table(
            series, title=f"Fig 6 aggregation response times (overlap={overlap})"
        )
    )
    emit(
        format_phase_split(
            series, title=f"Fig 6 shuffle/reduce split (overlap={overlap})"
        )
    )
    emit(format_speedup_summary(series))

    # Correctness: both systems computed identical window answers.
    assert hadoop.output_digests == redoop.output_digests
    # Window 1 roughly ties.
    assert redoop.windows[0].response_time == pytest.approx(
        hadoop.windows[0].response_time, rel=0.3
    )
    # Steady-state ordering per the paper.
    speedup = redoop.speedup_vs(hadoop, skip_first=True)
    if overlap == 0.9:
        assert speedup > speedup_floor(bench_scale)
    elif overlap == 0.5:
        assert speedup > min(1.2, speedup_floor(bench_scale))
    else:
        assert speedup > 0.85  # marginal at low overlap
