"""Extension sweeps: how Redoop's gain responds to deployment knobs.

Not figures from the paper — these probe the design space around its
fixed 30-node / 60-reducer setup (see DESIGN.md, "Ablations").
"""

from __future__ import annotations


from repro.bench.sweeps import (
    sweep_cluster_size,
    sweep_num_reducers,
    sweep_window_size,
)

from .conftest import emit


def test_sweep_cluster_size(benchmark, bench_scale):
    results = benchmark.pedantic(
        sweep_cluster_size,
        kwargs=dict(scale=min(bench_scale, 0.5)),
        rounds=1,
        iterations=1,
    )
    emit(
        "Sweep: steady-state speedup vs cluster size (overlap 0.9)\n"
        + "\n".join(f"  {n:3d} nodes: {s:5.2f}x" for n, s in sorted(results.items()))
    )
    # Redoop wins at every size; data volume is fixed, so bigger
    # clusters absorb Hadoop's re-reads better and narrow the gap.
    assert all(s > 1.5 for s in results.values())
    sizes = sorted(results)
    assert results[sizes[0]] >= results[sizes[-1]] * 0.8


def test_sweep_num_reducers(benchmark, bench_scale):
    results = benchmark.pedantic(
        sweep_num_reducers,
        kwargs=dict(scale=min(bench_scale, 0.5)),
        rounds=1,
        iterations=1,
    )
    emit(
        "Sweep: steady-state speedup vs reducer count (overlap 0.9)\n"
        + "\n".join(
            f"  {r:4d} reducers: {s:5.2f}x" for r, s in sorted(results.items())
        )
    )
    assert all(s > 1.5 for s in results.values())


def test_sweep_window_size(benchmark, bench_scale):
    results = benchmark.pedantic(
        sweep_window_size,
        kwargs=dict(scale=min(bench_scale, 0.5)),
        rounds=1,
        iterations=1,
    )
    emit(
        "Sweep: steady-state speedup vs window length (overlap 0.9)\n"
        + "\n".join(
            f"  {h:4.1f} h window: {s:5.2f}x" for h, s in sorted(results.items())
        )
    )
    # Bigger windows -> more absolute reuse -> at least as much gain.
    hours = sorted(results)
    assert results[hours[-1]] >= results[hours[0]] * 0.9
