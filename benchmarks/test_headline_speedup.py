"""The abstract's headline claim: up to ~9x speedup over plain Hadoop.

Measured at overlap 0.9 (the paper's best case) for both evaluated
query types, averaged over the steady-state windows (2-10). Absolute
factors depend on the simulated cost model; the claim we reproduce is
"significant multi-x speedup, larger for higher overlap, approaching
an order of magnitude in the best case".
"""

from __future__ import annotations


from repro.bench import headline_speedups

from .conftest import emit, speedup_floor


def test_headline_speedup(benchmark, bench_scale):
    speedups = benchmark.pedantic(
        headline_speedups, kwargs=dict(scale=bench_scale), rounds=1, iterations=1
    )
    emit(
        "Headline steady-state speedups at overlap 0.9 "
        f"(paper: up to 9x):\n"
        f"  aggregation: {speedups['aggregation']:.2f}x\n"
        f"  join:        {speedups['join']:.2f}x"
    )
    floor = speedup_floor(bench_scale)
    assert speedups["aggregation"] > floor
    assert speedups["join"] > floor
