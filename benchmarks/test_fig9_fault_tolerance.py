"""Figure 9: fault tolerance under injected cache failures.

An FFG aggregation at overlap 0.5; cache removals are injected at the
beginning of each window for the (f) series, and the Hadoop(f) series
suffers task-level failures. Plotted as cumulative running time.

Expected shape (paper Sec. 6.4): Hadoop(f) is worst; Redoop(f) loses
ground to clean Redoop but its cumulative time stays clearly below
plain Hadoop — pane-granular caching means surviving caches keep
paying off.
"""

from __future__ import annotations

import pytest

from repro.bench import fig9_fault_tolerance, format_cumulative_table

from .conftest import emit


def test_fig9_fault_tolerance(benchmark, bench_scale, bench_windows):
    series = benchmark.pedantic(
        fig9_fault_tolerance,
        kwargs=dict(scale=bench_scale, num_windows=bench_windows),
        rounds=1,
        iterations=1,
    )

    emit(
        format_cumulative_table(
            series,
            title="Fig 9 cumulative running time (FFG aggregation, "
            "overlap=0.5, cache removals per window)",
        )
    )

    hadoop = series["hadoop"].total_response()
    redoop = series["redoop"].total_response()
    redoop_f = series["redoop(f)"].total_response()
    hadoop_f = series["hadoop(f)"].total_response()

    # Failures always cost something.
    assert redoop_f > redoop
    assert hadoop_f > hadoop
    # The paper's headline: Redoop with failures still beats Hadoop.
    assert redoop_f < hadoop
    # And correctness under failures: same answers as clean Redoop.
    assert series["redoop"].output_digests == series["redoop(f)"].output_digests

    # Small loss in the first window only (cold start, nothing cached yet).
    assert series["redoop(f)"].windows[0].response_time == pytest.approx(
        series["redoop"].windows[0].response_time, rel=0.05
    )
