"""Figure 7: recurring join over the FFG sensor streams.

Regenerates, per overlap setting, the per-window response times and
the shuffle/reduce split. Expected shape (paper Sec. 6.2.2): Redoop
approaches an order of magnitude at overlap 0.9; the reduce phase
dominates join time; gains shrink as overlap drops.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    build_workload,
    format_phase_split,
    format_response_table,
    format_speedup_summary,
    join_config,
    run_hadoop_series,
    run_redoop_series,
)

from .conftest import emit, speedup_floor


@pytest.mark.parametrize("overlap", [0.9, 0.5, 0.1])
def test_fig7_join(benchmark, overlap, bench_scale, bench_windows):
    config = join_config(overlap, scale=bench_scale, num_windows=bench_windows)
    workload = build_workload(config)

    def run():
        hadoop = run_hadoop_series(config, workload=workload)
        redoop = run_redoop_series(config, workload=workload)
        return {"hadoop": hadoop, "redoop": redoop}

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    hadoop, redoop = series["hadoop"], series["redoop"]

    emit(
        format_response_table(
            series, title=f"Fig 7 join response times (overlap={overlap})"
        )
    )
    emit(
        format_phase_split(
            series, title=f"Fig 7 shuffle/reduce split (overlap={overlap})"
        )
    )
    emit(format_speedup_summary(series))

    assert hadoop.output_digests == redoop.output_digests
    assert redoop.windows[0].response_time == pytest.approx(
        hadoop.windows[0].response_time, rel=0.3
    )
    speedup = redoop.speedup_vs(hadoop, skip_first=True)
    if overlap == 0.9:
        assert speedup > speedup_floor(bench_scale)
    elif overlap == 0.5:
        assert speedup > min(1.2, speedup_floor(bench_scale))
    else:
        assert speedup > 0.85
