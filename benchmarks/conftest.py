"""Shared configuration for the figure-regeneration benchmarks.

Every benchmark regenerates one of the paper's tables/figures and
prints the same rows/series the paper plots. ``REPRO_BENCH_SCALE``
(default 0.35) scales the per-window data volume: 1.0 reproduces the
full ~100 GB-per-window regime (slower), smaller values keep the same
qualitative shapes with less wall time.
"""

from __future__ import annotations

import os

import pytest

#: Fraction of the full paper-scale data volume to simulate.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


def speedup_floor(scale: float, full_scale_floor: float = 3.0) -> float:
    """Scale-aware assertion threshold.

    At small scales fixed costs (task/job overheads) eat into the
    relative gains, so shape assertions relax; at paper scale (>= 0.5)
    the full multi-x expectation applies.
    """
    return full_scale_floor if scale >= 0.5 else 1.2

#: Windows per series (the paper uses 10).
BENCH_WINDOWS = int(os.environ.get("REPRO_BENCH_WINDOWS", "10"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_windows() -> int:
    return BENCH_WINDOWS


def emit(text: str) -> None:
    """Print a figure's table so it lands in the benchmark log."""
    print()
    print(text)
