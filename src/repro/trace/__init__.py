"""Unified run tracing: the span spine and its consumers.

See ``docs/observability.md`` for the span hierarchy, the event
schema, and how the exported traces map to the paper's figures.
"""

from .spine import (
    CAT_CHAOS,
    CAT_EXEC,
    CAT_FAULT,
    CAT_SERVICE,
    CAT_JOB,
    CAT_PHASE,
    CAT_RECURRENCE,
    CAT_RUN,
    CAT_SCHED,
    CAT_TASK,
    PHASE_NAMES,
    Span,
    TraceEvent,
    Tracer,
)
from .chrome import (
    chrome_trace_document,
    export_chrome_trace,
    load_chrome_trace,
    validate_chrome_trace,
)
from .report import (
    TaskRow,
    WindowReport,
    format_window_reports,
    reports_as_rows,
    window_reports,
    window_reports_from_document,
)

__all__ = [
    "CAT_RUN",
    "CAT_RECURRENCE",
    "CAT_JOB",
    "CAT_PHASE",
    "CAT_TASK",
    "CAT_SCHED",
    "CAT_FAULT",
    "CAT_SERVICE",
    "CAT_CHAOS",
    "CAT_EXEC",
    "PHASE_NAMES",
    "Span",
    "TraceEvent",
    "Tracer",
    "chrome_trace_document",
    "export_chrome_trace",
    "load_chrome_trace",
    "validate_chrome_trace",
    "TaskRow",
    "WindowReport",
    "window_reports",
    "window_reports_from_document",
    "format_window_reports",
    "reports_as_rows",
]
