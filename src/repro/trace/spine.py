"""The span spine: one event stream for everything a run does.

A :class:`Tracer` accumulates two kinds of facts about an execution,
both stamped with *virtual* (sim-clock) times:

* **spans** — things with extent: the whole run, one recurrence, one
  execution phase (map / shuffle / pane-reduce / combine / post), one
  task occupying a slot. Spans form a tree via ``parent_id``, giving
  the hierarchy ``run → recurrence → phase → task``.
* **events** — instants: scheduler decisions (the PR-1
  ``SchedulingTrace`` family lives here), injected faults, task
  retries, cache losses. Events may be parented to a span.

The tracer is deliberately dumb: it never interprets names, never
aggregates, and never touches the clock — producers stamp times
explicitly, which is what keeps the spine exact under virtual time.
Consumers live next door: :mod:`repro.trace.chrome` renders the spine
as a Chrome-trace/Perfetto JSON, :mod:`repro.trace.report` folds it
into per-window reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Union

__all__ = [
    "CAT_RUN",
    "CAT_RECURRENCE",
    "CAT_JOB",
    "CAT_PHASE",
    "CAT_TASK",
    "CAT_SCHED",
    "CAT_FAULT",
    "CAT_SERVICE",
    "CAT_CHAOS",
    "CAT_EXEC",
    "PHASE_NAMES",
    "Span",
    "TraceEvent",
    "Tracer",
]

#: Span categories (the level of the hierarchy a span belongs to).
CAT_RUN = "run"
CAT_RECURRENCE = "recurrence"
#: A plain-Hadoop job (the baseline's per-window unit, same level as a
#: Redoop recurrence).
CAT_JOB = "job"
CAT_PHASE = "phase"
CAT_TASK = "task"

#: Event categories.
CAT_SCHED = "sched"
CAT_FAULT = "fault"
#: Service-lifecycle instants (submit/pause/deregister/shed/checkpoint)
#: emitted by :mod:`repro.service`.
CAT_SERVICE = "service"
#: Chaos-harness injections (``chaos.*`` instants from
#: :mod:`repro.chaos`): deliberate mid-flight events, distinct from the
#: ``fault``-category *consequences* the runtime records.
CAT_CHAOS = "chaos"
#: Execution-backend instants (``exec.batch`` / ``exec.worker`` from
#: :mod:`repro.exec`): wall-clock pool accounting stamped at the
#: virtual time of the batch. Spans never carry wall times — these
#: instants are the only place real seconds appear on the spine.
CAT_EXEC = "exec"

#: Phase spans every Redoop recurrence emits, in presentation order.
PHASE_NAMES = ("map", "shuffle", "pane-reduce", "combine", "post")


@dataclass
class Span:
    """One node of the span tree. Mutable: open spans are ended later."""

    span_id: int
    name: str
    category: str
    start: float
    #: ``None`` while the span is open; exporters substitute the
    #: tracer's high-water mark.
    end: Optional[float] = None
    parent_id: Optional[int] = None
    #: Simulated node the span ran on (task spans); ``None`` for
    #: master-side spans (run/recurrence/phase).
    node_id: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span extent; an open span has zero duration."""
        return (self.end if self.end is not None else self.start) - self.start


@dataclass
class TraceEvent:
    """One instant on the spine.

    ``time`` may be ``None`` for events with no natural timestamp
    (e.g. task-list pops, which happen in scheduler logic between
    clock readings); exporters skip those, query APIs still see them.
    ``data`` carries an arbitrary payload object — the scheduler stores
    its :class:`~repro.hadoop.timeline.SchedulingDecision` here, so the
    decision log and the trace are one store, not two.
    """

    event_id: int
    name: str
    category: str
    time: Optional[float] = None
    parent_id: Optional[int] = None
    node_id: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    data: Any = None


ParentRef = Union[Span, int, None]


def _parent_id(parent: ParentRef) -> Optional[int]:
    if parent is None:
        return None
    if isinstance(parent, Span):
        return parent.span_id
    return int(parent)


class Tracer:
    """Accumulates spans and events; the single observability store."""

    def __init__(self) -> None:
        self._spans: List[Span] = []
        self._events: List[TraceEvent] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def _take_id(self) -> int:
        sid = self._next_id
        self._next_id += 1
        return sid

    def begin(
        self,
        name: str,
        category: str,
        start: float,
        *,
        parent: ParentRef = None,
        node_id: Optional[int] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span; close it later with :meth:`end` / :meth:`extend`."""
        span = Span(
            span_id=self._take_id(),
            name=name,
            category=category,
            start=start,
            parent_id=_parent_id(parent),
            node_id=node_id,
            attrs=dict(attrs),
        )
        self._spans.append(span)
        return span

    def end(self, span: Span, end: float, **attrs: Any) -> Span:
        """Close ``span`` at time ``end`` (which may not precede its start)."""
        if end < span.start:
            raise ValueError(
                f"span {span.name!r} cannot end at {end} before its "
                f"start {span.start}"
            )
        span.end = end
        span.attrs.update(attrs)
        return span

    def extend(self, span: Span, until: float) -> Span:
        """Push a span's end out to at least ``until`` (never shrinks)."""
        if span.end is None or span.end < until:
            span.end = max(until, span.start)
        return span

    def span(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        *,
        parent: ParentRef = None,
        node_id: Optional[int] = None,
        **attrs: Any,
    ) -> Span:
        """Record an already-finished span in one call."""
        span = self.begin(
            name, category, start, parent=parent, node_id=node_id, **attrs
        )
        return self.end(span, end)

    def instant(
        self,
        name: str,
        category: str,
        time: Optional[float] = None,
        *,
        parent: ParentRef = None,
        node_id: Optional[int] = None,
        data: Any = None,
        **attrs: Any,
    ) -> TraceEvent:
        """Record an instantaneous event."""
        event = TraceEvent(
            event_id=self._take_id(),
            name=name,
            category=category,
            time=time,
            parent_id=_parent_id(parent),
            node_id=node_id,
            attrs=dict(attrs),
            data=data,
        )
        self._events.append(event)
        return event

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def spans(
        self,
        *,
        category: Optional[str] = None,
        parent: ParentRef = None,
    ) -> List[Span]:
        """Recorded spans, optionally filtered by category and/or parent."""
        pid = _parent_id(parent)
        return [
            s
            for s in self._spans
            if (category is None or s.category == category)
            and (parent is None or s.parent_id == pid)
        ]

    def events(self, *, category: Optional[str] = None) -> List[TraceEvent]:
        return [
            e
            for e in self._events
            if category is None or e.category == category
        ]

    def children(self, span: Span) -> List[Span]:
        return [s for s in self._spans if s.parent_id == span.span_id]

    def get_span(self, span_id: int) -> Span:
        for s in self._spans:
            if s.span_id == span_id:
                return s
        raise KeyError(f"no span with id {span_id}")

    def high_water(self) -> float:
        """Latest time the spine knows about (open spans render to here)."""
        times: List[float] = [0.0]
        for s in self._spans:
            times.append(s.end if s.end is not None else s.start)
        for e in self._events:
            if e.time is not None:
                times.append(e.time)
        return max(times)

    def clear_events(self, category: str) -> None:
        """Drop all events of one category (keeps spans intact)."""
        self._events = [e for e in self._events if e.category != category]

    def envelope(self, spans: Iterable[Span]) -> Optional[tuple]:
        """``(min start, max end)`` over ``spans``; ``None`` when empty."""
        items = list(spans)
        if not items:
            return None
        return (
            min(s.start for s in items),
            max(s.end if s.end is not None else s.start for s in items),
        )

    def __len__(self) -> int:
        return len(self._spans) + len(self._events)
