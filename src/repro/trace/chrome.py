"""Chrome-trace / Perfetto export of the span spine.

The exported JSON follows the Trace Event Format (the ``traceEvents``
object form), loadable in ``chrome://tracing`` or https://ui.perfetto.dev:

* one **process** per simulated node (``node-3``), plus one *master*
  pseudo-process per series carrying the run / recurrence / phase
  spans;
* one **thread** per slot lane, so slot contention is literally
  visible: task spans are packed greedily into non-overlapping lanes
  per (node, slot kind), reconstructing exactly the earliest-free-slot
  assignment the simulator used;
* spans become complete (``"ph": "X"``) events, instants (faults,
  retries, scheduler selections) become instant (``"ph": "i"``)
  events. Timestamps are virtual seconds scaled to microseconds.

Multiple series (e.g. a fig6 run's ``hadoop`` and ``redoop`` sides)
export into one file: each series gets its own pid block, so Perfetto
shows them as separate process groups. Structural metadata needed to
rebuild reports from the file (span ids, parent links, attributes)
rides in each event's ``args``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Tuple, Union

from .spine import Span, Tracer

__all__ = [
    "chrome_trace_document",
    "export_chrome_trace",
    "load_chrome_trace",
    "validate_chrome_trace",
]

#: pid spacing between series: series ``i`` owns ``[i*PID_BLOCK, ...)``.
PID_BLOCK = 1000

#: tid offsets inside a node process, one lane group per slot kind.
_LANE_OFFSETS = {"map": 0, "reduce": 100, "net": 200}

#: Master-side tids by span category/phase name.
_MASTER_TIDS = {
    "run": 0,
    "recurrence": 1,
    "job": 1,
}
#: Phase spans each get their own master thread (phases overlap in
#: time, so sharing a lane would render as a broken flamegraph).
_PHASE_TID_BASE = 2

#: Execution-backend worker lanes render as master threads starting
#: here: ``exec.worker`` instants with ``worker=n`` land on tid 900+n,
#: so Perfetto shows one row per pool worker.
_EXEC_TID_BASE = 900


def _us(seconds: float) -> float:
    return round(seconds * 1_000_000, 3)


def _span_args(span: Span) -> Dict[str, Any]:
    args: Dict[str, Any] = {
        "span": span.span_id,
        "parent": span.parent_id,
        "category": span.category,
    }
    if span.node_id is not None:
        args["node"] = span.node_id
    args.update(span.attrs)
    return args


class _LanePacker:
    """Greedy first-fit packing of intervals into non-overlapping lanes."""

    def __init__(self) -> None:
        self._lane_ends: List[float] = []

    def lane_for(self, start: float, end: float) -> int:
        for lane, busy_until in enumerate(self._lane_ends):
            if start >= busy_until - 1e-9:
                self._lane_ends[lane] = end
                return lane
        self._lane_ends.append(end)
        return len(self._lane_ends) - 1


def _phase_tid(name: str, assigned: Dict[str, int]) -> int:
    if name not in assigned:
        assigned[name] = _PHASE_TID_BASE + len(assigned)
    return assigned[name]


def _series_events(
    label: str, tracer: Tracer, base_pid: int
) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    horizon = tracer.high_water()
    master = base_pid

    used_pids: Dict[int, str] = {master: f"{label} (master)"}
    thread_names: Dict[Tuple[int, int], str] = {
        (master, 0): "run",
        (master, 1): "windows",
    }
    packers: Dict[Tuple[int, str], _LanePacker] = {}
    phase_tids: Dict[str, int] = {}

    for span in tracer.spans():
        start = span.start
        end = span.end if span.end is not None else horizon
        if span.node_id is not None:
            pid = base_pid + 1 + span.node_id
            used_pids.setdefault(pid, f"{label} node-{span.node_id}")
            lane_group = str(span.attrs.get("slot", "map"))
            packer = packers.setdefault((pid, lane_group), _LanePacker())
            lane = packer.lane_for(start, end)
            tid = _LANE_OFFSETS.get(lane_group, 0) + lane
            thread_names.setdefault((pid, tid), f"{lane_group}-{lane}")
        else:
            pid = master
            if span.category == "phase":
                tid = _phase_tid(span.name, phase_tids)
                thread_names.setdefault((pid, tid), f"phase:{span.name}")
            else:
                tid = _MASTER_TIDS.get(span.category, 1)
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": _us(start),
                "dur": _us(max(0.0, end - start)),
                "pid": pid,
                "tid": tid,
                "args": _span_args(span),
            }
        )

    for event in tracer.events():
        if event.time is None:
            # Timeless bookkeeping events (e.g. task-list pops) have no
            # meaningful position on a timeline; they stay spine-only.
            continue
        if event.node_id is not None:
            pid = base_pid + 1 + event.node_id
            used_pids.setdefault(pid, f"{label} node-{event.node_id}")
            tid = 0
        elif event.category == "exec" and "worker" in event.attrs:
            pid = master
            lane = int(event.attrs["worker"])
            tid = _EXEC_TID_BASE + lane
            thread_names.setdefault((pid, tid), f"exec-w{lane}")
        elif event.category == "exec":
            pid = master
            tid = _EXEC_TID_BASE - 1
            thread_names.setdefault((pid, tid), "exec")
        else:
            pid, tid = master, 1
        args: Dict[str, Any] = {"category": event.category}
        if event.parent_id is not None:
            args["parent"] = event.parent_id
        args.update(event.attrs)
        events.append(
            {
                "name": event.name,
                "cat": event.category,
                "ph": "i",
                "s": "t",
                "ts": _us(event.time),
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )

    meta: List[Dict[str, Any]] = []
    for pid, name in sorted(used_pids.items()):
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
        meta.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": pid},
            }
        )
    for (pid, tid), name in sorted(thread_names.items()):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )
    return meta + events


def chrome_trace_document(
    traces: Union[Tracer, Mapping[str, Tracer]],
    *,
    label: str = "redoop",
) -> Dict[str, Any]:
    """Render one or more tracers as a Chrome-trace JSON document.

    ``traces`` may be a single :class:`Tracer` (exported under
    ``label``) or an ordered mapping of series label to tracer; each
    series occupies its own pid block.
    """
    if isinstance(traces, Tracer):
        traces = {label: traces}
    if not traces:
        raise ValueError("no tracers to export")
    events: List[Dict[str, Any]] = []
    series_pids: Dict[str, int] = {}
    for index, (series_label, tracer) in enumerate(traces.items()):
        base_pid = index * PID_BLOCK
        series_pids[series_label] = base_pid
        events.extend(_series_events(series_label, tracer, base_pid))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.trace.chrome",
            "series": series_pids,
            "time_unit": "virtual seconds, scaled to us",
        },
    }


def export_chrome_trace(
    traces: Union[Tracer, Mapping[str, Tracer]],
    path: str,
    *,
    label: str = "redoop",
) -> int:
    """Write the Chrome-trace JSON to ``path``; returns the event count."""
    document = chrome_trace_document(traces, label=label)
    with open(path, "w") as fh:
        json.dump(document, fh, indent=1)
    return len(document["traceEvents"])


def load_chrome_trace(path: str) -> Dict[str, Any]:
    """Load an exported trace document back (for ``repro report``)."""
    with open(path) as fh:
        document = json.load(fh)
    problems = validate_chrome_trace(document)
    if problems:
        raise ValueError(
            f"{path} is not a valid repro trace export: " + "; ".join(problems[:5])
        )
    return document


def validate_chrome_trace(document: Any) -> List[str]:
    """Check a document against the Trace Event Format (object form).

    Returns a list of problems; an empty list means the document should
    load in ``chrome://tracing`` / Perfetto. This is the schema the
    golden-trace regression test pins.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["top level must be an object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "i", "M", "B", "E", "C"):
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: {key} must be an integer")
        if ph == "M":
            if not isinstance(event.get("args"), dict):
                problems.append(f"{where}: metadata event needs args")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: dur must be a non-negative number")
        if ph == "i" and event.get("s") not in (None, "g", "p", "t"):
            problems.append(f"{where}: bad instant scope {event.get('s')!r}")
    return problems
