"""Per-window reports folded from the span spine.

Consumes either a live :class:`~repro.trace.spine.Tracer` or an
exported Chrome-trace document (``repro report trace.json``) and
produces, per window: the phase breakdown, the cache hit/rebuild
ratio, and the top-k slowest tasks — the paper's Sec. 6 "where did the
time go" questions, answerable for *one* window instead of only on
average.

Both input paths share one implementation: a tracer is first rendered
to the exported document form, so whatever the report can say about a
live run it can also say about a file someone attached to a bug
report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Union

from .chrome import PID_BLOCK, chrome_trace_document
from .spine import PHASE_NAMES, Tracer

__all__ = [
    "TaskRow",
    "WindowReport",
    "window_reports",
    "window_reports_from_document",
    "format_window_reports",
    "reports_as_rows",
]


@dataclass(frozen=True)
class TaskRow:
    """One task span, as the report ranks them."""

    name: str
    node_id: Optional[int]
    start: float
    duration: float
    phase: str


@dataclass
class WindowReport:
    """Everything the report knows about one window of one series."""

    series: str
    window: int
    due: float
    finish: float
    #: ``finish - due`` — matches ``WindowMetrics.response_time``.
    response_time: float
    #: phase name -> span duration (seconds).
    phases: Dict[str, float] = field(default_factory=dict)
    #: the recurrence's counter snapshot (empty for plain-Hadoop jobs).
    counters: Dict[str, float] = field(default_factory=dict)
    tasks: List[TaskRow] = field(default_factory=list)

    def top_tasks(self, k: int = 5) -> List[TaskRow]:
        """The ``k`` slowest tasks of the window."""
        return sorted(self.tasks, key=lambda t: (-t.duration, t.name))[:k]

    def cache_hit_ratio(self) -> Optional[float]:
        """Fraction of window panes served from cache; ``None`` if unknown."""
        hits = self.counters.get("cache.pane_hits", 0.0)
        processed = self.counters.get("panes.processed", 0.0)
        if hits + processed <= 0:
            return None
        return hits / (hits + processed)


# ----------------------------------------------------------------------
# building
# ----------------------------------------------------------------------


def window_reports(
    tracer: Tracer, *, series: str = "redoop"
) -> List[WindowReport]:
    """Reports for one live tracer (round-trips through the export form)."""
    document = chrome_trace_document({series: tracer})
    return window_reports_from_document(document).get(series, [])


def window_reports_from_document(
    document: Mapping[str, Any]
) -> Dict[str, List[WindowReport]]:
    """Reports per series from an exported Chrome-trace document."""
    events = [
        e
        for e in document.get("traceEvents", [])
        if isinstance(e, dict) and e.get("ph") == "X"
    ]
    labels_by_base: Dict[int, str] = {}
    other = document.get("otherData", {})
    if isinstance(other, dict):
        for label, base in other.get("series", {}).items():
            labels_by_base[int(base)] = label

    def series_of(event: Mapping[str, Any]) -> str:
        base = (int(event.get("pid", 0)) // PID_BLOCK) * PID_BLOCK
        return labels_by_base.get(base, f"series-{base // PID_BLOCK}")

    # Span ids are per-tracer, so in a merged multi-series document they
    # collide across series; every link must be keyed (series, span id).
    reports: Dict[str, List[WindowReport]] = {}
    window_by_span: Dict[Any, WindowReport] = {}
    phase_events: List[Mapping[str, Any]] = []
    task_events: List[Mapping[str, Any]] = []

    for event in events:
        args = event.get("args", {})
        category = args.get("category", event.get("cat"))
        if category in ("recurrence", "job"):
            start = event["ts"] / 1e6
            finish = start + event.get("dur", 0.0) / 1e6
            due = float(args.get("due", start))
            report = WindowReport(
                series=series_of(event),
                window=int(args.get("window", len(reports) + 1)),
                due=due,
                finish=finish,
                response_time=float(args.get("response_time", finish - due)),
                counters={
                    str(k): float(v)
                    for k, v in args.get("counters", {}).items()
                },
            )
            reports.setdefault(report.series, []).append(report)
            window_by_span[(report.series, args["span"])] = report
        elif category == "phase":
            phase_events.append(event)
        elif category == "task":
            task_events.append(event)

    phase_owner: Dict[Any, WindowReport] = {}
    phase_name: Dict[Any, str] = {}
    for event in phase_events:
        args = event["args"]
        key = (series_of(event), args.get("parent"))
        report = window_by_span.get(key)
        if report is None:
            continue
        name = str(event["name"])
        report.phases[name] = report.phases.get(name, 0.0) + event.get(
            "dur", 0.0
        ) / 1e6
        phase_owner[(key[0], args["span"])] = report
        phase_name[(key[0], args["span"])] = name

    for event in task_events:
        args = event["args"]
        key = (series_of(event), args.get("parent"))
        report = phase_owner.get(key) or window_by_span.get(key)
        if report is None:
            continue
        report.tasks.append(
            TaskRow(
                name=str(event["name"]),
                node_id=args.get("node"),
                start=event["ts"] / 1e6,
                duration=event.get("dur", 0.0) / 1e6,
                phase=phase_name.get(key, str(args.get("phase", "?"))),
            )
        )

    for series_reports in reports.values():
        series_reports.sort(key=lambda r: (r.window, r.due))
    return reports


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------


def _ordered_phases(report: WindowReport) -> List[str]:
    known = [p for p in PHASE_NAMES if p in report.phases]
    extra = [p for p in sorted(report.phases) if p not in PHASE_NAMES]
    return known + extra


def format_window_reports(
    reports: Union[List[WindowReport], Mapping[str, List[WindowReport]]],
    *,
    top_k: int = 3,
) -> str:
    """Human-readable per-window report (``repro report``'s output)."""
    if isinstance(reports, list):
        reports = {reports[0].series if reports else "series": reports}
    lines: List[str] = []
    for series, series_reports in reports.items():
        lines.append(f"--- series: {series} ---")
        for report in series_reports:
            lines.append(
                f"window {report.window}: due {report.due:.1f}s, "
                f"finish {report.finish:.1f}s, "
                f"response {report.response_time:.1f}s"
            )
            if report.phases:
                parts = " | ".join(
                    f"{name} {report.phases[name]:.2f}s"
                    for name in _ordered_phases(report)
                )
                lines.append(f"  phases: {parts}")
            ratio = report.cache_hit_ratio()
            if ratio is not None:
                hits = report.counters.get("cache.pane_hits", 0.0)
                processed = report.counters.get("panes.processed", 0.0)
                rebuilds = report.counters.get("cache.rin_rebuilds", 0.0)
                rout = report.counters.get("cache.rout_hits", 0.0)
                lines.append(
                    f"  cache: {hits:.0f} pane hits / {processed:.0f} "
                    f"processed ({ratio:6.1%} reused), "
                    f"{rebuilds:.0f} rebuilds, {rout:.0f} rout hits"
                )
            top = report.top_tasks(top_k)
            if top:
                lines.append(f"  slowest {len(top)} tasks:")
                for task in top:
                    node = f"node {task.node_id}" if task.node_id is not None else "master"
                    lines.append(
                        f"    {task.duration:8.2f}s  {task.name:<40} "
                        f"{node:>8}  [{task.phase}]"
                    )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def reports_as_rows(
    reports: Mapping[str, List[WindowReport]]
) -> List[Dict[str, Any]]:
    """Machine-readable form (one dict per series+window) for ``--json``."""
    rows: List[Dict[str, Any]] = []
    for series, series_reports in reports.items():
        for report in series_reports:
            rows.append(
                {
                    "series": series,
                    "window": report.window,
                    "due": report.due,
                    "finish": report.finish,
                    "response_time": report.response_time,
                    "phases": dict(report.phases),
                    "cache_hit_ratio": report.cache_hit_ratio(),
                    "counters": dict(report.counters),
                    "top_tasks": [
                        {
                            "name": t.name,
                            "node": t.node_id,
                            "start": t.start,
                            "duration": t.duration,
                            "phase": t.phase,
                        }
                        for t in report.top_tasks(5)
                    ],
                }
            )
    return rows
