"""Synthetic WorldCup Click (WCC) workload.

The paper's aggregation experiments use the 1998 World Cup web-site
access log (236 GB, 1.3 billion requests). That trace is not shippable,
so this module generates a synthetic click stream with the same schema
and the properties the experiments actually exercise: a configurable
byte rate, a skewed key distribution (popular objects receive most
requests — web traffic is Zipfian), and uniformly spread timestamps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..hadoop.types import Record

__all__ = ["WCCConfig", "generate_wcc_records"]

_REGIONS = ("europe", "north_america", "south_america", "asia", "africa")
_METHODS = ("GET", "HEAD", "POST")


@dataclass(frozen=True)
class WCCConfig:
    """Shape of the synthetic click stream.

    ``record_size`` matches a typical access-log line; ``num_objects``
    bounds the aggregation key space; ``zipf_s`` sets request skew
    (higher = more popular objects dominate).
    """

    record_size: int = 100
    num_clients: int = 50_000
    num_objects: int = 1_000
    zipf_s: float = 1.1

    def __post_init__(self) -> None:
        if self.record_size <= 0:
            raise ValueError("record_size must be positive")
        if self.num_clients < 1 or self.num_objects < 1:
            raise ValueError("client and object counts must be positive")
        if self.zipf_s <= 0:
            raise ValueError("zipf_s must be positive")


def _zipf_weights(n: int, s: float) -> List[float]:
    return [1.0 / (rank**s) for rank in range(1, n + 1)]


def generate_wcc_records(
    t_start: float,
    t_end: float,
    rate: float,
    *,
    config: Optional[WCCConfig] = None,
    seed: int = 0,
) -> List[Record]:
    """Click records covering ``[t_start, t_end)`` at ``rate`` bytes/s.

    The number of records is ``rate * duration / record_size``; their
    timestamps spread uniformly over the interval so panes receive
    proportional shares.
    """
    config = config if config is not None else WCCConfig()
    if t_end <= t_start:
        raise ValueError(f"empty interval [{t_start}, {t_end})")
    if rate <= 0:
        raise ValueError("rate must be positive")
    duration = t_end - t_start
    count = max(1, round(rate * duration / config.record_size))
    rng = random.Random((seed, round(t_start * 1000)).__hash__())
    weights = _zipf_weights(config.num_objects, config.zipf_s)
    objects = rng.choices(range(config.num_objects), weights=weights, k=count)
    records: List[Record] = []
    step = duration / count
    for i in range(count):
        # Jittered-but-ordered timestamps: dense and within the interval.
        ts = t_start + min(duration - 1e-6, i * step + rng.random() * step * 0.5)
        records.append(
            Record(
                ts=ts,
                value={
                    "src": "wcc",
                    "client": rng.randrange(config.num_clients),
                    "object": objects[i],
                    "bytes": rng.randrange(200, 20_000),
                    "method": rng.choice(_METHODS),
                    "status": 200 if rng.random() < 0.95 else 404,
                    "region": rng.choice(_REGIONS),
                },
                size=config.record_size,
            )
        )
    return records
