"""Synthetic football-field sensor (FFG) workload.

The paper's join experiments use the RedFIR real-time tracking data
from the Nuremberg stadium (26 GB): high-velocity sensor readings for
players and the ball. This module synthesises two joinable streams with
the same structure:

* ``positions`` — per-player position samples from body sensors;
* ``events`` — per-player event annotations (possession, kicks, speed
  bursts) from the analysis pipeline.

Both carry a ``player`` key, making the canonical experiment a windowed
equi-join of the two streams on player id. Join selectivity is governed
by the number of players and per-interval sample counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..hadoop.types import Record

__all__ = ["FFGConfig", "generate_position_records", "generate_event_records"]

_EVENTS = ("pass", "shot", "tackle", "sprint", "possession")


@dataclass(frozen=True)
class FFGConfig:
    """Shape of the synthetic sensor streams."""

    record_size: int = 80
    num_players: int = 22
    field_length: float = 105.0
    field_width: float = 68.0

    def __post_init__(self) -> None:
        if self.record_size <= 0:
            raise ValueError("record_size must be positive")
        if self.num_players < 1:
            raise ValueError("num_players must be positive")


def _count(rate: float, t_start: float, t_end: float, record_size: int) -> int:
    if t_end <= t_start:
        raise ValueError(f"empty interval [{t_start}, {t_end})")
    if rate <= 0:
        raise ValueError("rate must be positive")
    return max(1, round(rate * (t_end - t_start) / record_size))


def generate_position_records(
    t_start: float,
    t_end: float,
    rate: float,
    *,
    config: Optional[FFGConfig] = None,
    seed: int = 0,
) -> List[Record]:
    """Player position samples covering ``[t_start, t_end)``."""
    config = config if config is not None else FFGConfig()
    count = _count(rate, t_start, t_end, config.record_size)
    rng = random.Random((seed, "pos", round(t_start * 1000)).__hash__())
    duration = t_end - t_start
    step = duration / count
    records: List[Record] = []
    for i in range(count):
        ts = t_start + min(duration - 1e-6, i * step + rng.random() * step * 0.5)
        player = rng.randrange(config.num_players)
        records.append(
            Record(
                ts=ts,
                value={
                    "src": "positions",
                    "player": player,
                    "x": round(rng.random() * config.field_length, 2),
                    "y": round(rng.random() * config.field_width, 2),
                    "speed": round(rng.random() * 9.5, 2),
                },
                size=config.record_size,
            )
        )
    return records


def generate_event_records(
    t_start: float,
    t_end: float,
    rate: float,
    *,
    config: Optional[FFGConfig] = None,
    seed: int = 0,
) -> List[Record]:
    """Per-player event annotations covering ``[t_start, t_end)``."""
    config = config if config is not None else FFGConfig()
    count = _count(rate, t_start, t_end, config.record_size)
    rng = random.Random((seed, "evt", round(t_start * 1000)).__hash__())
    duration = t_end - t_start
    step = duration / count
    records: List[Record] = []
    for i in range(count):
        ts = t_start + min(duration - 1e-6, i * step + rng.random() * step * 0.5)
        records.append(
            Record(
                ts=ts,
                value={
                    "src": "events",
                    "player": rng.randrange(config.num_players),
                    "event": rng.choice(_EVENTS),
                    "intensity": round(rng.random(), 3),
                },
                size=config.record_size,
            )
        )
    return records
