"""The paper's evaluated recurring queries as reusable builders.

Two query families drive the entire evaluation (Sec. 6.1):

* **aggregation** over the WCC click stream — group clicks by a
  dimension (object, region, ...) and aggregate counts and bytes; the
  reducer's per-pane partials merge algebraically in the finalizer;
* **equi-join** of the two FFG sensor streams on player id — the
  mapper tags each record with its source, the reducer cross-products
  the two sides per key, and the default concatenating finalizer
  assembles the window output from per-pane-pair results.

Both builders return :class:`~repro.core.query.RecurringQuery` objects
that run identically on the Redoop runtime and (via their inner job)
on the plain-Hadoop baseline — which is exactly how the harness
compares the systems.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Tuple

from ..core.panes import WindowSpec
from ..core.query import RecurringQuery, merging_finalizer
from ..hadoop.job import MapReduceJob
from ..hadoop.types import KeyValue, Record

__all__ = [
    "AGG_SOURCE",
    "JOIN_SOURCES",
    "aggregation_query",
    "distinct_count_query",
    "extrema_query",
    "join_query",
]

#: Default source names used by the experiment harness.
AGG_SOURCE = "wcc"
JOIN_SOURCES = ("events", "positions")


# ----------------------------------------------------------------------
# aggregation (WCC)
# ----------------------------------------------------------------------


class _AggMapper:
    """Count/bytes mapper over one key field.

    Callable classes instead of closures keep the figure jobs picklable,
    which is what lets the process execution backend run them.
    """

    __slots__ = ("key_field",)

    def __init__(self, key_field: str) -> None:
        self.key_field = key_field

    def __call__(self, record: Record) -> Iterable[KeyValue]:
        value = record.value
        yield value[self.key_field], (1, value.get("bytes", 0))


def _agg_mapper_for(key_field: str):
    return _AggMapper(key_field)


def _agg_reducer(key: Any, values: List[Tuple[int, int]]) -> Iterable[KeyValue]:
    clicks = sum(v[0] for v in values)
    volume = sum(v[1] for v in values)
    yield key, (clicks, volume)


def _agg_merge(partials: List[Tuple[int, int]]) -> Tuple[int, int]:
    return (
        sum(p[0] for p in partials),
        sum(p[1] for p in partials),
    )


def aggregation_query(
    win: float,
    slide: float,
    *,
    name: str = "wcc-agg",
    source: str = AGG_SOURCE,
    key_field: str = "object",
    num_reducers: int = 60,
) -> RecurringQuery:
    """The paper's recurring aggregation: click count + bytes per key.

    The reducer is algebraic (sums), so per-pane partial outputs merge
    exactly in the finalizer — Redoop's window answer equals plain
    Hadoop's tuple-level aggregation.
    """
    job = MapReduceJob(
        name=name,
        mapper=_agg_mapper_for(key_field),
        reducer=_agg_reducer,
        combiner=_agg_reducer,
        num_reducers=num_reducers,
        intermediate_pair_size=48,
        output_pair_size=48,
    )
    return RecurringQuery(
        name=name,
        job=job,
        windows={source: WindowSpec(win=win, slide=slide)},
        finalize=merging_finalizer(_agg_merge),
    )


# ----------------------------------------------------------------------
# join (FFG)
# ----------------------------------------------------------------------


def _join_mapper(record: Record) -> Iterable[KeyValue]:
    value = record.value
    yield value["player"], (value["src"], value)


def _join_reducer(key: Any, values: List[Tuple[str, dict]]) -> Iterable[KeyValue]:
    """Cross-product the two tagged sides for one key group."""
    left = [v for tag, v in values if tag == JOIN_SOURCES[0]]
    right = [v for tag, v in values if tag == JOIN_SOURCES[1]]
    for a in left:
        for b in right:
            yield key, (a["event"], a["intensity"], b["x"], b["y"], b["speed"])


def join_query(
    win: float,
    slide: float,
    *,
    name: str = "ffg-join",
    sources: Tuple[str, str] = JOIN_SOURCES,
    num_reducers: int = 60,
) -> RecurringQuery:
    """The paper's recurring binary equi-join on player id.

    Pane pairs are joined independently; because panes partition each
    source, the union of per-pair cross products equals the window-wide
    join, so the default concatenating finalizer is exact.
    """
    job = MapReduceJob(
        name=name,
        mapper=_join_mapper,
        reducer=_join_reducer,
        combiner=None,  # joins cannot pre-combine
        num_reducers=num_reducers,
        intermediate_pair_size=96,
        output_pair_size=64,
    )
    return RecurringQuery(
        name=name,
        job=job,
        windows={
            sources[0]: WindowSpec(win=win, slide=slide),
            sources[1]: WindowSpec(win=win, slide=slide),
        },
    )


# ----------------------------------------------------------------------
# additional algebraic recurring queries (library extensions)
# ----------------------------------------------------------------------


class _ProjectingMapper:
    """Emit ``(record[key_field], record[value_field])`` pairs (picklable)."""

    __slots__ = ("key_field", "value_field", "cast")

    def __init__(self, key_field: str, value_field: str, cast=None) -> None:
        self.key_field = key_field
        self.value_field = value_field
        self.cast = cast

    def __call__(self, record: Record) -> Iterable[KeyValue]:
        value = record.value
        measure = value[self.value_field]
        yield value[self.key_field], (
            measure if self.cast is None else self.cast(measure)
        )


def _distinct_mapper_for(key_field: str, value_field: str):
    return _ProjectingMapper(key_field, value_field)


def _distinct_reducer(key: Any, values: List[Any]) -> Iterable[KeyValue]:
    """Union raw values and pre-combined sets into one frozenset.

    The combiner's output (a frozenset) re-enters this reducer, so the
    fold must flatten: raw scalars are added, sets are unioned. (This
    means frozensets cannot themselves be the *measured* values.)
    """
    out: set = set()
    for v in values:
        if isinstance(v, frozenset):
            out.update(v)
        else:
            out.add(v)
    yield key, frozenset(out)


def _distinct_merge(partials: List[frozenset]) -> frozenset:
    merged: set = set()
    for p in partials:
        merged.update(p)
    return frozenset(merged)


def distinct_count_query(
    win: float,
    slide: float,
    *,
    name: str = "wcc-distinct",
    source: str = AGG_SOURCE,
    key_field: str = "object",
    value_field: str = "client",
    num_reducers: int = 60,
) -> RecurringQuery:
    """Distinct values per key (e.g. unique clients per object).

    Pane partials are *sets*, whose union is associative and
    commutative — the algebraic property Redoop's pane-based merge
    requires. The window answer per key is the merged set; take its
    ``len`` downstream for the count.
    """
    job = MapReduceJob(
        name=name,
        mapper=_distinct_mapper_for(key_field, value_field),
        reducer=_distinct_reducer,
        combiner=_distinct_reducer,
        num_reducers=num_reducers,
        intermediate_pair_size=48,
        output_pair_size=160,  # sets are fatter than scalars
    )
    return RecurringQuery(
        name=name,
        job=job,
        windows={source: WindowSpec(win=win, slide=slide)},
        finalize=merging_finalizer(_distinct_merge),
    )


def _extrema_reducer(key: Any, values: List[float]) -> Iterable[KeyValue]:
    yield key, (min(values), max(values))


def _extrema_merge(partials: List[Tuple[float, float]]) -> Tuple[float, float]:
    return (
        min(p[0] for p in partials),
        max(p[1] for p in partials),
    )


def extrema_query(
    win: float,
    slide: float,
    *,
    name: str = "ffg-extrema",
    source: str = "positions",
    key_field: str = "player",
    value_field: str = "speed",
    num_reducers: int = 60,
) -> RecurringQuery:
    """Per-key (min, max) of a measure — e.g. players' speed envelopes.

    Min and max are idempotent semilattice operations, so pane partials
    merge exactly.
    """
    job = MapReduceJob(
        name=name,
        mapper=_ProjectingMapper(key_field, value_field, cast=float),
        reducer=_extrema_reducer,
        combiner=None,  # reducer output type differs from its input type
        num_reducers=num_reducers,
        intermediate_pair_size=48,
        output_pair_size=64,
    )
    return RecurringQuery(
        name=name,
        job=job,
        windows={source: WindowSpec(win=win, slide=slide)},
        finalize=merging_finalizer(_extrema_merge),
    )
