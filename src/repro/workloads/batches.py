"""Batch arrival generation: turning record generators into HDFS uploads.

The paper's data model (Sec. 2.1): sources deliver data as ordered,
non-overlapping batch files that land in HDFS as they are collected.
This module slices a time horizon into batches, invokes a per-interval
record generator, and yields ``(BatchFile, records)`` pairs ready to be
ingested by either the Redoop runtime or the plain-Hadoop catalog.

It also provides the rate schedules the experiments need — constant
rates and the Fig. 8 spike pattern (selected windows carry a doubled
workload).
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Set, Tuple

from ..hadoop.catalog import BatchFile
from ..hadoop.types import Record
from ..core.panes import WindowSpec

__all__ = [
    "RateSchedule",
    "constant_rate",
    "spiky_rate",
    "generate_batches",
    "paper_spike_windows",
]

#: Maps a time interval to the byte rate in effect over it.
RateSchedule = Callable[[float, float], float]

#: Generates records for one interval at one rate:
#: ``(t_start, t_end, rate, seed) -> records``.
RecordGenerator = Callable[[float, float, float, int], List[Record]]


def constant_rate(rate: float) -> RateSchedule:
    """A schedule delivering ``rate`` bytes/s at all times."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    return lambda _t0, _t1: rate


def spiky_rate(
    base_rate: float,
    spec: WindowSpec,
    *,
    spiked_recurrences: Set[int],
    factor: float = 2.0,
) -> RateSchedule:
    """The Fig. 8 schedule: selected recurrences carry ``factor``× data.

    A recurrence ``k`` is "spiked" by inflating the rate over the slide
    interval of *new* data it introduces, i.e. ``[exec(k) - slide,
    exec(k))`` (for ``k = 1``, the whole first window). Intervals must
    not straddle slide boundaries — :func:`generate_batches` guarantees
    this when ``batch_seconds`` divides the slide.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")

    def schedule(t0: float, t1: float) -> float:
        mid = (t0 + t1) / 2.0
        # Which recurrence first introduces data at time `mid`?
        # exec(k) - slide <= mid < exec(k)  =>  k = floor((mid - win)/slide) + 2
        if mid < spec.win:
            recurrence = 1
        else:
            recurrence = int((mid - spec.win) // spec.slide) + 2
        return base_rate * factor if recurrence in spiked_recurrences else base_rate

    return schedule


def paper_spike_windows(num_windows: int = 10) -> Set[int]:
    """Fig. 8's pattern: windows 1, 4, 7, 10 normal, the rest doubled."""
    normal = {1, 4, 7, 10}
    return {k for k in range(1, num_windows + 1) if k not in normal}


def generate_batches(
    source: str,
    horizon: float,
    batch_seconds: float,
    rate_schedule: RateSchedule,
    record_generator: RecordGenerator,
    *,
    path_prefix: str = "/batches",
    seed: int = 0,
) -> Iterator[Tuple[BatchFile, List[Record]]]:
    """Yield consecutive batches covering ``[0, horizon)``.

    Each batch covers ``batch_seconds`` (the final one may be shorter)
    and is generated at the schedule's rate for its interval. Batches
    appear in time order, matching the catalog/packer contracts.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if batch_seconds <= 0:
        raise ValueError("batch_seconds must be positive")
    index = 0
    t0 = 0.0
    while t0 < horizon - 1e-9:
        t1 = min(horizon, t0 + batch_seconds)
        rate = rate_schedule(t0, t1)
        records = record_generator(t0, t1, rate, seed + index)
        batch = BatchFile(
            path=f"{path_prefix}/{source}/b{index:05d}",
            source=source,
            t_start=t0,
            t_end=t1,
        )
        yield batch, records
        index += 1
        t0 = t1
