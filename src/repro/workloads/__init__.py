"""Synthetic workloads standing in for the paper's datasets.

The WorldCup Click trace (236 GB) and RedFIR football sensor data
(26 GB) are not redistributable; these generators produce streams with
the same schemas, rates, and skew characteristics, plus the batch
arrival machinery and the exact recurring queries the paper evaluates.
"""

from .batches import (
    RateSchedule,
    constant_rate,
    generate_batches,
    paper_spike_windows,
    spiky_rate,
)
from .ffg import FFGConfig, generate_event_records, generate_position_records
from .queries import (
    AGG_SOURCE,
    JOIN_SOURCES,
    aggregation_query,
    distinct_count_query,
    extrema_query,
    join_query,
)
from .wcc import WCCConfig, generate_wcc_records

__all__ = [
    "AGG_SOURCE",
    "FFGConfig",
    "JOIN_SOURCES",
    "RateSchedule",
    "WCCConfig",
    "aggregation_query",
    "constant_rate",
    "distinct_count_query",
    "extrema_query",
    "generate_batches",
    "generate_event_records",
    "generate_position_records",
    "generate_wcc_records",
    "join_query",
    "paper_spike_windows",
    "spiky_rate",
]
