"""Bounded-cache benchmarks: hit rate vs capacity, fig7 under budget.

The paper's experiments assume node-local disks big enough that caches
only ever leave through window expiration. These benches ask the
production question instead: *how much budget does Redoop's caching
actually need, and how gracefully does it degrade below that?*

Two entry points:

* :func:`sweep_hit_rate_vs_capacity` — run the fig7 join workload
  unbounded once to measure the peak per-node cached working set, then
  re-run it at descending budget fractions under each eviction policy,
  reporting hit rate, evictions, admission rejections, and average
  response time per point. Output digests are cross-checked against
  the unbounded run: a budget may cost time, never correctness.
* :func:`fig7_under_budget` — the acceptance scenario: the fig7
  comparison with the Redoop series capped at ``capacity_fraction`` of
  its own unbounded peak. Redoop must still beat the no-cache baseline
  on virtual runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .experiments import join_config
from .harness import ExperimentConfig, SeriesResult, build_workload, run_redoop_series

__all__ = [
    "CapacityPoint",
    "CapacitySweep",
    "fig7_under_budget",
    "format_capacity_table",
    "sweep_hit_rate_vs_capacity",
]


@dataclass(slots=True)
class CapacityPoint:
    """One (policy, budget fraction) cell of the capacity sweep."""

    policy: str
    fraction: float
    capacity_bytes: int
    hits: int
    misses: int
    evicted: int
    bytes_evicted: int
    admission_rejected: int
    avg_response: float
    #: Window outputs byte-identical to the unbounded run's.
    outputs_match: bool

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_row(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "fraction": self.fraction,
            "capacity_bytes": self.capacity_bytes,
            "hit_rate": round(self.hit_rate, 4),
            "hits": self.hits,
            "misses": self.misses,
            "evicted": self.evicted,
            "bytes_evicted": self.bytes_evicted,
            "admission_rejected": self.admission_rejected,
            "avg_response": round(self.avg_response, 2),
            "outputs_match": self.outputs_match,
        }


@dataclass(slots=True)
class CapacitySweep:
    """Full sweep result: the unbounded reference plus every point."""

    peak_cached_bytes: int
    unbounded_avg_response: float
    points: List[CapacityPoint] = field(default_factory=list)

    def as_report(self) -> Dict[str, object]:
        return {
            "peak_cached_bytes": self.peak_cached_bytes,
            "unbounded_avg_response": round(self.unbounded_avg_response, 2),
            "points": [p.as_row() for p in self.points],
        }


def _bounded_point(
    config: ExperimentConfig,
    workload,
    reference: SeriesResult,
    *,
    policy: str,
    fraction: float,
    capacity: int,
    backend=None,
) -> CapacityPoint:
    series = run_redoop_series(
        config,
        label=f"redoop[{policy}@{fraction:g}]",
        workload=workload,
        cache_capacity_bytes=capacity,
        eviction_policy=policy,
        backend=backend,
    )
    counters = series.runtime_counters
    return CapacityPoint(
        policy=policy,
        fraction=fraction,
        capacity_bytes=capacity,
        hits=int(counters.get("cache.hits", 0)),
        misses=int(counters.get("cache.misses", 0)),
        evicted=int(counters.get("cache.evicted", 0)),
        bytes_evicted=int(counters.get("cache.bytes_evicted", 0)),
        admission_rejected=int(counters.get("cache.admission_rejected", 0)),
        avg_response=series.avg_response(),
        outputs_match=series.output_digests == reference.output_digests,
    )


def sweep_hit_rate_vs_capacity(
    *,
    scale: float = 0.1,
    overlap: float = 0.5,
    num_windows: int = 6,
    fractions: Sequence[float] = (1.0, 0.75, 0.5, 0.25),
    policies: Sequence[str] = ("lru", "lifespan"),
    config: Optional[ExperimentConfig] = None,
    backend=None,
) -> CapacitySweep:
    """Hit rate and cost at descending budget fractions of the peak."""
    if config is None:
        config = join_config(overlap, scale=scale, num_windows=num_windows)
    workload = build_workload(config)
    unbounded = run_redoop_series(
        config, label="redoop", workload=workload, backend=backend
    )
    peak = unbounded.peak_cached_bytes
    sweep = CapacitySweep(
        peak_cached_bytes=peak,
        unbounded_avg_response=unbounded.avg_response(),
    )
    for policy in policies:
        for fraction in fractions:
            capacity = max(1, int(peak * fraction))
            sweep.points.append(
                _bounded_point(
                    config,
                    workload,
                    unbounded,
                    policy=policy,
                    fraction=fraction,
                    capacity=capacity,
                    backend=backend,
                )
            )
    return sweep


def fig7_under_budget(
    *,
    scale: float = 0.1,
    overlap: float = 0.5,
    num_windows: int = 6,
    capacity_fraction: float = 0.5,
    policies: Sequence[str] = ("lru", "lifespan"),
    config: Optional[ExperimentConfig] = None,
) -> Tuple[Dict[str, SeriesResult], int]:
    """The fig7 join comparison with budget-capped Redoop variants.

    Returns the series dict — ``no-caching`` baseline, unbounded
    ``redoop``, and one ``redoop[<policy>]`` per policy capped at
    ``capacity_fraction`` of the unbounded peak — plus the measured
    peak itself. All Redoop variants must produce byte-identical
    window outputs; a mismatch raises.
    """
    if config is None:
        config = join_config(overlap, scale=scale, num_windows=num_windows)
    workload = build_workload(config)
    series: Dict[str, SeriesResult] = {
        "no-caching": run_redoop_series(
            config, label="no-caching", enable_caching=False, workload=workload
        ),
        "redoop": run_redoop_series(config, label="redoop", workload=workload),
    }
    peak = series["redoop"].peak_cached_bytes
    capacity = max(1, int(peak * capacity_fraction))
    for policy in policies:
        label = f"redoop[{policy}]"
        series[label] = run_redoop_series(
            config,
            label=label,
            workload=workload,
            cache_capacity_bytes=capacity,
            eviction_policy=policy,
        )
    reference = series["redoop"].output_digests
    for label, result in series.items():
        if result.output_digests != reference:
            raise AssertionError(
                f"series {label!r} diverges from the unbounded outputs "
                f"under budget {capacity} ({capacity_fraction:g} of peak "
                f"{peak})"
            )
    return series, peak


def format_capacity_table(sweep: CapacitySweep) -> str:
    """Plain-text table of the sweep (CLI + nightly artifact)."""
    lines = [
        f"peak cached working set: {sweep.peak_cached_bytes} B "
        f"(unbounded avg response {sweep.unbounded_avg_response:.2f}s)",
        f"{'policy':<10} {'frac':>5} {'hit rate':>9} {'evicted':>8} "
        f"{'rejected':>9} {'avg resp':>9} {'outputs':>8}",
    ]
    for p in sweep.points:
        lines.append(
            f"{p.policy:<10} {p.fraction:>5.2f} {p.hit_rate:>9.3f} "
            f"{p.evicted:>8d} {p.admission_rejected:>9d} "
            f"{p.avg_response:>9.2f} {'ok' if p.outputs_match else 'DIVERGED':>8}"
        )
    return "\n".join(lines)
