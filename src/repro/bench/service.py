"""Multi-tenant serving benchmark: N queries, mixed windows, churn.

Where :mod:`repro.bench.harness` measures one query against the paper's
figures, this scenario exercises the *serving layer*: several tenants
with different window/slide constraints share one source (and therefore
one GCD pane plan and one set of pane files), batches stream in through
admission-controlled channels, tenants churn mid-run (a deregistration,
a replacement submission, a pause/resume), and the server checkpoints
itself at recurrence boundaries.

The driver is deliberately *replayable*: every step — churn actions,
batch offers, ``run_until`` ticks — is idempotent against a server that
has already progressed past it (stale offers are skipped, applied
actions are remembered in the server's checkpointed scratchpad). Replay
against a server restored from any checkpoint therefore converges to
exactly the uninterrupted run, which is what the kill/restore soak
asserts byte-for-byte via per-window output digests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.runtime import RedoopRuntime
from ..hadoop.catalog import BatchFile
from ..hadoop.cluster import Cluster
from ..hadoop.config import small_test_config
from ..hadoop.types import Record
from ..service import QuerySpec, QueryServer
from ..trace import Tracer
from ..workloads.batches import constant_rate, generate_batches
from ..workloads.wcc import WCCConfig, generate_wcc_records

__all__ = [
    "ServiceScenario",
    "ChurnAction",
    "ScenarioRun",
    "build_server",
    "tenant_specs",
    "churn_plan",
    "scenario_batches",
    "drive_scenario",
    "output_digests",
]

#: The shared click-stream source every tenant reads.
SOURCE = "wcc"

#: Factory path tenants register through (must be importable on restore).
AGG_FACTORY = "repro.workloads.queries:aggregation_query"


@dataclass(frozen=True)
class ServiceScenario:
    """Knobs of the multi-tenant soak; defaults satisfy the CI smoke run."""

    tenants: int = 3
    #: Recurrences of the *base* slide covered by the batch horizon.
    recurrences: int = 20
    slide: float = 10.0
    rate: float = 200_000.0
    batch_seconds: float = 5.0
    seed: int = 0
    churn: bool = True
    num_nodes: int = 4
    num_reducers: int = 4
    channel_capacity: int = 16

    @property
    def horizon(self) -> float:
        return self.slide * self.recurrences

    def record_config(self) -> WCCConfig:
        # Fat records keep the record count (and sim time) small while
        # the byte volume still stresses pane packing.
        return WCCConfig(record_size=4000, num_clients=500, num_objects=60)


@dataclass(frozen=True)
class ChurnAction:
    """One lifecycle step of the scenario's schedule."""

    time: float
    kind: str  # "submit" | "deregister" | "pause" | "resume"
    name: str
    spec: Optional[QuerySpec] = None


@dataclass
class ScenarioRun:
    """What a drive produced, in comparison-friendly form."""

    #: tenant -> [(recurrence, sha256 of its sorted window output)].
    digests: Dict[str, List[Tuple[int, str]]]
    recurrences_fired: int
    counters: Dict[str, float] = field(default_factory=dict)


def _tenant_spec(scenario: ServiceScenario, index: int, name: str,
                 win_panes: int, slide_panes: int) -> QuerySpec:
    return QuerySpec(
        name=name,
        factory=AGG_FACTORY,
        kwargs={
            "win": scenario.slide * win_panes,
            "slide": scenario.slide * slide_panes,
            "name": name,
            "source": SOURCE,
            "key_field": "object",
            "num_reducers": scenario.num_reducers,
        },
        rates={SOURCE: scenario.rate},
    )


def tenant_specs(scenario: ServiceScenario) -> List[QuerySpec]:
    """The initial tenant fleet: mixed windows and slides, one source."""
    specs = []
    for k in range(scenario.tenants):
        specs.append(
            _tenant_spec(
                scenario,
                k,
                f"t{k:02d}",
                win_panes=2 + (k % 3),
                slide_panes=1 if k % 2 == 0 else 2,
            )
        )
    return specs


def churn_plan(scenario: ServiceScenario) -> List[ChurnAction]:
    """Mid-run lifecycle schedule (empty when churn is disabled).

    Around mid-horizon, tenant ``t01`` leaves and a replacement with a
    different slide takes over its source; ``t02`` is paused for a few
    slides and resumed (its backlog then fires late — deliberate
    deadline misses).
    """
    if not scenario.churn or scenario.tenants < 3:
        return []
    h = scenario.horizon
    s = scenario.slide

    def snap(t: float) -> float:
        return max(s, round(t / s) * s)

    replacement = _tenant_spec(
        scenario, 1, "t01r", win_panes=4, slide_panes=2
    )
    return [
        ChurnAction(time=snap(h * 0.30), kind="pause", name="t02"),
        ChurnAction(time=snap(h * 0.45), kind="deregister", name="t01"),
        ChurnAction(
            time=snap(h * 0.45), kind="submit", name="t01r", spec=replacement
        ),
        ChurnAction(time=snap(h * 0.60), kind="resume", name="t02"),
    ]


def scenario_batches(
    scenario: ServiceScenario,
) -> List[Tuple[BatchFile, List[Record]]]:
    """The full (deterministic) batch schedule for the source."""
    config = scenario.record_config()
    return list(
        generate_batches(
            SOURCE,
            scenario.horizon,
            scenario.batch_seconds,
            constant_rate(scenario.rate),
            lambda t0, t1, rate, seed: generate_wcc_records(
                t0, t1, rate, config=config, seed=seed
            ),
            seed=scenario.seed,
        )
    )


def build_server(
    scenario: ServiceScenario,
    *,
    tracer: Optional[Tracer] = None,
    checkpoint_dir=None,
    checkpoint_every: int = 0,
    backend=None,
    reuse_store=None,
    share_scans: bool = False,
) -> QueryServer:
    """A fresh server with the scenario's initial tenants submitted.

    ``reuse_store`` enables the cross-query reuse tier: overlapping
    tenants (and a server restarted against the same store) are served
    from stored pane/window artifacts instead of recomputing.
    ``share_scans`` enables the plan-IR shared-scan optimizer: tenants
    whose Scan → Map → Shuffle prefixes are IR-equal (the scenario's
    whole fleet — same mapper config, same reducer fan-out) execute
    each pane's map phase once and fan the output out.
    """
    cluster = Cluster(
        small_test_config(scenario.num_nodes), seed=scenario.seed
    )
    scan_sharing = None
    if share_scans:
        from ..plan import SharedScanRegistry

        scan_sharing = SharedScanRegistry()
    runtime = RedoopRuntime(
        cluster,
        tracer=tracer,
        backend=backend,
        reuse_store=reuse_store,
        scan_sharing=scan_sharing,
    )
    server = QueryServer(
        runtime,
        channel_capacity=scenario.channel_capacity,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
    )
    for spec in tenant_specs(scenario):
        server.submit(spec)
    return server


def _apply_action(server: QueryServer, action: ChurnAction) -> None:
    applied = server.notes.setdefault("applied_actions", [])
    key = f"{action.time}:{action.kind}:{action.name}"
    if key in applied:
        return
    if action.kind == "submit":
        server.submit(action.spec)
    elif action.kind == "deregister":
        server.deregister(action.name)
    elif action.kind == "pause":
        server.pause(action.name)
    elif action.kind == "resume":
        server.resume(action.name)
    else:  # pragma: no cover - schedule construction guards this
        raise ValueError(f"unknown churn action {action.kind!r}")
    applied.append(key)


def drive_scenario(
    scenario: ServiceScenario,
    server: QueryServer,
    *,
    stop_after_recurrences: Optional[int] = None,
    pace: Optional[Callable[[float], None]] = None,
) -> ScenarioRun:
    """Replay the scenario's schedule against ``server`` to completion.

    Every step is idempotent, so the same call works for a fresh
    server, a restored one, or one that already ran to the end.
    ``stop_after_recurrences`` aborts the drive once the server has
    fired that many recurrences *in total* — the hook the soak test
    uses to kill the server at an arbitrary recurrence boundary.
    ``pace`` (if given) is called with the virtual time after each
    tick; the CLI's wall-clock mode sleeps there to pace the replay
    against real time. Pacing never affects the simulated outcome.
    """
    actions = churn_plan(scenario)
    cursor = 0
    for batch, records in scenario_batches(scenario):
        while cursor < len(actions) and actions[cursor].time <= batch.t_start + 1e-9:
            _apply_action(server, actions[cursor])
            cursor += 1
        if SOURCE in server.channels:
            server.offer(batch, records)
        server.run_until(batch.t_end)
        if pace is not None:
            pace(batch.t_end)
        if (
            stop_after_recurrences is not None
            and len(server.results) >= stop_after_recurrences
        ):
            return summarize(server)
    while cursor < len(actions):
        _apply_action(server, actions[cursor])
        cursor += 1
    server.run_until(scenario.horizon)
    return summarize(server)


def output_digests(server: QueryServer) -> Dict[str, List[Tuple[int, str]]]:
    """Per-tenant ``(recurrence, sha256-of-sorted-output)`` sequences."""
    digests: Dict[str, List[Tuple[int, str]]] = {}
    for result in server.results:
        canonical = "\n".join(sorted(map(repr, result.output)))
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        digests.setdefault(result.query, []).append(
            (result.recurrence, digest)
        )
    return digests


def summarize(server: QueryServer) -> ScenarioRun:
    return ScenarioRun(
        digests=output_digests(server),
        recurrences_fired=len(server.results),
        counters={
            name: value
            for name, value in server.counters.as_dict().items()
            if name.startswith(("service.", "runtime.", "reuse.", "plan."))
        },
    )
