"""Extension sweeps beyond the paper's evaluation.

The paper fixes the cluster at 30 nodes and the reducer count per job.
These sweeps probe how Redoop's advantage responds to deployment knobs
a practitioner would actually turn:

* **cluster size** — speedup vs plain Hadoop across node counts. More
  nodes shrink Hadoop's map waves, so the relative gain narrows; the
  crossover location tells you when caching stops paying;
* **reducer count** — per-task overheads of Redoop's pane-reduce and
  merge stages grow with the reducer count, while plain Hadoop
  amortises them over bigger tasks;
* **window size** — at fixed overlap, larger windows mean more
  absolute re-use per recurrence.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from ..hadoop.config import ClusterConfig
from .harness import (
    ExperimentConfig,
    SeriesResult,
    build_workload,
    run_hadoop_series,
    run_redoop_series,
)

__all__ = ["sweep_cluster_size", "sweep_num_reducers", "sweep_window_size"]


def _speedup(config: ExperimentConfig) -> Tuple[float, SeriesResult, SeriesResult]:
    workload = build_workload(config)
    hadoop = run_hadoop_series(config, workload=workload)
    redoop = run_redoop_series(config, workload=workload)
    if hadoop.output_digests != redoop.output_digests:
        raise AssertionError("systems diverged during a sweep")
    return redoop.speedup_vs(hadoop, skip_first=True), hadoop, redoop


def sweep_cluster_size(
    *,
    node_counts: Iterable[int] = (10, 20, 30),
    scale: float = 0.5,
    overlap: float = 0.9,
    num_windows: int = 5,
) -> Dict[int, float]:
    """Steady-state speedup per cluster size (aggregation workload)."""
    results: Dict[int, float] = {}
    for nodes in node_counts:
        config = ExperimentConfig(
            kind="aggregation",
            win=3600.0,
            overlap=overlap,
            num_windows=num_windows,
            rate=30_000_000.0 * scale,
            record_size=1_000_000,
            num_reducers=2 * nodes,
            cluster_config=ClusterConfig(num_nodes=nodes),
            seed=7,
        )
        results[nodes], _h, _r = _speedup(config)
    return results


def sweep_num_reducers(
    *,
    reducer_counts: Iterable[int] = (15, 30, 60, 120),
    scale: float = 0.5,
    overlap: float = 0.9,
    num_windows: int = 5,
) -> Dict[int, float]:
    """Steady-state speedup per reducer count on the 30-node cluster."""
    results: Dict[int, float] = {}
    for reducers in reducer_counts:
        config = ExperimentConfig(
            kind="aggregation",
            win=3600.0,
            overlap=overlap,
            num_windows=num_windows,
            rate=30_000_000.0 * scale,
            record_size=1_000_000,
            num_reducers=reducers,
            seed=7,
        )
        results[reducers], _h, _r = _speedup(config)
    return results


def sweep_window_size(
    *,
    window_hours: Iterable[float] = (0.5, 1.0, 2.0),
    scale: float = 0.5,
    overlap: float = 0.9,
    num_windows: int = 4,
) -> Dict[float, float]:
    """Steady-state speedup per window length at fixed overlap and rate."""
    results: Dict[float, float] = {}
    for hours in window_hours:
        config = ExperimentConfig(
            kind="aggregation",
            win=hours * 3600.0,
            overlap=overlap,
            num_windows=num_windows,
            rate=30_000_000.0 * scale,
            record_size=1_000_000,
            seed=7,
        )
        results[hours], _h, _r = _speedup(config)
    return results
