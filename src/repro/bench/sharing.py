"""Shared-scan differential oracle: sharing on vs. off, byte-identical.

The shared-scan optimizer (``docs/plan.md``) must be a pure performance
optimization — fanning one tenant's partitioned map output into another
tenant's shuffle may never change an answer. This module pins that the
same way the chaos and reuse tiers pin their guarantees: run the
multi-tenant service scenario twice, once with sharing off (the
baseline) and once with sharing on, and require every tenant's
per-window output digest to match byte-for-byte, while the shared run
actually shares (``plan.shared_scans`` > 0, ``plan.shared_map_bytes_saved``
> 0 — an oracle that never exercises the optimizer proves nothing).

A deterministic *fault plan* (node kills/recoveries at fixed virtual
times, applied identically to both runs) extends the differential to
chaos schedules: a failed node loses its caches, the re-mapped panes go
through the registry's absorb path, and the digests still must match.
Process backends ride through the ``backend_factory`` hook — each run
gets a fresh backend so pool state never leaks between them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from .service import (
    ScenarioRun,
    ServiceScenario,
    build_server,
    drive_scenario,
)

__all__ = [
    "FaultAction",
    "SharingDifferentialReport",
    "default_fault_plan",
    "run_sharing_differential",
]


@dataclass(frozen=True)
class FaultAction:
    """One deterministic fault step: kill or recover a node by id."""

    time: float
    kind: str  # "node-kill" | "node-recover"
    node_id: int


def default_fault_plan(scenario: ServiceScenario) -> List[FaultAction]:
    """Kill one node mid-horizon, recover it a few slides later."""
    h, s = scenario.horizon, scenario.slide
    victim = scenario.num_nodes - 1
    return [
        FaultAction(time=round(h * 0.4 / s) * s, kind="node-kill", node_id=victim),
        FaultAction(time=round(h * 0.7 / s) * s, kind="node-recover", node_id=victim),
    ]


@dataclass
class SharingDifferentialReport:
    """Outcome of one shared-vs-unshared differential run."""

    scenario: ServiceScenario
    baseline: ScenarioRun
    shared: ScenarioRun
    #: human-readable digest mismatches (empty = byte-identical).
    mismatches: List[str] = field(default_factory=list)
    faults_applied: int = 0

    @property
    def shared_scans(self) -> float:
        return self.shared.counters.get("plan.shared_scans", 0.0)

    @property
    def shared_map_bytes_saved(self) -> float:
        return self.shared.counters.get("plan.shared_map_bytes_saved", 0.0)

    @property
    def ok(self) -> bool:
        return (
            not self.mismatches
            and self.shared_scans > 0
            and self.shared_map_bytes_saved > 0
        )

    def summary(self) -> str:
        lines = [
            f"tenants={self.scenario.tenants} "
            f"recurrences={self.scenario.recurrences} "
            f"faults_applied={self.faults_applied}",
            f"baseline fired {self.baseline.recurrences_fired}, "
            f"shared fired {self.shared.recurrences_fired}",
            f"plan.shared_scans            {self.shared_scans:10.0f}",
            f"plan.shared_map_bytes_saved  {self.shared_map_bytes_saved:10.0f}",
        ]
        published = self.shared.counters.get("plan.map_outputs_published", 0.0)
        retired = self.shared.counters.get("plan.map_outputs_retired", 0.0)
        lines.append(f"plan.map_outputs_published   {published:10.0f}")
        lines.append(f"plan.map_outputs_retired     {retired:10.0f}")
        if self.mismatches:
            lines.append("DIGEST MISMATCHES:")
            lines.extend(f"  {m}" for m in self.mismatches)
        elif self.shared_scans <= 0:
            lines.append("FAILED: the shared run never shared a scan")
        else:
            lines.append(
                "ok: all window digests byte-identical, sharing exercised"
            )
        return "\n".join(lines)


def _compare(baseline: ScenarioRun, shared: ScenarioRun) -> List[str]:
    mismatches: List[str] = []
    tenants = sorted(set(baseline.digests) | set(shared.digests))
    for tenant in tenants:
        base = baseline.digests.get(tenant, [])
        with_sharing = shared.digests.get(tenant, [])
        if len(base) != len(with_sharing):
            mismatches.append(
                f"{tenant}: baseline fired {len(base)} windows, "
                f"shared fired {len(with_sharing)}"
            )
        for (br, bd), (sr, sd) in zip(base, with_sharing):
            if br != sr or bd != sd:
                mismatches.append(
                    f"{tenant}: window {br} digest {bd[:12]}… vs "
                    f"window {sr} digest {sd[:12]}…"
                )
    return mismatches


def _drive_one(
    scenario: ServiceScenario,
    *,
    share_scans: bool,
    backend,
    fault_plan: Sequence[FaultAction],
) -> Tuple[ScenarioRun, int]:
    server = build_server(scenario, backend=backend, share_scans=share_scans)
    applied = 0
    if fault_plan:
        from ..core.recovery import RecoveryManager

        recovery = RecoveryManager(server.runtime)
        pending = sorted(fault_plan, key=lambda a: (a.time, a.node_id))
        cursor = [0]

        def pace(now: float) -> None:
            while cursor[0] < len(pending) and pending[cursor[0]].time <= now + 1e-9:
                action = pending[cursor[0]]
                cursor[0] += 1
                node = server.runtime.cluster.node(action.node_id)
                if action.kind == "node-kill" and node.alive:
                    recovery.fail_node(action.node_id)
                elif action.kind == "node-recover" and not node.alive:
                    recovery.recover_node(action.node_id)
                else:
                    continue

        run = drive_scenario(scenario, server, pace=pace)
        applied = cursor[0]
    else:
        run = drive_scenario(scenario, server)
    return run, applied


def run_sharing_differential(
    scenario: Optional[ServiceScenario] = None,
    *,
    backend_factory: Optional[Callable[[], object]] = None,
    fault_plan: Sequence[FaultAction] = (),
) -> SharingDifferentialReport:
    """Drive the scenario with sharing off then on; compare digests.

    Both runs see the identical batch schedule, churn plan, and fault
    plan — the only difference is the shared-scan registry. The report
    is ``ok`` when every tenant's per-window digests match
    byte-for-byte AND the shared run actually skipped map phases.
    """
    scenario = scenario if scenario is not None else ServiceScenario()
    runs = []
    applied = 0
    for share in (False, True):
        backend = backend_factory() if backend_factory is not None else None
        try:
            run, applied = _drive_one(
                scenario,
                share_scans=share,
                backend=backend,
                fault_plan=fault_plan,
            )
        finally:
            if backend is not None:
                backend.close()
        runs.append(run)
    baseline, shared = runs
    return SharingDifferentialReport(
        scenario=scenario,
        baseline=baseline,
        shared=shared,
        mismatches=_compare(baseline, shared),
        faults_applied=applied,
    )
