"""Wall-clock throughput benchmark for execution backends.

Unlike every other benchmark in this package — which reports *virtual*
seconds charged by the cost model — this one measures *real* wall-clock
seconds: how fast the simulator chews through CPU-bound map user-code
on the serial backend versus a process pool at various worker counts.

The workload is deliberately compute-heavy and pickle-friendly: each
record costs a fixed arithmetic spin (no ``hash()``, whose per-process
salt would make results process-dependent; no I/O). Virtual-time
semantics are irrelevant here, so the bench drives
:func:`repro.hadoop.task.execute_map` directly through the backends —
the exact seam the runtime parallelises.

Run it from the CLI::

    repro throughput --workers 1 2 4 --json-out throughput.json
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..exec import ExecBackend, ProcessPoolBackend, SerialBackend, WorkerFaultPlan
from ..hadoop.counters import Counters
from ..hadoop.job import MapReduceJob
from ..hadoop.task import execute_map
from ..hadoop.types import KeyValue, Record

__all__ = [
    "SpinMapper",
    "ThroughputPoint",
    "ThroughputReport",
    "build_spin_job",
    "build_spin_records",
    "format_throughput_table",
    "run_throughput_bench",
]


class SpinMapper:
    """A CPU-bound mapper: a fixed arithmetic spin per record.

    Picklable (module-level class, ``__slots__`` state only) and
    deterministic across processes: the spin is plain integer
    arithmetic — no ``hash()``, whose per-process salt would change
    results between workers.
    """

    __slots__ = ("spins",)

    def __init__(self, spins: int) -> None:
        self.spins = spins

    def __call__(self, record: Record) -> Iterable[KeyValue]:
        value = record.value
        acc = value["seed"]
        for _ in range(self.spins):
            acc = (acc * 1103515245 + 12345) % 2147483648
        yield value["key"], acc


def _sum_reducer(key: Any, values: List[int]) -> Iterable[KeyValue]:
    yield key, sum(values)


def build_spin_job(*, spins: int, num_reducers: int = 4) -> MapReduceJob:
    """The benchmark's MapReduce job: spin per record, sum per key."""
    return MapReduceJob(
        name="throughput-spin",
        mapper=SpinMapper(spins),
        reducer=_sum_reducer,
        combiner=None,
        num_reducers=num_reducers,
    )


def build_spin_records(
    *, num_records: int, num_keys: int = 64
) -> List[Record]:
    """Deterministic records for the spin job (no RNG, no timestamps)."""
    return [
        Record(
            ts=float(i),
            value={"key": i % num_keys, "seed": i * 2654435761 % 2147483648},
            size=100,
        )
        for i in range(num_records)
    ]


@dataclass(slots=True)
class ThroughputPoint:
    """One worker-count measurement."""

    workers: int
    backend: str
    records: int
    wall_seconds: float
    #: Wall-clock records per second across all map tasks.
    records_per_sec: float
    #: Speedup over the 1-worker (serial) measurement of the same run.
    speedup: float = 1.0
    #: ``exec.*`` recovery counters when worker faults were injected
    #: (retries, worker_lost, quarantined, pool_rebuilds); empty when
    #: the point ran fault-free.
    fault_counters: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        row = {
            "workers": self.workers,
            "backend": self.backend,
            "records": self.records,
            "wall_seconds": round(self.wall_seconds, 4),
            "records_per_sec": round(self.records_per_sec, 1),
            "speedup": round(self.speedup, 3),
        }
        if self.fault_counters:
            row["fault_counters"] = {
                k: int(v) for k, v in sorted(self.fault_counters.items())
            }
        return row


@dataclass(slots=True)
class ThroughputReport:
    """The full sweep over worker counts."""

    num_records: int
    num_splits: int
    spins: int
    #: Host CPU count — speedup is bounded by it; a 1-CPU box shows ~1x
    #: at every worker count no matter how parallel the backend is.
    cpus: int = field(default_factory=lambda: os.cpu_count() or 1)
    points: List[ThroughputPoint] = field(default_factory=list)

    def as_report(self) -> Dict[str, object]:
        return {
            "bench": "throughput",
            "num_records": self.num_records,
            "num_splits": self.num_splits,
            "spins": self.spins,
            "cpus": self.cpus,
            "points": [p.as_row() for p in self.points],
        }

    def to_json(self, **kwargs: Any) -> str:
        kwargs.setdefault("indent", 2)
        return json.dumps(self.as_report(), **kwargs)


def _backend_for(
    workers: int, batch_deadline: Optional[float] = None
) -> ExecBackend:
    """1 worker -> the serial backend (no pool, the true baseline)."""
    if workers <= 1:
        return SerialBackend()
    if batch_deadline is not None:
        return ProcessPoolBackend(workers=workers, batch_deadline=batch_deadline)
    return ProcessPoolBackend(workers=workers)


def run_throughput_bench(
    *,
    worker_counts: Sequence[int] = (1, 2, 4),
    num_records: int = 2048,
    num_splits: int = 32,
    spins: int = 4000,
    repeats: int = 1,
    fault_kills: int = 0,
    fault_hangs: int = 0,
    fault_seed: int = 1,
    batch_deadline: Optional[float] = None,
) -> ThroughputReport:
    """Measure map wall-clock throughput at each worker count.

    The record set is carved into ``num_splits`` equal map tasks and
    pushed through ``backend.run_tasks`` exactly as the runtime does;
    each measurement keeps the best of ``repeats`` attempts (pools are
    warmed with one untimed batch first, so process start-up cost is
    not billed to the workload). Points carry ``speedup`` relative to
    the 1-worker point when one is present.

    ``fault_kills`` / ``fault_hangs`` arm a seeded
    :class:`~repro.exec.WorkerFaultPlan` on each process-backend point
    before the timed batches, so the sweep measures throughput *under
    supervised recovery* — the overhead of reaping, rebuilding and
    retrying shows up in wall seconds, the recovery itself in the
    point's ``fault_counters``. Hangs require ``batch_deadline``.
    """
    if not worker_counts:
        raise ValueError("need at least one worker count")
    records = build_spin_records(num_records=num_records)
    job = build_spin_job(spins=spins)
    per_split = max(1, len(records) // num_splits)
    splits = [
        records[i : i + per_split]
        for i in range(0, len(records), per_split)
    ]
    calls = [((job, split), {}) for split in splits]

    report = ThroughputReport(
        num_records=num_records, num_splits=len(splits), spins=spins
    )
    for workers in worker_counts:
        backend = _backend_for(workers, batch_deadline)
        counters = Counters()
        try:
            backend.run_tasks(execute_map, calls[:1], phase="warmup")
            if (fault_kills or fault_hangs) and getattr(
                backend, "parallel", False
            ):
                backend.arm_worker_fault_plan(
                    WorkerFaultPlan(
                        seed=fault_seed,
                        kills=fault_kills,
                        hangs=fault_hangs,
                        span=max(len(calls), fault_kills + fault_hangs),
                    )
                )
            best = float("inf")
            for _ in range(max(1, repeats)):
                t0 = time.perf_counter()
                backend.run_tasks(
                    execute_map, calls, phase="bench", counters=counters
                )
                best = min(best, time.perf_counter() - t0)
        finally:
            backend.close()
        report.points.append(
            ThroughputPoint(
                workers=workers,
                backend=backend.name,
                records=len(records),
                wall_seconds=best,
                records_per_sec=len(records) / best if best > 0 else 0.0,
                fault_counters={
                    name: value
                    for name, value in counters.as_dict().items()
                    if name
                    in (
                        "exec.retries",
                        "exec.worker_lost",
                        "exec.quarantined",
                        "exec.pool_rebuilds",
                    )
                },
            )
        )

    baseline = next((p for p in report.points if p.workers <= 1), None)
    if baseline is not None and baseline.records_per_sec > 0:
        for point in report.points:
            point.speedup = point.records_per_sec / baseline.records_per_sec
    return report


def format_throughput_table(report: ThroughputReport) -> str:
    """Render the sweep as an aligned text table."""
    lines = [
        f"throughput: {report.num_records} records, "
        f"{report.num_splits} map tasks, {report.spins} spins/record "
        f"({report.cpus} CPU{'s' if report.cpus != 1 else ''})",
        f"{'workers':>7}  {'backend':<8}  {'wall s':>8}  "
        f"{'records/s':>10}  {'speedup':>7}",
    ]
    for p in report.points:
        line = (
            f"{p.workers:>7}  {p.backend:<8}  {p.wall_seconds:>8.3f}  "
            f"{p.records_per_sec:>10.1f}  {p.speedup:>6.2f}x"
        )
        if p.fault_counters:
            detail = " ".join(
                f"{name.split('.', 1)[1]}={int(value)}"
                for name, value in sorted(p.fault_counters.items())
            )
            line += f"  [{detail}]"
        lines.append(line)
    return "\n".join(lines)
