"""The experiment harness: run Redoop vs plain Hadoop over W windows.

Every figure in the paper's evaluation compares per-window processing
times of the two systems under some workload. This module provides the
shared machinery: build a batch schedule, feed it to both systems on
identical (but independent) simulated clusters, and collect per-window
response times and phase breakdowns.

Response time is measured the way the paper plots it: from the moment
the window's data is complete (the execution is *due*) until the final
output is written — so queueing behind an overrunning previous window
counts, and proactive work done before the window closed pays off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.panes import WindowSpec
from ..core.query import RecurringQuery
from ..core.recovery import RecoveryManager
from ..core.runtime import RecurrenceResult, RedoopRuntime
from ..exec import ExecBackend
from ..hadoop.catalog import BatchCatalog, BatchFile
from ..hadoop.cluster import Cluster
from ..hadoop.config import ClusterConfig, DEFAULT_CONFIG
from ..hadoop.counters import PhaseTimes
from ..hadoop.faults import FaultInjector
from ..hadoop.runner import PlainHadoopDriver
from ..hadoop.types import Record
from repro.trace import Tracer
from ..workloads.batches import (
    RateSchedule,
    constant_rate,
    generate_batches,
    spiky_rate,
)
from ..workloads.ffg import FFGConfig, generate_event_records, generate_position_records
from ..workloads.queries import (
    AGG_SOURCE,
    JOIN_SOURCES,
    aggregation_query,
    join_query,
)
from ..workloads.wcc import WCCConfig, generate_wcc_records

__all__ = [
    "ExperimentConfig",
    "WindowMetrics",
    "SeriesResult",
    "build_workload",
    "run_redoop_series",
    "run_hadoop_series",
    "average_series",
    "run_averaged",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment: a query kind, window geometry, and data volume.

    ``overlap`` follows the paper's definition ``(win - slide) / win``;
    the slide is derived from it. Virtual data volume is set via
    ``rate`` (bytes per virtual second, per source) and
    ``record_size`` (bigger records = fewer Python objects for the
    same virtual bytes — the knob that keeps simulations fast).
    """

    kind: str  # "aggregation" | "join"
    win: float = 3600.0
    overlap: float = 0.9
    num_windows: int = 10
    rate: float = 30_000_000.0
    record_size: int = 1_000_000
    num_reducers: int = 60
    cluster_config: ClusterConfig = DEFAULT_CONFIG
    seed: int = 7
    #: recurrences whose *new* data arrives at double rate (Fig. 8).
    spiked_recurrences: frozenset = frozenset()
    spike_factor: float = 2.0
    #: join key cardinality (controls join selectivity).
    join_keys: int = 5_000
    #: aggregation key cardinality.
    agg_keys: int = 1_000
    #: batch-arrival granularity: batches per pane. Finer batches let
    #: proactive mode start earlier (the paper's sub-pane processing).
    batches_per_pane: int = 4

    def __post_init__(self) -> None:
        if self.kind not in ("aggregation", "join", "ffg-aggregation"):
            raise ValueError(f"unknown experiment kind {self.kind!r}")
        if not 0.0 <= self.overlap < 1.0:
            raise ValueError("overlap must be in [0, 1)")
        if self.num_windows < 1:
            raise ValueError("need at least one window")

    @property
    def slide(self) -> float:
        """Slide implied by the overlap factor; rounded to whole seconds."""
        return max(1.0, round(self.win * (1.0 - self.overlap)))

    @property
    def spec(self) -> WindowSpec:
        return WindowSpec(win=self.win, slide=self.slide)

    @property
    def horizon(self) -> float:
        """Virtual time by which all windows' data has arrived."""
        return self.spec.execution_time(self.num_windows)

    @property
    def sources(self) -> Tuple[str, ...]:
        if self.kind == "aggregation":
            return (AGG_SOURCE,)
        if self.kind == "ffg-aggregation":
            return (JOIN_SOURCES[1],)  # positions
        return JOIN_SOURCES

    def build_query(self) -> RecurringQuery:
        if self.kind == "aggregation":
            return aggregation_query(
                self.win,
                self.slide,
                num_reducers=self.num_reducers,
            )
        if self.kind == "ffg-aggregation":
            # Fig. 9 runs an aggregation over the FFG sensor stream.
            return aggregation_query(
                self.win,
                self.slide,
                name="ffg-agg",
                source=JOIN_SOURCES[1],
                key_field="player",
                num_reducers=self.num_reducers,
            )
        return join_query(self.win, self.slide, num_reducers=self.num_reducers)


@dataclass(slots=True)
class WindowMetrics:
    """Per-window measurements, one row of a paper figure's series."""

    recurrence: int
    due_time: float
    finish_time: float
    response_time: float
    phases: PhaseTimes
    output_pairs: int

    def as_row(self) -> Dict[str, float]:
        return {
            "window": self.recurrence,
            "response_time": self.response_time,
            "shuffle": self.phases.shuffle,
            "reduce": self.phases.reduce,
        }


@dataclass(slots=True)
class SeriesResult:
    """One system's full series over the experiment's windows."""

    label: str
    windows: List[WindowMetrics]
    #: Final output pairs per window (sorted reprs) for cross-checking.
    output_digests: List[Tuple[str, ...]] = field(default_factory=list)
    #: The run's span spine (``None`` for averaged/synthetic series);
    #: export with :func:`repro.trace.export_chrome_trace`.
    tracer: Optional[Tracer] = None
    #: Highest per-node cached working set observed (Redoop runs only);
    #: the capacity bench sizes budgets as a fraction of this.
    peak_cached_bytes: int = 0
    #: Snapshot of the runtime's lifetime counters (Redoop runs only):
    #: cache hits/misses/evictions for hit-rate-vs-capacity reporting.
    runtime_counters: Dict[str, float] = field(default_factory=dict)

    def response_times(self) -> List[float]:
        return [w.response_time for w in self.windows]

    def avg_response(self, *, skip_first: bool = False) -> float:
        times = self.response_times()[1 if skip_first else 0 :]
        return sum(times) / len(times)

    def total_response(self) -> float:
        return sum(self.response_times())

    def total_phases(self) -> PhaseTimes:
        total = PhaseTimes()
        for w in self.windows:
            total.add(w.phases)
        return total

    def speedup_vs(self, other: "SeriesResult", *, skip_first: bool = False) -> float:
        """How much faster this series is than ``other`` on average."""
        return other.avg_response(skip_first=skip_first) / self.avg_response(
            skip_first=skip_first
        )


# ----------------------------------------------------------------------
# workload construction
# ----------------------------------------------------------------------


def _rate_schedule(config: ExperimentConfig) -> RateSchedule:
    if not config.spiked_recurrences:
        return constant_rate(config.rate)
    return spiky_rate(
        config.rate,
        config.spec,
        spiked_recurrences=set(config.spiked_recurrences),
        factor=config.spike_factor,
    )


def build_workload(
    config: ExperimentConfig,
) -> Dict[str, List[Tuple[BatchFile, List[Record]]]]:
    """All batches per source for the experiment, in arrival order.

    Batches arrive once per slide (the paper's model: data collected
    and uploaded between recurrences).
    """
    schedule = _rate_schedule(config)
    batches: Dict[str, List[Tuple[BatchFile, List[Record]]]] = {}
    if config.kind == "aggregation":
        wcc_cfg = WCCConfig(
            record_size=config.record_size, num_objects=config.agg_keys
        )

        def gen(t0: float, t1: float, rate: float, seed: int) -> List[Record]:
            return generate_wcc_records(t0, t1, rate, config=wcc_cfg, seed=seed)

        batches[AGG_SOURCE] = list(
            generate_batches(
                AGG_SOURCE,
                config.horizon,
                config.spec.pane_seconds / config.batches_per_pane,
                schedule,
                gen,
                seed=config.seed,
            )
        )
        return batches

    ffg_cfg = FFGConfig(
        record_size=config.record_size, num_players=config.join_keys
    )

    def gen_events(t0, t1, rate, seed):
        return generate_event_records(t0, t1, rate, config=ffg_cfg, seed=seed)

    def gen_positions(t0, t1, rate, seed):
        return generate_position_records(t0, t1, rate, config=ffg_cfg, seed=seed)

    if config.kind == "ffg-aggregation":
        batches[JOIN_SOURCES[1]] = list(
            generate_batches(
                JOIN_SOURCES[1],
                config.horizon,
                config.spec.pane_seconds / config.batches_per_pane,
                schedule,
                gen_positions,
                seed=config.seed,
            )
        )
        return batches

    for source, gen in ((JOIN_SOURCES[0], gen_events), (JOIN_SOURCES[1], gen_positions)):
        batches[source] = list(
            generate_batches(
                source,
                config.horizon,
                config.spec.pane_seconds / config.batches_per_pane,
                schedule,
                gen,
                seed=config.seed,
            )
        )
    return batches


# ----------------------------------------------------------------------
# series runners
# ----------------------------------------------------------------------


def run_redoop_series(
    config: ExperimentConfig,
    *,
    label: str = "redoop",
    adaptive: bool = False,
    enable_caching: bool = True,
    enable_output_cache: bool = True,
    use_pane_headers: bool = True,
    cache_failure_injector: Optional[FaultInjector] = None,
    cache_corruption_injector: Optional[FaultInjector] = None,
    node_failure_window: Optional[int] = None,
    node_failure_injector: Optional[FaultInjector] = None,
    workload: Optional[Mapping[str, List[Tuple[BatchFile, List[Record]]]]] = None,
    tracer: Optional[Tracer] = None,
    cache_capacity_bytes: Optional[int] = None,
    eviction_policy: Optional[str] = None,
    backend: Optional[ExecBackend] = None,
    reuse_store=None,
) -> SeriesResult:
    """Run the experiment on Redoop and collect per-window metrics.

    ``cache_failure_injector`` reproduces Fig. 9: before each window's
    execution the injector destroys a fraction of live caches.
    ``cache_corruption_injector`` is the integrity variant: before each
    window a fraction of live caches is silently tampered instead of
    destroyed — the runtime must detect the checksum mismatch on read
    and recover, so this series measures the cost of detection plus
    rebuild rather than of plain loss. ``node_failure_window`` kills
    one whole node (picked by ``node_failure_injector``, or a seeded
    default) right before that recurrence executes and brings it back
    before the next one — the end-to-end slave-failure scenario of
    Sec. 5. ``tracer`` supplies the span spine (one is created per run
    otherwise); it is returned on the series for export.
    ``reuse_store`` attaches a cross-query
    :class:`~repro.reuse.ReuseStore`: pane/window outputs are published
    into it and matching stored artifacts short-circuit work — pass the
    same store to a second series for a warm run (see ``reuse.md``).
    """
    workload = workload or build_workload(config)
    cluster = Cluster(config.cluster_config, seed=config.seed)
    runtime = RedoopRuntime(
        cluster,
        adaptive=adaptive,
        enable_caching=enable_caching,
        enable_output_cache=enable_output_cache,
        use_pane_headers=use_pane_headers,
        tracer=tracer,
        cache_capacity_bytes=cache_capacity_bytes,
        eviction_policy=eviction_policy,
        backend=backend,
        reuse_store=reuse_store,
    )
    query = config.build_query()
    runtime.register_query(query, {src: config.rate for src in config.sources})
    recovery = RecoveryManager(runtime)

    # Interleave batch arrival with recurrence execution so proactive
    # mode sees data as it lands, exactly like the deployed system.
    pending: List[Tuple[BatchFile, List[Record]]] = sorted(
        (item for items in workload.values() for item in items),
        key=lambda bw: (bw[0].t_end, bw[0].source),
    )
    results: List[RecurrenceResult] = []
    cursor = 0
    failed_node: Optional[int] = None
    for recurrence in range(1, config.num_windows + 1):
        due = query.execution_time(recurrence)
        while cursor < len(pending) and pending[cursor][0].t_end <= due + 1e-9:
            runtime.ingest(*pending[cursor])
            cursor += 1
        if failed_node is not None:
            recovery.recover_node(failed_node)
            failed_node = None
        if node_failure_window is not None and recurrence == node_failure_window:
            injector = node_failure_injector or FaultInjector(seed=config.seed)
            failed_node = injector.pick_node_victim(cluster.live_node_ids())
            recovery.fail_node(failed_node)
        if cache_failure_injector is not None and recurrence > 1:
            recovery.inject_pane_cache_failures(cache_failure_injector)
        if cache_corruption_injector is not None and recurrence > 1:
            recovery.inject_cache_corruption(cache_corruption_injector)
        results.append(runtime.run_recurrence(query.name, recurrence))
    if failed_node is not None:
        recovery.recover_node(failed_node)

    return SeriesResult(
        label=label,
        tracer=runtime.tracer,
        peak_cached_bytes=max(
            (r.peak_cached_bytes for r in runtime.registries().values()),
            default=0,
        ),
        runtime_counters=runtime.counters.as_dict(),
        windows=[
            WindowMetrics(
                recurrence=r.recurrence,
                due_time=r.due_time,
                finish_time=r.finish_time,
                response_time=r.response_time,
                phases=r.phase_times,
                output_pairs=len(r.output),
            )
            for r in results
        ],
        output_digests=[
            tuple(sorted(map(repr, r.output))) for r in results
        ],
    )


def run_hadoop_series(
    config: ExperimentConfig,
    *,
    label: str = "hadoop",
    task_failure_prob: float = 0.0,
    workload: Optional[Mapping[str, List[Tuple[BatchFile, List[Record]]]]] = None,
    tracer: Optional[Tracer] = None,
    backend: Optional[ExecBackend] = None,
) -> SeriesResult:
    """Run the experiment on plain Hadoop (one fresh job per window)."""
    workload = workload or build_workload(config)
    cluster = Cluster(config.cluster_config, seed=config.seed)
    catalog = BatchCatalog()
    for items in workload.values():
        for batch, records in items:
            cluster.hdfs.create(batch.path, records)
            catalog.add(batch)
    injector = (
        FaultInjector(task_failure_prob=task_failure_prob, seed=config.seed)
        if task_failure_prob > 0
        else None
    )
    driver = PlainHadoopDriver(
        cluster, fault_injector=injector, tracer=tracer, backend=backend
    )
    query = config.build_query()
    spec = config.spec

    windows: List[WindowMetrics] = []
    digests: List[Tuple[str, ...]] = []
    for recurrence in range(1, config.num_windows + 1):
        w_start, w_end = spec.window_bounds(recurrence)
        due = spec.execution_time(recurrence)
        execution = driver.run_window(
            query.job,
            catalog,
            w_start,
            w_end,
            index=recurrence,
            start=max(due, cluster.clock.now),
        )
        windows.append(
            WindowMetrics(
                recurrence=recurrence,
                due_time=due,
                finish_time=execution.result.finish_time,
                response_time=execution.result.finish_time - due,
                phases=execution.result.phase_times,
                output_pairs=len(execution.output()),
            )
        )
        digests.append(tuple(sorted(map(repr, execution.output()))))
    return SeriesResult(
        label=label,
        windows=windows,
        output_digests=digests,
        tracer=driver.tracer,
    )


# ----------------------------------------------------------------------
# multi-run averaging (the paper reports the average over 10 runs)
# ----------------------------------------------------------------------


def average_series(runs: Sequence[SeriesResult]) -> SeriesResult:
    """Average per-window metrics over repeated runs of one system.

    The paper's reported numbers are "the average over 10 runs"
    (Sec. 6.1); this folds independent seeded runs the same way.
    Output digests are dropped (each run saw different data).
    """
    if not runs:
        raise ValueError("nothing to average")
    counts = {len(r.windows) for r in runs}
    if len(counts) != 1:
        raise ValueError("all runs must cover the same number of windows")
    n = len(runs)
    windows: List[WindowMetrics] = []
    for i in range(counts.pop()):
        phases = PhaseTimes()
        for run in runs:
            phases.add(run.windows[i].phases)
        windows.append(
            WindowMetrics(
                recurrence=runs[0].windows[i].recurrence,
                due_time=sum(r.windows[i].due_time for r in runs) / n,
                finish_time=sum(r.windows[i].finish_time for r in runs) / n,
                response_time=sum(r.windows[i].response_time for r in runs) / n,
                phases=phases.scaled(1.0 / n),
                output_pairs=round(
                    sum(r.windows[i].output_pairs for r in runs) / n
                ),
            )
        )
    return SeriesResult(label=runs[0].label, windows=windows)


def run_averaged(
    config: ExperimentConfig,
    *,
    num_runs: int = 3,
    systems: Sequence[str] = ("hadoop", "redoop"),
    adaptive: bool = False,
) -> Dict[str, SeriesResult]:
    """Run the experiment ``num_runs`` times with distinct seeds and average.

    Each run regenerates its workload from a different seed (different
    data, block placement, and tie-breaking), so the averages absorb
    the simulator's remaining stochasticity exactly as the paper's
    10-run averages absorbed cluster noise.
    """
    if num_runs < 1:
        raise ValueError("need at least one run")
    from dataclasses import replace as _replace

    collected: Dict[str, List[SeriesResult]] = {s: [] for s in systems}
    for run_index in range(num_runs):
        seeded = _replace(config, seed=config.seed + 101 * run_index)
        workload = build_workload(seeded)
        if "hadoop" in collected:
            collected["hadoop"].append(
                run_hadoop_series(seeded, workload=workload)
            )
        if "redoop" in collected:
            collected["redoop"].append(
                run_redoop_series(seeded, workload=workload)
            )
        if "adaptive" in collected:
            collected["adaptive"].append(
                run_redoop_series(
                    seeded, label="adaptive", adaptive=True, workload=workload
                )
            )
    return {label: average_series(runs) for label, runs in collected.items()}
