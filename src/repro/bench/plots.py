"""ASCII rendering of experiment series for terminal-only environments.

The original figures are line/bar charts; these helpers render the
same data as unicode bar charts so `python -m repro fig6 --plot` gives
an at-a-glance picture without matplotlib (which this offline
reproduction deliberately avoids depending on).
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

from .harness import SeriesResult

__all__ = ["bar_chart", "plot_series", "plot_speedups"]

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, peak: float, width: int) -> str:
    """A unicode bar of ``value`` relative to ``peak``."""
    if peak <= 0:
        return ""
    cells = value / peak * width
    full = int(cells)
    frac = int((cells - full) * (len(_BLOCKS) - 1))
    bar = "█" * full
    if frac:
        bar += _BLOCKS[frac]
    return bar


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 40,
    unit: str = "",
) -> str:
    """Render labelled horizontal bars, scaled to the largest value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        raise ValueError("nothing to plot")
    if any(v < 0 for v in values):
        raise ValueError("bar charts need non-negative values")
    peak = max(values)
    label_w = max(len(l) for l in labels)
    lines: List[str] = []
    for label, value in zip(labels, values):
        lines.append(
            f"{label:>{label_w}} │{_bar(value, peak, width):<{width}} "
            f"{value:8.1f}{unit}"
        )
    return "\n".join(lines)


def plot_series(
    series: Mapping[str, SeriesResult], *, width: int = 40, title: str = ""
) -> str:
    """Per-window response-time bars, one block per system."""
    lines: List[str] = []
    if title:
        lines.append(title)
    peak = max(
        w.response_time for result in series.values() for w in result.windows
    )
    for label, result in series.items():
        lines.append(f"[{label}]")
        for w in result.windows:
            lines.append(
                f"  w{w.recurrence:<3d}│"
                f"{_bar(w.response_time, peak, width):<{width}} "
                f"{w.response_time:8.1f}s"
            )
    return "\n".join(lines)


def plot_speedups(
    series: Mapping[str, SeriesResult],
    *,
    baseline: str = "hadoop",
    skip_first: bool = True,
    width: int = 30,
    title: str = "",
) -> str:
    """Bar chart of each system's speedup over the baseline."""
    if baseline not in series:
        raise ValueError(f"baseline {baseline!r} is not in the series")
    base = series[baseline]
    labels = [l for l in series if l != baseline]
    values = [
        series[l].speedup_vs(base, skip_first=skip_first) for l in labels
    ]
    chart = bar_chart(labels, values, width=width, unit="x")
    return f"{title}\n{chart}" if title else chart
