"""Paper-style textual reporting of experiment results.

The benchmark harness prints, for every figure, the same rows/series
the paper plots: per-window response times (Figs. 6-8 left columns,
Fig. 9 cumulative), summed shuffle/reduce phase splits (Figs. 6-7
right columns), and speedup summaries.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from .harness import SeriesResult

__all__ = [
    "format_response_table",
    "format_phase_split",
    "format_cumulative_table",
    "format_speedup_summary",
    "series_rows",
    "write_series_csv",
]


def _fmt(value: float) -> str:
    return f"{value:10.1f}"


def format_response_table(
    series: Mapping[str, SeriesResult], *, title: str = ""
) -> str:
    """Per-window response times, one column per system (Fig. 6/7/8 left)."""
    labels = list(series)
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "window" + "".join(f"{label:>12}" for label in labels)
    lines.append(header)
    num_windows = len(next(iter(series.values())).windows)
    for i in range(num_windows):
        row = f"{i + 1:6d}"
        for label in labels:
            row += "  " + _fmt(series[label].windows[i].response_time)
        lines.append(row)
    avg = f"{'avg':>6}"
    for label in labels:
        avg += "  " + _fmt(series[label].avg_response())
    lines.append(avg)
    return "\n".join(lines)


def format_phase_split(
    series: Mapping[str, SeriesResult], *, title: str = ""
) -> str:
    """Summed shuffle vs reduce time per system (Fig. 6/7 right columns)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{'system':>12}{'shuffle':>12}{'reduce':>12}")
    for label, result in series.items():
        total = result.total_phases()
        lines.append(f"{label:>12}  {_fmt(total.shuffle)}  {_fmt(total.reduce)}")
    return "\n".join(lines)


def format_cumulative_table(
    series: Mapping[str, SeriesResult], *, title: str = ""
) -> str:
    """Cumulative running time per window (Fig. 9's presentation)."""
    labels = list(series)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("window" + "".join(f"{label:>12}" for label in labels))
    sums = {label: 0.0 for label in labels}
    num_windows = len(next(iter(series.values())).windows)
    for i in range(num_windows):
        row = f"{i + 1:6d}"
        for label in labels:
            sums[label] += series[label].windows[i].response_time
            row += "  " + _fmt(sums[label])
        lines.append(row)
    return "\n".join(lines)


def series_rows(series: Mapping[str, SeriesResult]) -> List[Dict[str, object]]:
    """Flatten series into machine-readable rows (one per system+window)."""
    rows: List[Dict[str, object]] = []
    for label, result in series.items():
        for w in result.windows:
            rows.append(
                {
                    "system": label,
                    "window": w.recurrence,
                    "due_time": w.due_time,
                    "finish_time": w.finish_time,
                    "response_time": w.response_time,
                    "map_time": w.phases.map,
                    "shuffle_time": w.phases.shuffle,
                    "reduce_time": w.phases.reduce,
                    "output_pairs": w.output_pairs,
                }
            )
    return rows


def write_series_csv(path: str, series: Mapping[str, SeriesResult]) -> int:
    """Write the series as CSV; returns the number of data rows."""
    import csv

    rows = series_rows(series)
    if not rows:
        raise ValueError("no series data to write")
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)
    return len(rows)


def format_speedup_summary(
    series: Mapping[str, SeriesResult],
    *,
    baseline: str = "hadoop",
    skip_first: bool = True,
    title: str = "",
) -> str:
    """Average speedup of each system over the baseline."""
    base = series[baseline]
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, result in series.items():
        if label == baseline:
            continue
        speedup = result.speedup_vs(base, skip_first=skip_first)
        lines.append(f"{label:>12} vs {baseline}: {speedup:5.2f}x")
    return "\n".join(lines)
