"""Warm-vs-cold benchmark for the cross-query reuse store.

The experiment mirrors what a multi-tenant deployment sees: one tenant
runs a workload cold (nothing stored, everything published), then a
second identical tenant arrives on a *fresh cluster* and is served from
the store. The headline numbers are the two average window response
times and their ratio — the store's whole value proposition is that
warm is a large multiple cheaper — plus the ``reuse.*`` counters that
attribute the saving. Digest equality between the three runs (a
store-free baseline, the cold run, and the warm run) is asserted on
every invocation: a speedup that changes an answer is a bug, not a win.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..reuse import ReuseStore
from .harness import ExperimentConfig, SeriesResult, build_workload, run_redoop_series

__all__ = ["WarmColdReport", "run_warm_cold"]


@dataclass(slots=True)
class WarmColdReport:
    """Cold-vs-warm comparison for one experiment config."""

    config: ExperimentConfig
    off: SeriesResult
    cold: SeriesResult
    warm: SeriesResult
    #: ``reuse.*`` counters snapshot after the warm run.
    reuse_counters: Dict[str, float] = field(default_factory=dict)

    @property
    def digests_equal(self) -> bool:
        return (
            self.off.output_digests == self.cold.output_digests
            and self.off.output_digests == self.warm.output_digests
        )

    @property
    def cold_avg_response(self) -> float:
        times = self.cold.response_times()
        return sum(times) / len(times) if times else 0.0

    @property
    def warm_avg_response(self) -> float:
        times = self.warm.response_times()
        return sum(times) / len(times) if times else 0.0

    @property
    def speedup(self) -> float:
        warm = self.warm_avg_response
        return self.cold_avg_response / warm if warm > 0 else float("inf")

    @property
    def hits(self) -> float:
        return self.reuse_counters.get("reuse.hits", 0.0)

    @property
    def bytes_saved(self) -> float:
        return self.reuse_counters.get("reuse.bytes_saved", 0.0)

    @property
    def ok(self) -> bool:
        """Warm run was both correct and actually served from the store."""
        return self.digests_equal and self.hits > 0

    def as_dict(self) -> dict:
        """JSON-friendly summary (the CLI's ``--json-out`` payload)."""
        return {
            "kind": self.config.kind,
            "overlap": self.config.overlap,
            "num_windows": self.config.num_windows,
            "cold_avg_response": self.cold_avg_response,
            "warm_avg_response": self.warm_avg_response,
            "speedup": self.speedup,
            "digests_equal": self.digests_equal,
            "reuse_counters": dict(self.reuse_counters),
        }

    def summary(self) -> str:
        lines = [
            f"{self.config.kind} overlap={self.config.overlap:g} "
            f"windows={self.config.num_windows}",
            f"  cold avg response: {self.cold_avg_response:10.2f} s",
            f"  warm avg response: {self.warm_avg_response:10.2f} s"
            f"   ({self.speedup:.1f}x faster)",
            f"  reuse hits: {self.hits:.0f}  "
            f"bytes saved: {self.bytes_saved:.0f}",
            "  digests: "
            + ("identical across off/cold/warm" if self.digests_equal
               else "MISMATCH — reuse changed an answer"),
        ]
        return "\n".join(lines)


def run_warm_cold(
    config: ExperimentConfig,
    *,
    capacity_bytes: Optional[int] = None,
    backend=None,
) -> WarmColdReport:
    """Measure the store's effect on a second identical tenant.

    Three runs share one generated workload: ``off`` (no store — the
    correctness baseline), ``cold`` (fresh store; publishes pane and
    window artifacts as it computes), and ``warm`` (fresh cluster, the
    cold run's store — every window should be served from storage).
    ``capacity_bytes`` bounds the store; ``None`` keeps it unbounded so
    the warm run's hit rate reflects the plan match alone.
    """
    workload = build_workload(config)
    off = run_redoop_series(config, label="reuse-off", workload=workload,
                            backend=backend)
    store = ReuseStore(capacity_bytes=capacity_bytes)
    cold = run_redoop_series(config, label="reuse-cold", workload=workload,
                             backend=backend, reuse_store=store)
    warm = run_redoop_series(config, label="reuse-warm", workload=workload,
                             backend=backend, reuse_store=store)
    return WarmColdReport(
        config=config,
        off=off,
        cold=cold,
        warm=warm,
        reuse_counters={
            name: value
            for name, value in warm.runtime_counters.items()
            if name.startswith("reuse.")
        },
    )
