"""Per-figure experiment definitions (paper Sec. 6).

Each ``figN_*`` function runs one figure's full parameter sweep and
returns the series keyed the way the paper labels them. Data volumes
are virtual (the simulator charges bytes, Python only materialises one
record per ``record_size`` bytes); the defaults target the paper's
regime of tens-of-GB windows on the 30-node cluster, which keeps every
figure reproducible in seconds to a couple of minutes of wall time.

``scale`` shrinks the per-window data volume proportionally — handy for
CI smoke runs (``scale=0.1``) versus full paper-shape runs
(``scale=1.0``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, Optional, Tuple

from ..exec import ExecBackend
from ..hadoop.config import DEFAULT_CONFIG, ClusterConfig
from ..hadoop.faults import FaultInjector
from ..workloads.batches import paper_spike_windows
from .harness import (
    ExperimentConfig,
    SeriesResult,
    build_workload,
    run_hadoop_series,
    run_redoop_series,
)

__all__ = [
    "PAPER_OVERLAPS",
    "aggregation_config",
    "join_config",
    "fig6_aggregation",
    "fig7_join",
    "fig8_adaptive",
    "fig9_fault_tolerance",
    "headline_series",
    "headline_speedups",
    "ablation_pane_headers",
    "ablation_cache_levels",
    "ablation_scheduler",
]

#: The three overlap settings of Figs. 6-8.
PAPER_OVERLAPS: Tuple[float, ...] = (0.9, 0.5, 0.1)

#: Base per-source arrival rate: 30 MB/s -> ~108 GB per 1-hour window.
_BASE_AGG_RATE = 30_000_000.0

#: Join sources: 16 MB/s each -> ~58 GB per source per 1-hour window.
_BASE_JOIN_RATE = 16_000_000.0


def aggregation_config(
    overlap: float,
    *,
    scale: float = 1.0,
    num_windows: int = 10,
    cluster_config: ClusterConfig = DEFAULT_CONFIG,
    seed: int = 7,
) -> ExperimentConfig:
    """The Fig. 6 aggregation workload at one overlap setting."""
    return ExperimentConfig(
        kind="aggregation",
        win=3600.0,
        overlap=overlap,
        num_windows=num_windows,
        rate=_BASE_AGG_RATE * scale,
        record_size=1_000_000,
        cluster_config=cluster_config,
        seed=seed,
    )


def join_config(
    overlap: float,
    *,
    scale: float = 1.0,
    num_windows: int = 10,
    cluster_config: ClusterConfig = DEFAULT_CONFIG,
    seed: int = 7,
) -> ExperimentConfig:
    """The Fig. 7 join workload at one overlap setting."""
    return ExperimentConfig(
        kind="join",
        win=3600.0,
        overlap=overlap,
        num_windows=num_windows,
        rate=_BASE_JOIN_RATE * scale,
        record_size=2_000_000,
        cluster_config=cluster_config,
        seed=seed,
    )


def _compare(
    config: ExperimentConfig,
    *,
    check_outputs: bool = True,
    backend: Optional[ExecBackend] = None,
) -> Dict[str, SeriesResult]:
    """Run Hadoop and Redoop on identical workloads; verify equivalence."""
    workload = build_workload(config)
    hadoop = run_hadoop_series(config, workload=workload, backend=backend)
    redoop = run_redoop_series(config, workload=workload, backend=backend)
    if check_outputs and hadoop.output_digests != redoop.output_digests:
        raise AssertionError(
            f"Redoop and Hadoop outputs diverge for {config.kind} "
            f"overlap={config.overlap}"
        )
    return {"hadoop": hadoop, "redoop": redoop}


def fig6_aggregation(
    *,
    scale: float = 1.0,
    overlaps: Iterable[float] = PAPER_OVERLAPS,
    num_windows: int = 10,
    cluster_config: ClusterConfig = DEFAULT_CONFIG,
    backend: Optional[ExecBackend] = None,
) -> Dict[float, Dict[str, SeriesResult]]:
    """Fig. 6: aggregation response time + phase split, per overlap."""
    return {
        overlap: _compare(
            aggregation_config(
                overlap,
                scale=scale,
                num_windows=num_windows,
                cluster_config=cluster_config,
            ),
            backend=backend,
        )
        for overlap in overlaps
    }


def fig7_join(
    *,
    scale: float = 1.0,
    overlaps: Iterable[float] = PAPER_OVERLAPS,
    num_windows: int = 10,
    cluster_config: ClusterConfig = DEFAULT_CONFIG,
    backend: Optional[ExecBackend] = None,
) -> Dict[float, Dict[str, SeriesResult]]:
    """Fig. 7: join response time + phase split, per overlap."""
    return {
        overlap: _compare(
            join_config(
                overlap,
                scale=scale,
                num_windows=num_windows,
                cluster_config=cluster_config,
            ),
            backend=backend,
        )
        for overlap in overlaps
    }


def fig8_adaptive(
    *,
    scale: float = 1.0,
    overlaps: Iterable[float] = PAPER_OVERLAPS,
    num_windows: int = 10,
    cluster_config: ClusterConfig = DEFAULT_CONFIG,
    backend: Optional[ExecBackend] = None,
) -> Dict[float, Dict[str, SeriesResult]]:
    """Fig. 8: periodic 2x workload spikes; Hadoop vs Redoop vs adaptive.

    Windows 1, 4, 7, 10 carry the normal workload; the rest are
    doubled, exactly as in the paper.
    """
    results: Dict[float, Dict[str, SeriesResult]] = {}
    for overlap in overlaps:
        config = replace(
            aggregation_config(
                overlap,
                scale=scale,
                num_windows=num_windows,
                cluster_config=cluster_config,
            ),
            spiked_recurrences=frozenset(paper_spike_windows(num_windows)),
        )
        workload = build_workload(config)
        results[overlap] = {
            "hadoop": run_hadoop_series(
                config, workload=workload, backend=backend
            ),
            "redoop": run_redoop_series(
                config,
                label="redoop",
                adaptive=False,
                workload=workload,
                backend=backend,
            ),
            "adaptive": run_redoop_series(
                config,
                label="adaptive",
                adaptive=True,
                workload=workload,
                backend=backend,
            ),
        }
    return results


def fig9_fault_tolerance(
    *,
    scale: float = 1.0,
    num_windows: int = 10,
    cache_loss_fraction: float = 0.5,
    cache_corruption_fraction: float = 0.0,
    cluster_config: ClusterConfig = DEFAULT_CONFIG,
    seed: int = 7,
    node_failure_window: Optional[int] = None,
    backend: Optional[ExecBackend] = None,
) -> Dict[str, SeriesResult]:
    """Fig. 9: cache removals injected at the start of each window.

    The paper uses an FFG aggregation at overlap 0.5 and compares
    Hadoop and Redoop with (f) and without injected failures. Series
    are plotted as cumulative running time.

    ``cache_corruption_fraction`` > 0 adds a ``redoop(c)`` series in
    which that fraction of live caches is *silently corrupted* (not
    destroyed) before each window — the integrity complement of the
    loss experiment: no metadata changes, so the runtime must catch the
    checksum mismatch on read and funnel it through the same rollback.

    ``node_failure_window`` additionally runs a ``redoop(node-f)``
    series in which one whole slave node is killed right before that
    window executes and recovered before the next — exercising Sec. 5's
    node-loss rollback end to end (cache re-execution on surviving
    nodes, HDFS re-replication, and the scheduler dropping queued tasks
    that depended on the dead node's caches). The kill and recovery
    appear in the series' trace as ``node.failed`` / ``node.recovered``
    fault events.
    """
    config = ExperimentConfig(
        kind="ffg-aggregation",
        win=3600.0,
        overlap=0.5,
        num_windows=num_windows,
        rate=_BASE_JOIN_RATE * 2 * scale,
        record_size=1_000_000,
        cluster_config=cluster_config,
        seed=seed,
    )
    workload = build_workload(config)
    results = {
        "hadoop": run_hadoop_series(
            config, workload=workload, backend=backend
        ),
        "redoop": run_redoop_series(
            config, workload=workload, backend=backend
        ),
        "redoop(f)": run_redoop_series(
            config,
            label="redoop(f)",
            cache_failure_injector=FaultInjector(
                cache_loss_fraction=cache_loss_fraction, seed=seed
            ),
            workload=workload,
            backend=backend,
        ),
        "hadoop(f)": run_hadoop_series(
            config,
            label="hadoop(f)",
            task_failure_prob=0.05,
            workload=workload,
            backend=backend,
        ),
    }
    if cache_corruption_fraction > 0:
        results["redoop(c)"] = run_redoop_series(
            config,
            label="redoop(c)",
            cache_corruption_injector=FaultInjector(
                cache_corruption_fraction=cache_corruption_fraction,
                seed=seed,
            ),
            workload=workload,
            backend=backend,
        )
    if node_failure_window is not None:
        if not 1 <= node_failure_window <= num_windows:
            raise ValueError(
                f"node_failure_window must be in [1, {num_windows}]"
            )
        results["redoop(node-f)"] = run_redoop_series(
            config,
            label="redoop(node-f)",
            node_failure_window=node_failure_window,
            node_failure_injector=FaultInjector(seed=seed),
            workload=workload,
            backend=backend,
        )
    return results


def headline_series(
    *, scale: float = 1.0
) -> Dict[str, Dict[str, SeriesResult]]:
    """The two overlap-0.9 comparisons behind the headline speedups."""
    return {
        "aggregation": _compare(aggregation_config(0.9, scale=scale)),
        "join": _compare(join_config(0.9, scale=scale)),
    }


def headline_speedups(*, scale: float = 1.0) -> Dict[str, float]:
    """The abstract's headline: up to 9x speedup at overlap 0.9."""
    series = headline_series(scale=scale)
    return {
        kind: runs["redoop"].speedup_vs(runs["hadoop"], skip_first=True)
        for kind, runs in series.items()
    }


# ----------------------------------------------------------------------
# ablations (design choices DESIGN.md calls out)
# ----------------------------------------------------------------------


def ablation_pane_headers(*, scale: float = 1.0) -> Dict[str, SeriesResult]:
    """Multi-pane file headers on/off (Sec. 3.2's seek optimisation).

    Uses a low-rate configuration so panes are undersized and share
    files — the only case where the header matters. The rate is capped
    so that panes stay well below the 64 MB block size at any scale
    (oversize panes get their own files and never use headers).
    """
    config = ExperimentConfig(
        kind="aggregation",
        win=3600.0,
        overlap=0.9,
        rate=100_000.0 * min(scale, 0.5),  # low rate -> undersized panes
        record_size=10_000,
    )
    workload = build_workload(config)
    return {
        "with-headers": run_redoop_series(
            config, label="with-headers", use_pane_headers=True, workload=workload
        ),
        "without-headers": run_redoop_series(
            config,
            label="without-headers",
            use_pane_headers=False,
            workload=workload,
        ),
    }


def ablation_cache_levels(*, scale: float = 1.0) -> Dict[str, SeriesResult]:
    """Reduce-input+output caching vs input-only vs none (Sec. 4)."""
    config = aggregation_config(0.9, scale=scale)
    workload = build_workload(config)
    return {
        "both-caches": run_redoop_series(
            config, label="both-caches", workload=workload
        ),
        "input-only": run_redoop_series(
            config,
            label="input-only",
            enable_output_cache=False,
            workload=workload,
        ),
        "no-caching": run_redoop_series(
            config, label="no-caching", enable_caching=False, workload=workload
        ),
    }


def ablation_scheduler(*, scale: float = 1.0) -> Dict[str, SeriesResult]:
    """Cache-aware scheduling vs a deliberately cache-blind variant.

    The cache-blind variant still caches but shuffles each partition to
    a rotating node each window, so caches are read remotely — isolating
    the contribution of Eq. 4's locality term.
    """
    from ..core.runtime import RedoopRuntime

    config = aggregation_config(0.9, scale=scale)
    workload = build_workload(config)
    aware = run_redoop_series(config, label="cache-aware", workload=workload)

    # Monkey-style variant: rotate partition placement every window by
    # clearing the sticky assignment between recurrences.
    from ..hadoop.cluster import Cluster

    cluster = Cluster(config.cluster_config, seed=config.seed)
    runtime = RedoopRuntime(cluster)
    query = config.build_query()
    runtime.register_query(query, {s: config.rate for s in config.sources})
    pending = sorted(
        (item for items in workload.values() for item in items),
        key=lambda bw: (bw[0].t_end, bw[0].source),
    )
    from .harness import SeriesResult, WindowMetrics

    cursor = 0
    metrics = []
    state = runtime._states[query.name]
    for recurrence in range(1, config.num_windows + 1):
        due = query.execution_time(recurrence)
        while cursor < len(pending) and pending[cursor][0].t_end <= due + 1e-9:
            runtime.ingest(*pending[cursor])
            cursor += 1
        # Blind scheduling: rotate every partition's home node each
        # window so caches written last window are never local.
        live = cluster.live_node_ids()
        state.partition_nodes = {
            p: live[(p + recurrence) % len(live)]
            for p in range(query.job.num_reducers)
        }
        r = runtime.run_recurrence(query.name, recurrence)
        metrics.append(
            WindowMetrics(
                recurrence=r.recurrence,
                due_time=r.due_time,
                finish_time=r.finish_time,
                response_time=r.response_time,
                phases=r.phase_times,
                output_pairs=len(r.output),
            )
        )
    blind = SeriesResult(
        label="cache-blind", windows=metrics, tracer=runtime.tracer
    )
    return {"cache-aware": aware, "cache-blind": blind}
