"""Benchmark harness regenerating every table and figure of the paper."""

from .capacity import (
    CapacityPoint,
    CapacitySweep,
    fig7_under_budget,
    format_capacity_table,
    sweep_hit_rate_vs_capacity,
)
from .experiments import (
    PAPER_OVERLAPS,
    ablation_cache_levels,
    ablation_pane_headers,
    ablation_scheduler,
    aggregation_config,
    fig6_aggregation,
    fig7_join,
    fig8_adaptive,
    fig9_fault_tolerance,
    headline_series,
    headline_speedups,
    join_config,
)
from .harness import (
    ExperimentConfig,
    SeriesResult,
    WindowMetrics,
    build_workload,
    run_hadoop_series,
    run_redoop_series,
)
from .plots import bar_chart, plot_series, plot_speedups
from .service import (
    ScenarioRun,
    ServiceScenario,
    build_server,
    drive_scenario,
    output_digests,
)
from .reuse import WarmColdReport, run_warm_cold
from .sweeps import sweep_cluster_size, sweep_num_reducers, sweep_window_size
from .throughput import (
    ThroughputPoint,
    ThroughputReport,
    format_throughput_table,
    run_throughput_bench,
)
from .reporting import (
    format_cumulative_table,
    format_phase_split,
    format_response_table,
    format_speedup_summary,
    series_rows,
    write_series_csv,
)

__all__ = [
    "CapacityPoint",
    "CapacitySweep",
    "ExperimentConfig",
    "PAPER_OVERLAPS",
    "SeriesResult",
    "WindowMetrics",
    "ablation_cache_levels",
    "ablation_pane_headers",
    "ablation_scheduler",
    "aggregation_config",
    "bar_chart",
    "build_server",
    "build_workload",
    "drive_scenario",
    "output_digests",
    "ScenarioRun",
    "ServiceScenario",
    "ThroughputPoint",
    "ThroughputReport",
    "WarmColdReport",
    "run_warm_cold",
    "format_throughput_table",
    "run_throughput_bench",
    "fig6_aggregation",
    "fig7_join",
    "fig7_under_budget",
    "fig8_adaptive",
    "fig9_fault_tolerance",
    "format_capacity_table",
    "format_cumulative_table",
    "format_phase_split",
    "format_response_table",
    "format_speedup_summary",
    "series_rows",
    "write_series_csv",
    "headline_series",
    "headline_speedups",
    "join_config",
    "plot_series",
    "plot_speedups",
    "run_hadoop_series",
    "run_redoop_series",
    "sweep_cluster_size",
    "sweep_hit_rate_vs_capacity",
    "sweep_num_reducers",
    "sweep_window_size",
]
