"""Benchmark harness regenerating every table and figure of the paper."""

from .experiments import (
    PAPER_OVERLAPS,
    ablation_cache_levels,
    ablation_pane_headers,
    ablation_scheduler,
    aggregation_config,
    fig6_aggregation,
    fig7_join,
    fig8_adaptive,
    fig9_fault_tolerance,
    headline_series,
    headline_speedups,
    join_config,
)
from .harness import (
    ExperimentConfig,
    SeriesResult,
    WindowMetrics,
    build_workload,
    run_hadoop_series,
    run_redoop_series,
)
from .plots import bar_chart, plot_series, plot_speedups
from .service import (
    ScenarioRun,
    ServiceScenario,
    build_server,
    drive_scenario,
    output_digests,
)
from .sweeps import sweep_cluster_size, sweep_num_reducers, sweep_window_size
from .reporting import (
    format_cumulative_table,
    format_phase_split,
    format_response_table,
    format_speedup_summary,
    series_rows,
    write_series_csv,
)

__all__ = [
    "ExperimentConfig",
    "PAPER_OVERLAPS",
    "SeriesResult",
    "WindowMetrics",
    "ablation_cache_levels",
    "ablation_pane_headers",
    "ablation_scheduler",
    "aggregation_config",
    "bar_chart",
    "build_server",
    "build_workload",
    "drive_scenario",
    "output_digests",
    "ScenarioRun",
    "ServiceScenario",
    "fig6_aggregation",
    "fig7_join",
    "fig8_adaptive",
    "fig9_fault_tolerance",
    "format_cumulative_table",
    "format_phase_split",
    "format_response_table",
    "format_speedup_summary",
    "series_rows",
    "write_series_csv",
    "headline_series",
    "headline_speedups",
    "join_config",
    "plot_series",
    "plot_speedups",
    "run_hadoop_series",
    "run_redoop_series",
    "sweep_cluster_size",
    "sweep_num_reducers",
    "sweep_window_size",
]
