"""Wall-clock pacing for replaying virtual-time runs in real time.

``repro serve --wall-clock R`` replays a scenario at ``R`` virtual
seconds per wall second. The driver calls the pacer after each tick
with the new virtual time; the pacer sleeps until the corresponding
wall-clock instant.

The sleep is event-driven — a single :meth:`threading.Event.wait` with
the computed delay — rather than a busy-wait loop polling
``time.monotonic()``. That keeps a paced replay at ~0% CPU between
ticks (important now that worker processes may share the machine) and
gives other threads a handle (:meth:`WallClockPacer.wake`) to cancel
the current sleep, e.g. on shutdown.
"""

from __future__ import annotations

import threading
import time

__all__ = ["WallClockPacer"]


class WallClockPacer:
    """Map virtual time onto wall time at a fixed rate and sleep to it.

    Parameters
    ----------
    rate:
        Virtual seconds per wall-clock second (``2.0`` replays twice
        as fast as real time). Must be positive.
    start_virtual:
        The virtual time corresponding to "now" when pacing begins.

    The pacer is callable so it plugs directly into
    :func:`repro.bench.service.drive_scenario`'s ``pace`` hook.
    """

    def __init__(self, rate: float, *, start_virtual: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError("pacing rate must be positive")
        self.rate = rate
        self.start_virtual = start_virtual
        self._start_wall = time.monotonic()
        self._wake = threading.Event()
        #: Total seconds actually slept (for reporting/tests).
        self.slept = 0.0

    def __call__(self, virtual_now: float) -> None:
        self.sleep_until(virtual_now)

    def sleep_until(self, virtual_now: float) -> None:
        """Block until wall clock reaches ``virtual_now``'s instant.

        Returns immediately when the replay is behind schedule (the
        tick took longer than its virtual span) or when :meth:`wake`
        was called.
        """
        target = self._start_wall + (virtual_now - self.start_virtual) / self.rate
        delay = target - time.monotonic()
        if delay <= 0:
            return
        # Event.wait sleeps in the kernel until timeout or wake() —
        # one syscall, no polling loop.
        woken = self._wake.wait(delay)
        if not woken:
            self.slept += delay

    def wake(self) -> None:
        """Cancel the current and all future sleeps (idempotent)."""
        self._wake.set()
