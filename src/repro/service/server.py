"""The query server: one shared runtime serving many tenants for weeks.

Redoop's premise (Sec. 2.3) is that recurring queries are *registered
once and then live* — the system keeps running as batches arrive,
recurrences fire, and tenants come and go. :class:`QueryServer` is that
serving layer over a single shared :class:`~repro.core.runtime.
RedoopRuntime` / cluster:

* **lifecycle** — tenants :meth:`submit` durable
  :class:`~repro.service.spec.QuerySpec`s and may :meth:`pause`,
  :meth:`resume`, and :meth:`deregister` them at runtime; deregistration
  flows through :meth:`RedoopRuntime.deregister_query`, purging the
  tenant's caches and re-deriving shared GCD panes;
* **ingest** — producers :meth:`offer` sealed batches into per-source
  :class:`~repro.service.ingest.IngestChannel`s; the event loop delivers
  them into the runtime in time order, under explicit admission control;
* **the event loop** — :meth:`run_until` advances virtual time,
  interleaving batch delivery with due recurrences deterministically:
  at each step the earliest actionable item wins (ties prefer firing the
  recurrence), so the same schedule produces the same outputs no matter
  how the driver slices its calls;
* **fault tolerance** — :meth:`checkpoint` snapshots the whole server
  between recurrences (see :mod:`repro.service.checkpoint`);
  :meth:`QueryServer.restore` brings a killed server back mid-stream.
  Real worker-pool breakage mid-batch is absorbed the same way any
  attempt exhaustion is: the supervised process backend retries and
  rebuilds; its *terminal* failure degrades only the affected window
  (cache rollback included) and the event loop keeps serving every
  other tenant. Supervisor state is checkpoint-safe — pool handles and
  armed faults are stripped, so a restored server re-probes pools
  lazily on a clean slate (``tests/service/test_worker_faults.py``).

Everything the server does is observable: admission verdicts and
lifecycle transitions land as ``service.*`` counters on the runtime's
counter bag and as instant events (category ``service``) on the shared
trace spine, so ``repro report`` and the Perfetto export see service
behaviour next to task execution.
"""

from __future__ import annotations

import os
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.query import RecurringQuery
from ..core.runtime import RecurrenceResult, RedoopRuntime
from ..hadoop.catalog import BatchFile
from ..hadoop.counters import Counters
from ..hadoop.types import Record
from ..trace import CAT_SERVICE, Tracer
from .checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from .ingest import SHED, IngestChannel
from .spec import QuerySpec, build_query

__all__ = ["RUNNING", "PAUSED", "QueryServer", "latest_checkpoint"]

#: Tenant lifecycle states.
RUNNING = "running"
PAUSED = "paused"

_EPS = 1e-9


class QueryServer:
    """Long-running multi-tenant front end over one shared runtime.

    Parameters
    ----------
    runtime:
        The runtime (and through it, the cluster and clock) the server
        owns. Queries must be managed exclusively through the server.
    channel_capacity, admission_policy:
        Defaults for newly created ingest channels (see
        :class:`~repro.service.ingest.IngestChannel`).
    deadline_grace:
        A recurrence firing more than this many virtual seconds after
        its due time counts a ``service.deadline_misses`` — the server
        fell behind (data arrived late, or execution queued).
    checkpoint_dir, checkpoint_every:
        When both are set, the server snapshots itself into
        ``checkpoint_dir`` after every ``checkpoint_every`` completed
        recurrences (files named ``ckpt-r<n>.bin``).
    """

    def __init__(
        self,
        runtime: RedoopRuntime,
        *,
        channel_capacity: int = 16,
        admission_policy: str = "defer",
        deadline_grace: float = 0.0,
        checkpoint_dir: Optional[os.PathLike] = None,
        checkpoint_every: int = 0,
    ) -> None:
        self.runtime = runtime
        self.channel_capacity = channel_capacity
        self.admission_policy = admission_policy
        self.deadline_grace = deadline_grace
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.checkpoint_every = checkpoint_every
        #: source -> ingest channel (shared by every tenant reading it).
        self.channels: Dict[str, IngestChannel] = {}
        #: query name -> durable spec (what checkpoints persist).
        self._specs: Dict[str, QuerySpec] = {}
        self._status: Dict[str, str] = {}
        #: query name -> sources it reads (for channel lifecycle).
        self._sources: Dict[str, Tuple[str, ...]] = {}
        #: every recurrence result this server produced, in fire order.
        self.results: List[RecurrenceResult] = []
        self._recurrences_fired = 0
        #: (query, recurrence) stalls already counted, so a stalled
        #: tenant is reported once per recurrence, not once per tick.
        self._stalls_seen: Set[Tuple[str, int]] = set()
        #: Driver scratchpad, persisted inside checkpoints. Replayable
        #: drivers use it to remember which one-shot schedule steps
        #: (e.g. churn actions) they already applied.
        self.notes: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # shared infrastructure accessors
    # ------------------------------------------------------------------

    @property
    def counters(self) -> Counters:
        return self.runtime.counters

    @property
    def tracer(self) -> Tracer:
        return self.runtime.tracer

    @property
    def now(self) -> float:
        return self.runtime.cluster.clock.now

    def _event(self, name: str, **attrs) -> None:
        self.tracer.instant(name, CAT_SERVICE, self.now, **attrs)

    # ------------------------------------------------------------------
    # query lifecycle
    # ------------------------------------------------------------------

    def submit(self, spec: QuerySpec) -> RecurringQuery:
        """Register a tenant query from its durable spec.

        Builds the query via the spec's factory, canonicalises its job
        against already-registered jobs of the same name (so tenants
        sharing a job share caches), registers it with the runtime, and
        opens ingest channels for any new sources. The tenant starts
        ``RUNNING``.
        """
        if spec.name in self._specs:
            raise ValueError(f"query {spec.name!r} is already registered")
        query = build_query(spec)
        for other in self._specs:
            known = self.runtime.query(other).job
            if known.name == query.job.name and known is not query.job:
                query = replace(query, job=known)
                break
        # Plan against the logical-plan IR: the IR's Scan nodes, not
        # the raw spec kwargs, decide which sources need rates and
        # channels — the same structure the runtime registers and the
        # shared-scan optimizer matches.
        plan_ir = query.plan()
        missing = set(plan_ir.sources) - set(spec.rates)
        if missing:
            raise ValueError(
                f"spec {spec.name!r} lacks arrival rates for sources "
                f"{sorted(missing)}"
            )
        self.runtime.register_query(query, dict(spec.rates))
        # A tenant arriving after its sources started flowing missed the
        # earlier pane-arrival notifications; replay them.
        self.runtime.catch_up_query(spec.name)
        self._specs[spec.name] = spec
        self._status[spec.name] = RUNNING
        self._sources[spec.name] = tuple(plan_ir.sources)
        for src in plan_ir.sources:
            if src not in self.channels:
                self.channels[src] = IngestChannel(
                    src,
                    capacity=self.channel_capacity,
                    policy=self.admission_policy,
                    counters=self.counters,
                )
        self.counters.increment("service.queries_submitted")
        self._event("submit", query=spec.name, factory=spec.factory)
        # Rewrite-on-submit: when the runtime's reuse store already
        # holds artifacts matching this plan's fingerprints, the tenant
        # will be served from them instead of recomputing — surface the
        # rewrite at submit time so operators can see it happened.
        if getattr(self.runtime, "reuse", None) is not None:
            matches = self.runtime.reuse_matches(spec.name)
            if matches:
                self.counters.increment("reuse.rewrites")
                self._event(
                    "reuse-rewrite", query=spec.name, matches=matches
                )
        # Shared-scan rewrite: when the optimizer is on and an existing
        # tenant's Scan → Map → Shuffle prefix is IR-equal over a common
        # source, this tenant's map phases will be served by fan-out —
        # surface the match at submit time.
        if getattr(self.runtime, "scan_sharing", None) is not None:
            peers = self.runtime.shared_prefix_peers(spec.name)
            if peers:
                self.counters.increment("plan.prefix_matches")
                self._event(
                    "plan.shared-prefix",
                    query=spec.name,
                    peers={src: list(names) for src, names in peers.items()},
                )
        return query

    def pause(self, name: str) -> None:
        """Stop firing the tenant's recurrences; ingest continues.

        Paused recurrences stay due and fire (in due order) on resume.
        """
        self._require(name)
        if self._status[name] == PAUSED:
            return
        self._status[name] = PAUSED
        self.counters.increment("service.queries_paused")
        self._event("pause", query=name)

    def resume(self, name: str) -> None:
        """Re-enable a paused tenant; backlog fires on the next tick."""
        self._require(name)
        if self._status[name] == RUNNING:
            return
        self._status[name] = RUNNING
        self.counters.increment("service.queries_resumed")
        self._event("resume", query=name)

    def deregister(self, name: str) -> None:
        """Remove a tenant: purge its caches, re-derive shared panes.

        Channels of sources no longer read by anyone are closed; their
        undelivered batches are dropped and counted (the data has no
        remaining consumer).
        """
        self._require(name)
        self.runtime.deregister_query(name)
        sources = self._sources.pop(name)
        del self._specs[name]
        del self._status[name]
        still_read = {s for srcs in self._sources.values() for s in srcs}
        for src in sources:
            if src in still_read:
                continue
            channel = self.channels.pop(src, None)
            if channel is not None and len(channel):
                self.counters.increment(
                    "service.batches_dropped_on_deregister", len(channel)
                )
        self._event("deregister", query=name)

    def status(self, name: str) -> str:
        self._require(name)
        return self._status[name]

    def tenants(self) -> Dict[str, str]:
        """Registered query names and their lifecycle states."""
        return dict(sorted(self._status.items()))

    def _require(self, name: str) -> None:
        if name not in self._specs:
            raise KeyError(f"no registered query named {name!r}")

    # ------------------------------------------------------------------
    # streaming ingest
    # ------------------------------------------------------------------

    def offer(self, batch: BatchFile, records: Sequence[Record]) -> str:
        """Offer a sealed batch to its source's channel; returns verdict."""
        channel = self.channels.get(batch.source)
        if channel is None:
            raise ValueError(
                f"no registered query reads source {batch.source!r}"
            )
        verdict = channel.offer(batch, records)
        if verdict == SHED:
            self._event(
                "shed",
                source=batch.source,
                t_start=batch.t_start,
                t_end=batch.t_end,
            )
        return verdict

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------

    def run_until(self, until: float) -> List[RecurrenceResult]:
        """Advance the server to virtual time ``until``.

        Repeatedly performs the earliest actionable step: deliver the
        pending batch sealing soonest (ties by source name), or fire the
        soonest due, data-complete recurrence of a ``RUNNING`` tenant
        (ties by query name; recurrence wins batch ties). The loop is a
        pure function of server state and ``until``, so splitting one
        call into many at any boundaries yields identical execution —
        the property the checkpoint/restore soak relies on.

        Returns the recurrence results fired by this call (also
        appended to :attr:`results`). Calling with ``until`` in the
        past is a no-op.
        """
        fired: List[RecurrenceResult] = []
        while True:
            batch_at: Optional[Tuple[float, str]] = None
            for src in sorted(self.channels):
                t_end = self.channels[src].peek_time()
                if t_end is not None and t_end <= until + _EPS:
                    if batch_at is None or (t_end, src) < batch_at:
                        batch_at = (t_end, src)
            rec_at: Optional[Tuple[float, str]] = None
            for name in sorted(self._specs):
                if self._status[name] != RUNNING:
                    continue
                due = self.runtime.next_due(name)
                if due <= until + _EPS and self.runtime.data_complete(name):
                    if rec_at is None or (due, name) < rec_at:
                        rec_at = (due, name)
            if rec_at is not None and (
                batch_at is None or rec_at[0] <= batch_at[0] + _EPS
            ):
                fired.append(self._fire(rec_at[1]))
                continue
            if batch_at is not None:
                batch, records = self.channels[batch_at[1]].pop()
                self.runtime.ingest(batch, list(records))
                continue
            break
        self._note_stalls(until)
        clock = self.runtime.cluster.clock
        if clock.now < until:
            clock.advance_to(until)
        return fired

    def _fire(self, name: str) -> RecurrenceResult:
        due = self.runtime.next_due(name)
        recurrence = self.runtime.next_recurrence(name)
        if self.now > due + self.deadline_grace + _EPS:
            self.counters.increment("service.deadline_misses")
            self._event(
                "deadline-miss",
                query=name,
                recurrence=recurrence,
                due=due,
                late_by=self.now - due,
            )
        result = self.runtime.run_recurrence(name)
        self.results.append(result)
        self._recurrences_fired += 1
        self.counters.increment("service.recurrences_fired")
        if (
            self.checkpoint_dir is not None
            and self.checkpoint_every > 0
            and self._recurrences_fired % self.checkpoint_every == 0
        ):
            self.checkpoint(
                self.checkpoint_dir / f"ckpt-r{self._recurrences_fired:05d}.bin"
            )
        return result

    def _note_stalls(self, until: float) -> None:
        """Count tenants whose due recurrence is starved of data."""
        for name in sorted(self._specs):
            if self._status[name] != RUNNING:
                continue
            due = self.runtime.next_due(name)
            if due <= until + _EPS and not self.runtime.data_complete(name):
                key = (name, self.runtime.next_recurrence(name))
                if key not in self._stalls_seen:
                    self._stalls_seen.add(key)
                    self.counters.increment("service.data_stalls")
                    self._event(
                        "data-stall", query=name, recurrence=key[1], due=due
                    )

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------

    def checkpoint(self, path: os.PathLike) -> Path:
        """Snapshot the whole server to ``path`` (atomic write).

        Safe between recurrences only — a recurrence is atomic, so
        :meth:`run_until` never leaves one half-executed.
        """
        self.counters.increment("service.checkpoints_written")
        self._event("checkpoint", path=str(path))
        queries = {name: self.runtime.query(name) for name in self._specs}
        return save_checkpoint(
            path, specs=self._specs, queries=queries, graph=self
        )

    @classmethod
    def restore(cls, path: os.PathLike) -> "QueryServer":
        """Rebuild a server from a checkpoint written by :meth:`checkpoint`.

        The restored server resumes exactly where the snapshot was
        taken: same virtual clock, same tenant states, same caches and
        pane files, same pending ingest queues. Producers should simply
        replay their batch schedule — already-covered offers come back
        ``STALE`` and are skipped.
        """
        server = load_checkpoint(path)
        if not isinstance(server, cls):
            raise CheckpointError(
                f"{path} holds a {type(server).__name__}, not a "
                f"{cls.__name__} snapshot"
            )
        server.counters.increment("service.restores")
        server._event("restore", path=str(path))
        return server


def latest_checkpoint(directory: os.PathLike) -> Optional[Path]:
    """Newest auto-checkpoint in ``directory`` (by recurrence number)."""
    candidates = sorted(Path(directory).glob("ckpt-r*.bin"))
    return candidates[-1] if candidates else None
