"""Streaming ingest channels with explicit admission control.

The bench harness feeds the runtime by calling
:meth:`~repro.core.runtime.RedoopRuntime.ingest` directly — fine for a
one-shot experiment, wrong for a server: a server must bound how much
un-ingested data it buffers per source, notice when producers outrun
the event loop, and make the resulting policy decision (push back or
drop) *visible* instead of silently falling behind.

An :class:`IngestChannel` is that boundary for one source. Producers
``offer()`` sealed batches; the server ``pop()``s them into the runtime
in time order. Every offer gets an explicit admission verdict:

``ACCEPTED``
    Queued for delivery; the channel's ``accepted_until`` horizon
    advances to the batch's ``t_end``.
``DEFERRED``
    The queue is full and the channel's policy is ``"defer"``: the
    producer keeps the batch and must re-offer it later (backpressure,
    no data loss).
``SHED``
    The queue is full and the policy is ``"shed"``: the batch is
    dropped *and the horizon still advances* — the time range is gone
    and downstream panes will seal with partial data. Shed ranges and
    bytes are counted, never silent.
``STALE``
    The batch ends at or before ``accepted_until`` — it was already
    accepted (or shed) earlier. Re-offering is a no-op, which makes
    "replay the whole schedule from the start" a correct driver
    strategy after a checkpoint restore.
``GAP``
    The batch starts *after* ``accepted_until`` — accepting it would
    leave an unaccounted hole in the time line, and downstream panes
    would silently seal with missing data. The producer must offer the
    intervening range first (or the channel owner must shed it
    explicitly); the rejection is counted, never silent.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

from ..hadoop.catalog import BatchFile
from ..hadoop.counters import Counters
from ..hadoop.types import Record

__all__ = [
    "ACCEPTED",
    "DEFERRED",
    "GAP",
    "SHED",
    "STALE",
    "IngestChannel",
]

#: Admission verdicts returned by :meth:`IngestChannel.offer`.
ACCEPTED = "accepted"
DEFERRED = "deferred"
SHED = "shed"
STALE = "stale"
GAP = "gap"

_POLICIES = ("defer", "shed")


@dataclass(frozen=True, slots=True)
class _Pending:
    batch: BatchFile
    records: Tuple[Record, ...]


class IngestChannel:
    """Bounded, time-ordered admission queue for one source's batches.

    Parameters
    ----------
    source:
        The data source this channel feeds.
    capacity:
        Maximum number of batches queued awaiting delivery. When full,
        further offers are deferred or shed per ``policy``.
    policy:
        ``"defer"`` (default) pushes back on the producer without data
        loss; ``"shed"`` drops the overflowing batch and advances the
        horizon (lossy degradation, explicitly counted).
    counters:
        Counter bag the channel reports admission outcomes into
        (typically the runtime's, so ``repro report`` sees them).
    """

    def __init__(
        self,
        source: str,
        *,
        capacity: int = 16,
        policy: str = "defer",
        counters: Optional[Counters] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("channel capacity must be at least 1")
        if policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}, got {policy!r}")
        self.source = source
        self.capacity = capacity
        self.policy = policy
        self.counters = counters if counters is not None else Counters()
        self._queue: Deque[_Pending] = deque()
        #: Data horizon: every instant before this has been accepted
        #: (or deliberately shed). Offers ending at or before it are
        #: stale; offers must otherwise start exactly here (later
        #: starts are rejected as gap-leaving, earlier ones raise).
        self.accepted_until = 0.0
        self.peak_depth = 0
        #: ``[t_start, t_end)`` ranges dropped under the shed policy.
        self.shed_ranges: List[Tuple[float, float]] = []

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------

    def offer(self, batch: BatchFile, records: Sequence[Record]) -> str:
        """Submit a sealed batch; returns an admission verdict string."""
        if batch.source != self.source:
            raise ValueError(
                f"channel for {self.source!r} offered a batch of "
                f"{batch.source!r}"
            )
        if batch.t_end <= self.accepted_until + 1e-9:
            self.counters.increment("service.batches_stale")
            return STALE
        if batch.t_start < self.accepted_until - 1e-9:
            raise ValueError(
                f"batch [{batch.t_start}, {batch.t_end}) straddles the "
                f"accepted horizon {self.accepted_until} of source "
                f"{self.source!r}; batches must not overlap"
            )
        if batch.t_start > self.accepted_until + 1e-9:
            # Accepting would jump the horizon over [accepted_until,
            # t_start) without anyone ever offering that range — an
            # unaccounted data gap. Push back instead.
            self.counters.increment("service.batches_gap_rejected")
            return GAP
        if len(self._queue) >= self.capacity:
            if self.policy == "defer":
                self.counters.increment("service.batches_deferred")
                return DEFERRED
            self.accepted_until = batch.t_end
            self.shed_ranges.append((batch.t_start, batch.t_end))
            self.counters.increment("service.batches_shed")
            self.counters.increment(
                "service.bytes_shed", sum(r.size for r in records)
            )
            return SHED
        self._queue.append(_Pending(batch, tuple(records)))
        self.accepted_until = batch.t_end
        self.peak_depth = max(self.peak_depth, len(self._queue))
        self.counters.increment("service.batches_accepted")
        return ACCEPTED

    # ------------------------------------------------------------------
    # consumer (server) side
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._queue)

    def peek_time(self) -> Optional[float]:
        """``t_end`` of the next deliverable batch (its seal time)."""
        return self._queue[0].batch.t_end if self._queue else None

    def pop(self) -> Tuple[BatchFile, Tuple[Record, ...]]:
        """Dequeue the earliest pending batch for delivery."""
        if not self._queue:
            raise IndexError(f"channel {self.source!r} has no pending batches")
        pending = self._queue.popleft()
        return pending.batch, pending.records
