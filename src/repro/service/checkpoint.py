"""Versioned, self-validating on-disk snapshots of a query server.

The service's fault-tolerance story has two layers. *Within* a
recurrence, the runtime already re-executes failed tasks (Sec. 5).
*Across* server crashes, this module persists everything a
:class:`~repro.service.server.QueryServer` holds between recurrences —
registered queries, controller status matrices and cache signatures,
local cache registries, pane catalogs and packed pane files, ingest
channels, the virtual clock — so a killed server restores mid-stream
and converges to the same per-window outputs as an uninterrupted run.

Two problems shape the format:

**Code does not pickle.** Queries and jobs carry user map/reduce/
finalize closures. The snapshot therefore stores the durable
:class:`~repro.service.spec.QuerySpec`s (factory path + kwargs) as a
*separate leading pickle*, and the main object graph replaces every
``RecurringQuery`` / ``MapReduceJob`` with a persistent id (``("query",
name)`` / ``("job", name)``). Restore unpickles the specs first,
rebuilds the queries by calling their factories (canonicalising shared
jobs by name), and then resolves the graph's persistent ids against the
rebuilt objects — state from the checkpoint, code from the factories.

**Corrupt checkpoints must fail loud and early.** The file is framed as
a magic line, a JSON header carrying ``schema_version``,
``payload_bytes`` and a ``sha256`` content digest, and the payload.
Restore verifies all three before touching pickle and raises
:class:`CheckpointError` with a human-readable message — never a bare
traceback from the middle of a stream.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Tuple

from ..core.query import RecurringQuery
from .spec import QuerySpec, rebuild_queries

__all__ = ["CheckpointError", "SCHEMA_VERSION", "save_checkpoint", "load_checkpoint"]

MAGIC = b"#repro-service-checkpoint\n"
SCHEMA_VERSION = 1


class CheckpointError(Exception):
    """A checkpoint file cannot be written or trusted.

    Raised with a clear, actionable message on bad magic, unsupported
    schema version, truncation, or digest mismatch.
    """


class _GraphPickler(pickle.Pickler):
    """Pickles the server graph, externalising query/job objects."""

    def __init__(self, buf: io.BytesIO, queries: Mapping[str, RecurringQuery]):
        super().__init__(buf, protocol=pickle.HIGHEST_PROTOCOL)
        self._queries = {id(q): name for name, q in queries.items()}
        self._jobs = {id(q.job): q.job.name for q in queries.values()}

    def persistent_id(self, obj: Any):
        ref = self._queries.get(id(obj))
        if ref is not None:
            return ("query", ref)
        ref = self._jobs.get(id(obj))
        if ref is not None:
            return ("job", ref)
        return None


class _GraphUnpickler(pickle.Unpickler):
    """Resolves persistent ids against factory-rebuilt queries/jobs."""

    def __init__(
        self,
        buf: io.BytesIO,
        queries: Mapping[str, RecurringQuery],
        jobs: Mapping[str, Any],
    ):
        super().__init__(buf)
        self._queries = queries
        self._jobs = jobs

    def persistent_load(self, pid: Tuple[str, str]) -> Any:
        kind, name = pid
        table = self._queries if kind == "query" else self._jobs
        try:
            return table[name]
        except KeyError:
            raise CheckpointError(
                f"checkpoint references {kind} {name!r} but the spec "
                "section rebuilt no such object — the file is internally "
                "inconsistent"
            ) from None


def save_checkpoint(
    path: os.PathLike,
    *,
    specs: Mapping[str, QuerySpec],
    queries: Mapping[str, RecurringQuery],
    graph: Any,
) -> Path:
    """Write a snapshot atomically (temp file + rename) and return its path.

    ``specs`` are the durable query descriptions, ``queries`` the live
    objects they built (externalised from the pickle), ``graph`` the
    root object to snapshot (the server itself).
    """
    buf = io.BytesIO()
    pickle.dump(dict(specs), buf, protocol=pickle.HIGHEST_PROTOCOL)
    try:
        _GraphPickler(buf, queries).dump(graph)
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        raise CheckpointError(
            f"server state is not snapshottable: {exc}"
        ) from exc
    payload = buf.getvalue()
    header = {
        "schema_version": SCHEMA_VERSION,
        "payload_bytes": len(payload),
        "sha256": hashlib.sha256(payload).hexdigest(),
    }
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    tmp = out.with_name(out.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(MAGIC)
        fh.write(json.dumps(header, sort_keys=True).encode("ascii") + b"\n")
        fh.write(payload)
    os.replace(tmp, out)
    return out


def _read_validated_payload(path: Path) -> bytes:
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if not data.startswith(MAGIC):
        raise CheckpointError(
            f"{path} is not a service checkpoint (bad magic); expected a "
            f"file starting with {MAGIC.decode().strip()!r}"
        )
    rest = data[len(MAGIC):]
    newline = rest.find(b"\n")
    if newline < 0:
        raise CheckpointError(f"{path} is truncated: missing header line")
    try:
        header = json.loads(rest[:newline])
    except ValueError:
        raise CheckpointError(f"{path} has a corrupt header line") from None
    version = header.get("schema_version")
    if version != SCHEMA_VERSION:
        raise CheckpointError(
            f"{path} has schema version {version!r}; this build reads "
            f"version {SCHEMA_VERSION}. Re-create the checkpoint with a "
            "matching build."
        )
    payload = rest[newline + 1:]
    expected = header.get("payload_bytes")
    if len(payload) != expected:
        raise CheckpointError(
            f"{path} is truncated: header promises {expected} payload "
            f"bytes, file carries {len(payload)}"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("sha256"):
        raise CheckpointError(
            f"{path} failed its integrity check: content digest {digest} "
            f"does not match the header's {header.get('sha256')}"
        )
    return payload


def load_checkpoint(
    path: os.PathLike,
    *,
    validate: Callable[[Dict[str, QuerySpec], Any], None] = None,
) -> Any:
    """Restore the object graph a checkpoint holds.

    Validates framing, version, and digest; rebuilds queries from the
    spec section via their factories; resolves the graph's persistent
    references; returns the graph root. ``validate`` (if given) runs
    on ``(specs, graph)`` before returning.
    """
    payload = _read_validated_payload(Path(path))
    buf = io.BytesIO(payload)
    try:
        specs = pickle.load(buf)
    except Exception as exc:
        raise CheckpointError(
            f"{path}: the query-spec section does not unpickle ({exc})"
        ) from exc
    if not isinstance(specs, dict) or not all(
        isinstance(s, QuerySpec) for s in specs.values()
    ):
        raise CheckpointError(
            f"{path}: spec section is not a mapping of QuerySpec objects"
        )
    queries, jobs = rebuild_queries(specs)
    try:
        graph = _GraphUnpickler(buf, queries, jobs).load()
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(
            f"{path}: the state section does not unpickle ({exc}); the "
            "checkpoint may come from an incompatible build"
        ) from exc
    if validate is not None:
        validate(specs, graph)
    return graph
