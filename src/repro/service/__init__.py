"""The serving layer: a long-running multi-tenant recurring-query server.

See :mod:`repro.service.server` for the event loop,
:mod:`repro.service.ingest` for admission control,
:mod:`repro.service.checkpoint` for the snapshot format, and
``docs/service.md`` for the full design.
"""

from .checkpoint import CheckpointError, SCHEMA_VERSION, load_checkpoint, save_checkpoint
from .ingest import ACCEPTED, DEFERRED, GAP, SHED, STALE, IngestChannel
from .pacing import WallClockPacer
from .server import PAUSED, RUNNING, QueryServer, latest_checkpoint
from .spec import QuerySpec, build_query, resolve_factory

__all__ = [
    "ACCEPTED",
    "DEFERRED",
    "GAP",
    "SHED",
    "STALE",
    "PAUSED",
    "RUNNING",
    "CheckpointError",
    "SCHEMA_VERSION",
    "IngestChannel",
    "QuerySpec",
    "QueryServer",
    "WallClockPacer",
    "build_query",
    "latest_checkpoint",
    "load_checkpoint",
    "resolve_factory",
    "save_checkpoint",
]
