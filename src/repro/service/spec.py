"""Declarative query specs: how tenants describe queries to the server.

A long-running server cannot accept bare :class:`RecurringQuery`
objects from its tenants: queries carry map/reduce/finalize *code*, and
code does not survive a checkpoint — a restarted server must be able to
rebuild every registered query from durable metadata alone. The
:class:`QuerySpec` therefore names a **factory** (an importable
``module:callable``) plus plain-data keyword arguments; the server
invokes the factory at submit time and again at restore time, exactly
like a real deployment reloads job jars from a code repository while
the *state* comes from the checkpoint.

Factories must be deterministic: calling the same factory with the same
kwargs after a restart must produce a query with identical semantics
(same window constraints, same map/reduce/finalize behaviour, same
reducer count), or the restored server's outputs will diverge from the
uninterrupted run's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Callable, Dict, Mapping, Tuple

from ..core.query import RecurringQuery

__all__ = ["QuerySpec", "resolve_factory", "build_query"]


@dataclass(frozen=True)
class QuerySpec:
    """Durable description of one tenant query.

    Attributes
    ----------
    name:
        The query's unique name within the server; must equal the name
        of the query the factory builds.
    factory:
        Importable constructor as ``"package.module:callable"``. The
        callable receives ``kwargs`` and returns a
        :class:`~repro.core.query.RecurringQuery`.
    kwargs:
        Plain-data keyword arguments for the factory (numbers, strings,
        tuples — anything that serialises cleanly into a checkpoint).
    rates:
        Per-source arrival rates in bytes per virtual second, as
        :meth:`~repro.core.runtime.RedoopRuntime.register_query` wants.
    """

    name: str
    factory: str
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    rates: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if ":" not in self.factory:
            raise ValueError(
                f"factory {self.factory!r} must be 'module:callable'"
            )
        # Freeze the mappings so specs are safely shareable and hashable
        # state can't drift between checkpoint and restore.
        object.__setattr__(self, "kwargs", dict(self.kwargs))
        object.__setattr__(self, "rates", dict(self.rates))


def resolve_factory(path: str) -> Callable[..., RecurringQuery]:
    """Import the ``module:callable`` a spec names."""
    module_name, _, attr = path.partition(":")
    if not module_name or not attr:
        raise ValueError(f"factory {path!r} must be 'module:callable'")
    try:
        module = import_module(module_name)
    except ImportError as exc:
        raise ValueError(f"cannot import factory module {module_name!r}") from exc
    try:
        factory = getattr(module, attr)
    except AttributeError:
        raise ValueError(
            f"module {module_name!r} has no attribute {attr!r}"
        ) from None
    if not callable(factory):
        raise ValueError(f"factory {path!r} is not callable")
    return factory


def build_query(spec: QuerySpec) -> RecurringQuery:
    """Invoke the spec's factory and validate what it returns."""
    query = resolve_factory(spec.factory)(**dict(spec.kwargs))
    if not isinstance(query, RecurringQuery):
        raise TypeError(
            f"factory {spec.factory!r} returned {type(query).__name__}, "
            "expected a RecurringQuery"
        )
    if query.name != spec.name:
        raise ValueError(
            f"factory {spec.factory!r} built query {query.name!r} but the "
            f"spec is named {spec.name!r}; they must match"
        )
    return query


def rebuild_queries(
    specs: Mapping[str, QuerySpec]
) -> Tuple[Dict[str, RecurringQuery], Dict[str, Any]]:
    """Rebuild every spec's query, canonicalising shared jobs by name.

    Two tenants that share a job *name* share cache namespaces
    (``<job>:<source>`` pids), which the runtime only allows when they
    share the job *object*. Factories rebuild independent job objects,
    so restore picks the first as canonical and rewires the rest.
    Returns ``(queries by name, jobs by name)``.
    """
    from dataclasses import replace

    queries: Dict[str, RecurringQuery] = {}
    jobs: Dict[str, Any] = {}
    for name in sorted(specs):
        query = build_query(specs[name])
        canonical = jobs.setdefault(query.job.name, query.job)
        if canonical is not query.job:
            query = replace(query, job=canonical)
        queries[name] = query
    return queries, jobs
