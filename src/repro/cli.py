"""Command-line experiment runner: ``python -m repro <experiment>``.

Regenerates the paper's figures from a shell, printing the same
rows/series the paper plots and optionally exporting them as CSV::

    python -m repro list
    python -m repro fig6 --scale 0.5 --windows 10
    python -m repro fig8 --overlaps 0.1 0.9 --csv fig8.csv
    python -m repro headline --scale 1.0
    python -m repro fig6 --trace-out fig6-trace.json
    python -m repro report fig6-trace.json --top 5
    python -m repro serve --tenants 3 --recurrences 20 --seed 7
    python -m repro serve --restore-from ckpts/ckpt-r00023.bin
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional, Sequence

from .bench import (
    ablation_cache_levels,
    ablation_pane_headers,
    ablation_scheduler,
    fig6_aggregation,
    fig7_join,
    fig8_adaptive,
    fig9_fault_tolerance,
    format_cumulative_table,
    format_phase_split,
    format_response_table,
    format_speedup_summary,
    headline_series,
)
from .bench.plots import plot_series, plot_speedups
from .bench.reporting import write_series_csv
from .core import EVICTION_POLICIES
from .exec import BACKENDS, make_backend
from .hadoop.config import DEFAULT_CONFIG, ClusterConfig
from .trace import (
    Tracer,
    export_chrome_trace,
    format_window_reports,
    load_chrome_trace,
    reports_as_rows,
    window_reports_from_document,
)

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "fig6": "aggregation response times + phase split per overlap",
    "fig7": "join response times + phase split per overlap",
    "fig8": "adaptive partitioning under 2x load spikes",
    "fig9": "fault tolerance (cumulative time, cache removals)",
    "chaos": "differential recovery oracle under seeded fault schedules",
    "capacity": "cache hit rate / cost sweep at descending byte budgets",
    "throughput": "wall-clock records/sec of the execution backends",
    "headline": "the 'up to 9x' best-case speedups",
    "ablations": "pane headers / cache levels / Eq.4 scheduling",
    "report": "per-window phase/cache/task report from a --trace-out JSON",
    "serve": "multi-tenant query server soak (churn, checkpoints, restore)",
    "reuse-bench": "cross-query reuse store: warm-vs-cold response times",
    "plan": "logical-plan IR trees, fingerprints, and shared-scan analysis",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the Redoop paper's evaluation figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")

    def add_backend(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--backend",
            choices=list(BACKENDS),
            default="serial",
            help="execution backend for task user-code (default: serial; "
            "'process' runs map/reduce bodies on a worker pool — virtual "
            "time and outputs are identical either way)",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            metavar="N",
            help="worker count for --backend process "
            "(default: cpu count - 1, at least 2)",
        )

    def add_common(p: argparse.ArgumentParser, *, overlaps: bool) -> None:
        add_backend(p)
        p.add_argument(
            "--scale",
            type=float,
            default=0.5,
            help="fraction of paper-scale data volume (default 0.5)",
        )
        p.add_argument(
            "--windows",
            type=int,
            default=10,
            help="windows per series (paper: 10)",
        )
        p.add_argument("--csv", help="also write the series to this CSV file")
        p.add_argument(
            "--plot",
            action="store_true",
            help="render ASCII bar charts of the per-window times",
        )
        p.add_argument(
            "--trace-out",
            help="write a Chrome-trace/Perfetto JSON of every series here",
        )
        p.add_argument(
            "--cache-capacity-mb",
            type=float,
            default=None,
            metavar="MB",
            help="cap each node's cache at this many megabytes "
            "(default: unbounded)",
        )
        p.add_argument(
            "--eviction-policy",
            choices=list(EVICTION_POLICIES),
            default=None,
            help="victim ranking when a write would exceed the budget "
            "(default: lru)",
        )
        if overlaps:
            p.add_argument(
                "--overlaps",
                type=float,
                nargs="+",
                default=[0.9, 0.5, 0.1],
                help="overlap factors to sweep (default: 0.9 0.5 0.1)",
            )

    for name in ("fig6", "fig7", "fig8"):
        add_common(sub.add_parser(name, help=_EXPERIMENTS[name]), overlaps=True)
    fig9 = sub.add_parser("fig9", help=_EXPERIMENTS["fig9"])
    add_common(fig9, overlaps=False)
    fig9.add_argument(
        "--node-failure-window",
        type=int,
        default=None,
        metavar="W",
        help="also run redoop(node-f): kill one node before window W, "
        "recover it before window W+1",
    )
    fig9.add_argument(
        "--cache-corruption",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="also run redoop(c): silently corrupt this fraction of live "
        "caches before each window (checksums must catch it)",
    )
    chaos = sub.add_parser("chaos", help=_EXPERIMENTS["chaos"])
    add_backend(chaos)
    chaos.add_argument(
        "--seed", type=int, default=1, help="first schedule seed (default 1)"
    )
    chaos.add_argument(
        "--seeds",
        type=int,
        default=1,
        metavar="N",
        help="sweep N consecutive seeds starting at --seed (default 1)",
    )
    chaos.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="fraction of paper-scale data volume (default 0.05)",
    )
    chaos.add_argument(
        "--windows", type=int, default=5, help="windows per run (default 5)"
    )
    chaos.add_argument(
        "--events-per-window",
        type=float,
        default=1.5,
        help="average injected events per window (default 1.5)",
    )
    chaos.add_argument(
        "--exhaust-window",
        type=int,
        default=None,
        metavar="W",
        help="also doom window W's combine task to attempt exhaustion "
        "(expects a degraded window, not a wrong answer)",
    )
    chaos.add_argument(
        "--capacity-fraction",
        type=float,
        default=None,
        metavar="F",
        help="bound each node's cache at F x the peak cached working "
        "set of a fault-free unbounded probe run (exercises eviction "
        "under faults; default: unbounded)",
    )
    chaos.add_argument(
        "--eviction-policy",
        choices=list(EVICTION_POLICIES),
        default=None,
        help="victim ranking used with --capacity-fraction (default: lru)",
    )
    chaos.add_argument(
        "--schedule-in",
        metavar="FILE",
        help="replay this schedule JSON (ignores --seeds and the "
        "generator knobs)",
    )
    chaos.add_argument(
        "--schedule-out",
        metavar="FILE",
        help="write the first failing schedule (else the last one run) "
        "as JSON here",
    )
    chaos.add_argument(
        "--trace-out",
        help="write Chrome-trace/Perfetto JSON of the last fault-free + "
        "chaos pair here",
    )
    chaos.add_argument(
        "--reuse",
        action="store_true",
        help="run the reuse differential instead: store-off vs cold vs "
        "warm runs under each schedule must agree on every non-degraded "
        "window digest, and the warm run must actually hit the store",
    )
    worker_faults = chaos.add_argument_group(
        "real worker faults",
        "crash/hang actual process-pool workers (implies a supervised "
        "process backend for the chaos run; the baseline stays serial "
        "and fault-free)",
    )
    worker_faults.add_argument(
        "--worker-fault-kills",
        type=int,
        default=0,
        metavar="N",
        help="scatter N worker-kill events (os._exit in a real worker) "
        "over each generated schedule (default 0)",
    )
    worker_faults.add_argument(
        "--worker-fault-hangs",
        type=int,
        default=0,
        metavar="N",
        help="scatter N worker-hang events (worker sleeps past the "
        "batch deadline) over each generated schedule (default 0)",
    )
    worker_faults.add_argument(
        "--worker-fault-deadline",
        type=float,
        default=5.0,
        metavar="S",
        help="supervisor batch deadline in wall seconds; hung workers "
        "are reaped when it expires (default 5.0)",
    )
    worker_faults.add_argument(
        "--worker-fault-retries",
        type=int,
        default=2,
        metavar="N",
        help="per-task retries before quarantine (default 2)",
    )
    worker_faults.add_argument(
        "--worker-fault-rebuilds",
        type=int,
        default=3,
        metavar="N",
        help="pool rebuilds per batch before the terminal degraded-"
        "window path (default 3)",
    )
    capacity = sub.add_parser("capacity", help=_EXPERIMENTS["capacity"])
    add_backend(capacity)
    capacity.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="fraction of paper-scale data volume (default 0.1)",
    )
    capacity.add_argument(
        "--windows", type=int, default=6, help="windows per run (default 6)"
    )
    capacity.add_argument(
        "--overlap",
        type=float,
        default=0.5,
        help="window overlap factor of the join workload (default 0.5)",
    )
    capacity.add_argument(
        "--fractions",
        type=float,
        nargs="+",
        default=[1.0, 0.75, 0.5, 0.25],
        metavar="F",
        help="budget fractions of the measured peak to sweep "
        "(default: 1.0 0.75 0.5 0.25)",
    )
    capacity.add_argument(
        "--policies",
        nargs="+",
        choices=list(EVICTION_POLICIES),
        default=list(EVICTION_POLICIES),
        help="eviction policies to sweep (default: all)",
    )
    capacity.add_argument(
        "--json-out",
        metavar="FILE",
        help="also write the sweep report as JSON here",
    )
    throughput = sub.add_parser(
        "throughput", help=_EXPERIMENTS["throughput"]
    )
    throughput.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        metavar="N",
        help="worker counts to sweep; 1 means the serial backend "
        "(default: 1 2 4)",
    )
    throughput.add_argument(
        "--records",
        type=int,
        default=2048,
        help="records in the workload (default 2048)",
    )
    throughput.add_argument(
        "--splits",
        type=int,
        default=32,
        help="map tasks to carve the records into (default 32)",
    )
    throughput.add_argument(
        "--spins",
        type=int,
        default=4000,
        help="arithmetic spin iterations per record (default 4000)",
    )
    throughput.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="timed attempts per point; the best is kept (default 1)",
    )
    throughput.add_argument(
        "--json-out",
        metavar="FILE",
        help="also write the report as JSON here",
    )
    throughput.add_argument(
        "--worker-fault-kills",
        type=int,
        default=0,
        metavar="N",
        help="arm N seeded worker crashes per process-backend point to "
        "measure throughput under supervised recovery (default 0)",
    )
    throughput.add_argument(
        "--worker-fault-hangs",
        type=int,
        default=0,
        metavar="N",
        help="arm N seeded worker hangs per process-backend point "
        "(requires the batch deadline; default 0)",
    )
    throughput.add_argument(
        "--worker-fault-deadline",
        type=float,
        default=5.0,
        metavar="S",
        help="supervisor batch deadline for the fault points "
        "(default 5.0)",
    )
    throughput.add_argument(
        "--worker-fault-seed",
        type=int,
        default=1,
        metavar="N",
        help="seed of the fault placement plan (default 1)",
    )
    headline = sub.add_parser("headline", help=_EXPERIMENTS["headline"])
    headline.add_argument("--scale", type=float, default=0.5)
    headline.add_argument(
        "--trace-out",
        help="write a Chrome-trace/Perfetto JSON of every series here",
    )
    ablations = sub.add_parser("ablations", help=_EXPERIMENTS["ablations"])
    ablations.add_argument("--scale", type=float, default=0.5)
    ablations.add_argument(
        "--trace-out",
        help="write a Chrome-trace/Perfetto JSON of every series here",
    )
    serve = sub.add_parser("serve", help=_EXPERIMENTS["serve"])
    add_backend(serve)
    serve.add_argument(
        "--tenants", type=int, default=3, help="concurrent queries (default 3)"
    )
    serve.add_argument(
        "--recurrences",
        type=int,
        default=20,
        help="base-slide recurrences in the batch horizon (default 20)",
    )
    serve.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="multiplier on the scenario's arrival rate (default 1.0)",
    )
    serve.add_argument(
        "--seed", type=int, default=0, help="seed for data + cluster RNG"
    )
    serve.add_argument(
        "--no-churn",
        action="store_true",
        help="disable the mid-run deregister/submit/pause/resume schedule",
    )
    serve.add_argument(
        "--checkpoint-dir",
        help="snapshot the server here at recurrence boundaries",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="checkpoint every N recurrences (default 1; needs "
        "--checkpoint-dir)",
    )
    serve.add_argument(
        "--restore-from",
        metavar="CKPT",
        help="resume from this checkpoint file instead of starting fresh",
    )
    serve.add_argument(
        "--kill-after",
        type=int,
        metavar="N",
        help="stop once N recurrences have fired (simulated crash; "
        "restart with --restore-from)",
    )
    serve.add_argument(
        "--wall-clock",
        type=float,
        default=None,
        metavar="SPEEDUP",
        help="pace the virtual schedule against real time at SPEEDUP x "
        "virtual-per-wall (default: run as fast as possible)",
    )
    serve.add_argument(
        "--digests",
        action="store_true",
        help="print every per-window output digest (for soak comparison)",
    )
    serve.add_argument(
        "--trace-out",
        help="write the service trace (Chrome/Perfetto JSON) here",
    )
    serve.add_argument(
        "--reuse",
        action="store_true",
        help="attach a cross-query reuse store: overlapping tenants are "
        "served from stored pane/window artifacts (checkpointed with the "
        "server, so it survives --restore-from restarts)",
    )
    serve.add_argument(
        "--reuse-capacity-mb",
        type=float,
        default=None,
        metavar="MB",
        help="bound the reuse store at this many megabytes (cost-benefit "
        "eviction; default: unbounded; implies --reuse)",
    )
    serve.add_argument(
        "--share-scans",
        action="store_true",
        help="enable the plan-IR shared-scan optimizer: tenants with "
        "IR-equal Scan → Map → Shuffle prefixes run each pane's map "
        "phase once and fan the output out (outputs are byte-identical "
        "either way — see `repro plan --differential`)",
    )
    plan_cmd = sub.add_parser("plan", help=_EXPERIMENTS["plan"])
    add_backend(plan_cmd)
    plan_cmd.add_argument(
        "workloads",
        nargs="*",
        metavar="WORKLOAD",
        help="figure workloads to plan (aggregation, join, distinct, "
        "extrema; default: all four)",
    )
    plan_cmd.add_argument(
        "--win", type=float, default=60.0, help="window size in s (default 60)"
    )
    plan_cmd.add_argument(
        "--slide", type=float, default=30.0, help="window slide in s (default 30)"
    )
    plan_cmd.add_argument(
        "--num-reducers", type=int, default=4, help="reduce fan-out (default 4)"
    )
    plan_cmd.add_argument(
        "--serve-fleet",
        action="store_true",
        help="plan the multi-tenant serve scenario's fleet instead of the "
        "figure workloads (all tenants share one source — the sharing "
        "report shows the shared prefix groups)",
    )
    plan_cmd.add_argument(
        "--differential",
        action="store_true",
        help="run the shared-scan differential oracle: drive the serve "
        "scenario with sharing off then on and require byte-identical "
        "window digests while sharing is actually exercised (exit 1 "
        "otherwise)",
    )
    plan_cmd.add_argument(
        "--tenants", type=int, default=3,
        help="fleet size for --serve-fleet / --differential (default 3)",
    )
    plan_cmd.add_argument(
        "--recurrences", type=int, default=8,
        help="base-slide recurrences for --differential (default 8)",
    )
    plan_cmd.add_argument(
        "--scale", type=float, default=1.0,
        help="multiplier on the differential's arrival rate (default 1.0)",
    )
    plan_cmd.add_argument(
        "--seed", type=int, default=0, help="seed for data + cluster RNG"
    )
    plan_cmd.add_argument(
        "--no-churn",
        action="store_true",
        help="disable the differential's mid-run churn schedule",
    )
    plan_cmd.add_argument(
        "--faults",
        action="store_true",
        help="apply the deterministic node kill/recover plan to both "
        "differential runs (chaos-extended oracle)",
    )
    reuse_bench = sub.add_parser(
        "reuse-bench", help=_EXPERIMENTS["reuse-bench"]
    )
    add_backend(reuse_bench)
    reuse_bench.add_argument(
        "--kind",
        choices=("aggregation", "join"),
        default="join",
        help="workload shape (default: join)",
    )
    reuse_bench.add_argument(
        "--overlap",
        type=float,
        default=0.75,
        help="window overlap factor (default 0.75)",
    )
    reuse_bench.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="fraction of paper-scale data volume (default 0.05)",
    )
    reuse_bench.add_argument(
        "--windows", type=int, default=4, help="windows per run (default 4)"
    )
    reuse_bench.add_argument(
        "--capacity-mb",
        type=float,
        default=None,
        metavar="MB",
        help="bound the store at this many megabytes (default: unbounded)",
    )
    reuse_bench.add_argument(
        "--json-out",
        metavar="FILE",
        help="also write the report as JSON here",
    )
    reuse_bench.add_argument(
        "--no-check",
        action="store_true",
        help="report numbers even when digests mismatch or the warm run "
        "never hits (default: exit 1 on either)",
    )
    report = sub.add_parser("report", help=_EXPERIMENTS["report"])
    report.add_argument("trace", help="trace JSON written by --trace-out")
    report.add_argument(
        "--top",
        type=int,
        default=3,
        help="slowest tasks to list per window (default 3)",
    )
    report.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the report as JSON instead of text",
    )
    return parser


def _backend_from(args):
    """Build the requested execution backend, or ``None`` for serial.

    Returning ``None`` for serial lets every callee fall through to its
    own default — the serial path stays byte-identical to a build
    without the flag.
    """
    name = getattr(args, "backend", "serial")
    if name == "serial":
        return None
    return make_backend(name, workers=getattr(args, "workers", None))


def _cluster_config_from(args) -> ClusterConfig:
    """``DEFAULT_CONFIG`` with any budget knobs from the command line."""
    overrides: Dict[str, object] = {}
    capacity_mb = getattr(args, "cache_capacity_mb", None)
    if capacity_mb is not None:
        overrides["cache_capacity_bytes"] = max(1, int(capacity_mb * 2**20))
    policy = getattr(args, "eviction_policy", None)
    if policy is not None:
        overrides["cache_eviction_policy"] = policy
    return DEFAULT_CONFIG.with_overrides(**overrides) if overrides else DEFAULT_CONFIG


def _gather_tracers(series_by_key: Dict[str, object]) -> Dict[str, Tracer]:
    """Tracers per series key, skipping series without one (averaged)."""
    return {
        key: series.tracer
        for key, series in series_by_key.items()
        if getattr(series, "tracer", None) is not None
    }


def _print_overlap_sweep(
    results, *, plot: bool = False
) -> Dict[str, object]:
    merged: Dict[str, object] = {}
    for overlap, series in results.items():
        print(format_response_table(series, title=f"--- overlap = {overlap} ---"))
        print()
        if plot:
            print(plot_series(series))
            print()
            print(plot_speedups(series, title="speedups vs hadoop:"))
            print()
        if any(w.phases.shuffle or w.phases.reduce for s in series.values()
               for w in s.windows):
            print(format_phase_split(series))
            print()
        print(format_speedup_summary(series))
        print()
        for label, result in series.items():
            merged[f"{label}@{overlap}"] = result
    return merged


def _run_serve(args) -> int:
    from .bench.service import (
        ServiceScenario,
        build_server,
        drive_scenario,
    )
    from .service import (
        CheckpointError,
        QueryServer,
        WallClockPacer,
        latest_checkpoint,
    )

    backend = _backend_from(args)

    scenario = ServiceScenario(
        tenants=args.tenants,
        recurrences=args.recurrences,
        rate=200_000.0 * args.scale,
        seed=args.seed,
        churn=not args.no_churn,
    )
    try:
        if args.restore_from:
            from pathlib import Path

            restore_path = Path(args.restore_from)
            if restore_path.is_dir():
                newest = latest_checkpoint(restore_path)
                if newest is None:
                    print(
                        f"error: no checkpoint files in {restore_path}",
                        file=sys.stderr,
                    )
                    return 1
                restore_path = newest
            server = QueryServer.restore(restore_path)
            if args.checkpoint_dir:
                server.checkpoint_dir = Path(args.checkpoint_dir)
                server.checkpoint_every = args.checkpoint_every
            if backend is not None:
                # A restored runtime deserialises with the default
                # serial backend; honour the flag on the revived server.
                server.runtime.backend = backend
            print(
                f"restored from {restore_path} at virtual time "
                f"{server.now:.1f}s with tenants {server.tenants()}"
            )
        else:
            reuse_store = None
            if args.reuse or args.reuse_capacity_mb is not None:
                from .reuse import ReuseStore

                capacity = (
                    max(1, int(args.reuse_capacity_mb * 2**20))
                    if args.reuse_capacity_mb is not None
                    else None
                )
                reuse_store = ReuseStore(capacity_bytes=capacity)
            server = build_server(
                scenario,
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_every=(
                    args.checkpoint_every if args.checkpoint_dir else 0
                ),
                backend=backend,
                reuse_store=reuse_store,
                share_scans=args.share_scans,
            )
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    pace = None
    if args.wall_clock:
        pace = WallClockPacer(args.wall_clock, start_virtual=server.now)

    try:
        run = drive_scenario(
            scenario, server, stop_after_recurrences=args.kill_after, pace=pace
        )
    finally:
        if pace is not None:
            pace.wake()
        if backend is not None:
            backend.close()
    killed = args.kill_after is not None and run.recurrences_fired >= args.kill_after
    print(
        f"{'killed' if killed else 'drained'} at virtual time "
        f"{server.now:.1f}s after {run.recurrences_fired} recurrences; "
        f"tenants: {server.tenants()}"
    )
    for name in sorted(run.counters):
        print(f"  {name:40} {run.counters[name]:10.0f}")
    if args.digests:
        for tenant in sorted(run.digests):
            for recurrence, digest in run.digests[tenant]:
                print(f"digest {tenant} w{recurrence:03d} {digest}")
    if args.trace_out:
        count = export_chrome_trace({"serve": server.tracer}, args.trace_out)
        print(f"wrote {count} trace events to {args.trace_out}")
    return 0


def _run_plan(args) -> int:
    """Print IR trees + fingerprints, or run the sharing differential."""
    from .plan import format_sharing_report, render_plan, sharing_report

    if args.differential:
        from .bench.service import ServiceScenario
        from .bench.sharing import default_fault_plan, run_sharing_differential

        scenario = ServiceScenario(
            tenants=args.tenants,
            recurrences=args.recurrences,
            rate=200_000.0 * args.scale,
            seed=args.seed,
            churn=not args.no_churn,
        )
        backend_factory = None
        if getattr(args, "backend", "serial") != "serial":
            def backend_factory():
                return make_backend(args.backend, workers=args.workers)

        report = run_sharing_differential(
            scenario,
            backend_factory=backend_factory,
            fault_plan=default_fault_plan(scenario) if args.faults else (),
        )
        print(report.summary())
        if not report.ok:
            print("plan --differential: FAILED", file=sys.stderr)
            return 1
        return 0

    plans = {}
    if args.serve_fleet:
        from .bench.service import ServiceScenario, tenant_specs
        from .service import build_query

        scenario = ServiceScenario(
            tenants=args.tenants, churn=not args.no_churn
        )
        for spec in tenant_specs(scenario):
            plans[spec.name] = build_query(spec).plan()
    else:
        from .workloads.queries import (
            aggregation_query,
            distinct_count_query,
            extrema_query,
            join_query,
        )

        factories = {
            "aggregation": aggregation_query,
            "join": join_query,
            "distinct": distinct_count_query,
            "extrema": extrema_query,
        }
        names = args.workloads or list(factories)
        for label in names:
            factory = factories.get(label)
            if factory is None:
                print(
                    f"error: unknown workload {label!r}; choose from "
                    + ", ".join(factories),
                    file=sys.stderr,
                )
                return 2
            query = factory(
                args.win, args.slide, num_reducers=args.num_reducers
            )
            plans[query.name] = query.plan()
    for name in sorted(plans):
        print(f"--- {name} ---")
        print(render_plan(plans[name]))
        print()
    print("sharing report:")
    print(format_sharing_report(sharing_report(plans)))
    return 0


def _run_chaos(args) -> int:
    """The differential recovery oracle (fig7 join workload, overlap 0.5).

    Exit status 0 means every seed's chaos run matched the fault-free
    run on all non-degraded windows with zero invariant violations;
    1 means recovery broke somewhere — the offending schedule is
    written to ``--schedule-out`` (when given) for replay.
    """
    import dataclasses
    from pathlib import Path

    from .bench import build_workload, join_config, run_redoop_series
    from .chaos import ChaosSchedule, run_differential
    from .chaos.oracle import run_reuse_differential, run_worker_fault_differential
    from .exec import ProcessPoolBackend

    backend = _backend_from(args)
    worker_faults = args.worker_fault_kills + args.worker_fault_hangs > 0
    wf_backend = None
    if worker_faults:
        # Real process faults need a supervised process backend for the
        # chaos run; one instance is shared across seeds (the supervisor
        # rebuilds its pool as faults destroy it).
        wf_backend = ProcessPoolBackend(
            workers=getattr(args, "workers", None),
            batch_deadline=args.worker_fault_deadline,
            max_task_retries=args.worker_fault_retries,
            max_pool_rebuilds=args.worker_fault_rebuilds,
        )
    config = join_config(0.5, scale=args.scale, num_windows=args.windows)
    if args.capacity_fraction is not None:
        # Probe a fault-free unbounded run for the peak cached working
        # set, then re-arm the whole differential (baseline + chaos) at
        # the requested fraction of it: the oracle's digest comparison
        # now also proves eviction never changes an answer under faults.
        probe = run_redoop_series(
            config,
            label="probe",
            workload=build_workload(config),
            backend=backend,
        )
        capacity = max(
            1, int(probe.peak_cached_bytes * args.capacity_fraction)
        )
        cluster_config = config.cluster_config.with_overrides(
            cache_capacity_bytes=capacity,
            cache_eviction_policy=args.eviction_policy or "lru",
        )
        config = dataclasses.replace(config, cluster_config=cluster_config)
        print(
            f"capacity: {capacity} B/node "
            f"({args.capacity_fraction:g} x peak {probe.peak_cached_bytes} B, "
            f"policy {cluster_config.cache_eviction_policy})"
        )
    seeds = [args.seed] if args.schedule_in else list(
        range(args.seed, args.seed + args.seeds)
    )
    failing_schedule: Optional[ChaosSchedule] = None
    last_schedule: Optional[ChaosSchedule] = None
    last_report = None
    failures = 0
    for seed in seeds:
        if args.schedule_in:
            schedule = ChaosSchedule.from_json(
                Path(args.schedule_in).read_text()
            )
        else:
            schedule = ChaosSchedule.random(
                seed,
                horizon=config.horizon,
                num_nodes=config.cluster_config.num_nodes,
                num_windows=config.num_windows,
                slide=config.slide,
                events_per_window=args.events_per_window,
                exhaust_window=args.exhaust_window,
                worker_kills=args.worker_fault_kills,
                worker_hangs=args.worker_fault_hangs,
            )
        has_worker_events = any(
            e.kind in ("worker-kill", "worker-hang") for e in schedule.events
        )
        if args.reuse:
            report = run_reuse_differential(
                config, schedule, backend=wf_backend or backend
            )
        elif worker_faults or (has_worker_events and wf_backend is None):
            report = run_worker_fault_differential(
                config,
                schedule,
                backend=wf_backend,
                batch_deadline=args.worker_fault_deadline,
                max_task_retries=args.worker_fault_retries,
                max_pool_rebuilds=args.worker_fault_rebuilds,
            )
        else:
            report = run_differential(config, schedule, backend=backend)
        print(report.summary())
        last_schedule, last_report = schedule, report
        if not report.ok:
            failures += 1
            if failing_schedule is None:
                failing_schedule = schedule
    print(f"chaos: {len(seeds) - failures}/{len(seeds)} seed(s) ok")
    if args.schedule_out and last_schedule is not None:
        dumped = failing_schedule or last_schedule
        Path(args.schedule_out).write_text(dumped.to_json() + "\n")
        kind = "failing" if failing_schedule else "last"
        print(f"wrote {kind} schedule to {args.schedule_out}")
    if args.trace_out and last_report is not None:
        if args.reuse:
            tracers = {
                "reuse-off": last_report.off.tracer,
                "reuse-cold": last_report.cold.series.tracer,
                "reuse-warm": last_report.warm.series.tracer,
            }
        else:
            tracers = {
                "fault-free": last_report.baseline.tracer,
                "chaos": last_report.chaos.series.tracer,
            }
        count = export_chrome_trace(tracers, args.trace_out)
        print(f"wrote {count} trace events to {args.trace_out}")
    if wf_backend is not None:
        wf_backend.close()
    if backend is not None:
        backend.close()
    return 1 if failures else 0


def _run_capacity(args) -> int:
    """Hit-rate-vs-capacity sweep (fig7 join workload under budgets).

    Exit status 0 means every bounded point reproduced the unbounded
    run's window outputs byte-for-byte; 1 means some budget changed an
    answer — which is a cache-lifecycle bug, not a tuning problem.
    """
    from pathlib import Path

    from .bench import format_capacity_table, sweep_hit_rate_vs_capacity

    backend = _backend_from(args)
    try:
        sweep = sweep_hit_rate_vs_capacity(
            scale=args.scale,
            overlap=args.overlap,
            num_windows=args.windows,
            fractions=tuple(args.fractions),
            policies=tuple(args.policies),
            backend=backend,
        )
    finally:
        if backend is not None:
            backend.close()
    print(format_capacity_table(sweep))
    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(sweep.as_report(), indent=2) + "\n"
        )
        print(f"wrote sweep report to {args.json_out}")
    diverged = [p for p in sweep.points if not p.outputs_match]
    if diverged:
        print(
            f"capacity: {len(diverged)} point(s) DIVERGED from the "
            f"unbounded outputs",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_reuse_bench(args) -> int:
    """Warm-vs-cold reuse benchmark (store-off baseline included).

    Exit status 0 means the warm run served from the store AND all
    three runs agreed on every window digest; 1 means the store either
    never hit or changed an answer (suppress with ``--no-check``).
    """
    from pathlib import Path

    from .bench.experiments import aggregation_config, join_config
    from .bench.reuse import run_warm_cold

    backend = _backend_from(args)
    make_config = aggregation_config if args.kind == "aggregation" else join_config
    config = make_config(
        args.overlap, scale=args.scale, num_windows=args.windows
    )
    capacity = (
        max(1, int(args.capacity_mb * 2**20))
        if args.capacity_mb is not None
        else None
    )
    try:
        report = run_warm_cold(
            config, capacity_bytes=capacity, backend=backend
        )
    finally:
        if backend is not None:
            backend.close()
    print(report.summary())
    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(report.as_dict(), indent=2) + "\n"
        )
        print(f"wrote reuse report to {args.json_out}")
    if not report.ok and not args.no_check:
        print(
            "reuse-bench: FAILED ("
            + ("digest mismatch" if not report.digests_equal
               else "warm run never hit the store")
            + ")",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_throughput(args) -> int:
    """Wall-clock backend throughput sweep (real seconds, not virtual)."""
    from pathlib import Path

    from .bench import format_throughput_table, run_throughput_bench

    report = run_throughput_bench(
        worker_counts=tuple(args.workers),
        fault_kills=args.worker_fault_kills,
        fault_hangs=args.worker_fault_hangs,
        fault_seed=args.worker_fault_seed,
        batch_deadline=(
            args.worker_fault_deadline
            if (args.worker_fault_kills or args.worker_fault_hangs)
            else None
        ),
        num_records=args.records,
        num_splits=args.splits,
        spins=args.spins,
        repeats=args.repeats,
    )
    print(format_throughput_table(report))
    if args.json_out:
        Path(args.json_out).write_text(report.to_json() + "\n")
        print(f"wrote throughput report to {args.json_out}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for name, blurb in _EXPERIMENTS.items():
            print(f"{name:10} {blurb}")
        return 0

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "plan":
        return _run_plan(args)

    if args.command == "chaos":
        return _run_chaos(args)

    if args.command == "capacity":
        return _run_capacity(args)

    if args.command == "throughput":
        return _run_throughput(args)

    if args.command == "reuse-bench":
        return _run_reuse_bench(args)

    if args.command == "report":
        document = load_chrome_trace(args.trace)
        reports = window_reports_from_document(document)
        if args.as_json:
            print(json.dumps(reports_as_rows(reports), indent=2))
        else:
            print(format_window_reports(reports, top_k=args.top), end="")
        return 0

    csv_series: Dict[str, object] = {}
    backend = _backend_from(args)
    try:
        if args.command == "fig6":
            results = fig6_aggregation(
                scale=args.scale,
                overlaps=args.overlaps,
                num_windows=args.windows,
                cluster_config=_cluster_config_from(args),
                backend=backend,
            )
            csv_series = _print_overlap_sweep(results, plot=args.plot)
        elif args.command == "fig7":
            results = fig7_join(
                scale=args.scale,
                overlaps=args.overlaps,
                num_windows=args.windows,
                cluster_config=_cluster_config_from(args),
                backend=backend,
            )
            csv_series = _print_overlap_sweep(results, plot=args.plot)
        elif args.command == "fig8":
            results = fig8_adaptive(
                scale=args.scale,
                overlaps=args.overlaps,
                num_windows=args.windows,
                cluster_config=_cluster_config_from(args),
                backend=backend,
            )
            csv_series = _print_overlap_sweep(results, plot=args.plot)
        elif args.command == "fig9":
            series = fig9_fault_tolerance(
                scale=args.scale,
                num_windows=args.windows,
                cache_corruption_fraction=args.cache_corruption,
                node_failure_window=args.node_failure_window,
                cluster_config=_cluster_config_from(args),
                backend=backend,
            )
            print(
                format_cumulative_table(series, title="Fig 9 cumulative time")
            )
            if args.plot:
                print()
                print(plot_speedups(series, title="speedups vs hadoop:"))
            csv_series = dict(series)
    finally:
        if backend is not None:
            backend.close()
    if args.command == "headline":
        by_kind = headline_series(scale=args.scale)
        print("steady-state speedups at overlap 0.9 (paper: up to 9x):")
        for kind, runs in by_kind.items():
            factor = runs["redoop"].speedup_vs(runs["hadoop"], skip_first=True)
            print(f"  {kind:12} {factor:5.2f}x")
        csv_series = {
            f"{kind}/{label}": result
            for kind, runs in by_kind.items()
            for label, result in runs.items()
        }
    elif args.command == "ablations":
        for name, fn in (
            ("pane headers", ablation_pane_headers),
            ("cache levels", ablation_cache_levels),
            ("scheduler", ablation_scheduler),
        ):
            series = fn(scale=args.scale)
            print(format_response_table(series, title=f"--- ablation: {name} ---"))
            print()
            for label, result in series.items():
                csv_series[f"{name}/{label}"] = result

    if getattr(args, "csv", None) and csv_series:
        rows = write_series_csv(args.csv, csv_series)
        print(f"wrote {rows} rows to {args.csv}")
    if getattr(args, "trace_out", None):
        tracers = _gather_tracers(csv_series)
        if tracers:
            count = export_chrome_trace(tracers, args.trace_out)
            print(f"wrote {count} trace events to {args.trace_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
