"""The plain-Hadoop baseline driver for recurring queries.

This is how the paper says applications run recurring queries without
Redoop: a driver script re-issues a *fresh* MapReduce job for every
window, reading every batch file that overlaps the window from HDFS,
filtering records to the window inside the mapper, and shuffling and
reducing everything from scratch. All redundancy across overlapping
windows is paid again each time — the inefficiency Redoop removes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.trace import Tracer

from .catalog import BatchCatalog
from .cluster import Cluster
from .faults import FaultInjector
from .job import MapReduceJob
from .jobtracker import JobResult, JobTracker
from .types import KeyValue, Record

__all__ = ["WindowExecution", "PlainHadoopDriver", "window_filtered_job"]


@dataclass(slots=True)
class WindowExecution:
    """One recurrence of a recurring query: its window plus job result."""

    index: int
    window_start: float
    window_end: float
    result: JobResult

    @property
    def response_time(self) -> float:
        """Virtual seconds from job submission to final output."""
        return self.result.span

    def output(self) -> List[KeyValue]:
        return self.result.merged_output()


class _WindowFilteredMapper:
    """A mapper wrapper dropping records outside ``[start, end)``.

    A class (not a closure) so the wrapped job stays picklable and the
    baseline driver can run its map tasks on the process backend.
    """

    __slots__ = ("inner", "start", "end")

    def __init__(self, inner, start: float, end: float) -> None:
        self.inner = inner
        self.start = start
        self.end = end

    def __call__(self, record: Record):
        if record.in_range(self.start, self.end):
            return self.inner(record)
        return []


def window_filtered_job(
    job: MapReduceJob, start: float, end: float
) -> MapReduceJob:
    """Wrap ``job``'s mapper so it drops records outside ``[start, end)``.

    The full input file is still read (and charged for) — that is the
    point of the baseline: plain Hadoop has no notion of panes, so it
    must scan entire batches and discard out-of-window records in user
    code.
    """
    return replace(job, mapper=_WindowFilteredMapper(job.mapper, start, end))


class PlainHadoopDriver:
    """Executes a recurring query the traditional way: one job per window."""

    def __init__(
        self,
        cluster: Cluster,
        *,
        fault_injector: Optional[FaultInjector] = None,
        tracer: Optional[Tracer] = None,
        backend=None,
    ) -> None:
        self.cluster = cluster
        self.tracker = JobTracker(
            cluster, fault_injector=fault_injector, tracer=tracer,
            backend=backend,
        )

    @property
    def tracer(self) -> Tracer:
        return self.tracker.tracer

    def run_window(
        self,
        job: MapReduceJob,
        catalog: BatchCatalog,
        window_start: float,
        window_end: float,
        *,
        index: int = 0,
        sources: Optional[Sequence[str]] = None,
        start: Optional[float] = None,
        output_path: Optional[str] = None,
    ) -> WindowExecution:
        """Run one recurrence over all batches overlapping the window."""
        batches = catalog.files_overlapping(window_start, window_end)
        if sources is not None:
            wanted = set(sources)
            batches = [b for b in batches if b.source in wanted]
        paths = [b.path for b in batches]
        windowed = window_filtered_job(
            job.with_name(f"{job.name}@w{index}"), window_start, window_end
        )
        result = self.tracker.run_job(
            windowed,
            paths,
            start=start,
            output_path=output_path,
            trace_attrs={
                "window": index,
                "due": start if start is not None else window_end,
            },
        )
        return WindowExecution(
            index=index,
            window_start=window_start,
            window_end=window_end,
            result=result,
        )

    def run_recurring(
        self,
        job: MapReduceJob,
        catalog: BatchCatalog,
        windows: Sequence[Tuple[float, float]],
        *,
        sources: Optional[Sequence[str]] = None,
    ) -> List[WindowExecution]:
        """Run every window in ``windows`` back to back.

        Each window's job is submitted no earlier than the window's end
        (data for the window must have arrived) and no earlier than the
        previous job's completion (the driver is a sequential script).
        """
        executions: List[WindowExecution] = []
        for index, (w_start, w_end) in enumerate(windows):
            execution = self.run_window(
                job,
                catalog,
                w_start,
                w_end,
                index=index,
                sources=sources,
                start=max(w_end, self.cluster.clock.now),
            )
            executions.append(execution)
        return executions
