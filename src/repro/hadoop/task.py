"""Logical execution of map and reduce tasks.

A task execution produces two things: the *real* output pairs (so
downstream logic and tests can check correctness) and the byte/record
accounting the cost model needs to charge virtual time. Scheduling —
which node runs the task and when — is decided elsewhere; these
functions are pure data transformations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from .job import MapReduceJob
from .shuffle import (
    apply_combiner,
    group_sorted,
    partition_pairs,
    run_reduce_partition,
    sort_pairs,
)
from .types import KeyValue, Record, records_size

__all__ = [
    "MapExecution",
    "ReduceExecution",
    "execute_map",
    "execute_reduce",
    "execute_finalize",
    "execute_pane_reduce",
]


@dataclass(slots=True)
class MapExecution:
    """Outcome of one map task over one input split."""

    #: Map output pairs, already split by reduce partition.
    partitioned: Dict[int, List[KeyValue]]
    input_records: int
    input_bytes: int
    output_pairs: int
    output_bytes: int

    def bytes_for_partition(self, partition: int, job: MapReduceJob) -> int:
        """Bytes of this task's output destined for ``partition``."""
        pairs = self.partitioned.get(partition, [])
        return len(pairs) * job.intermediate_pair_size


@dataclass(slots=True)
class ReduceExecution:
    """Outcome of one reduce task over one partition."""

    partition: int
    output: List[KeyValue]
    input_pairs: int
    input_bytes: int
    output_bytes: int


def execute_map(
    job: MapReduceJob,
    records: Sequence[Record],
    *,
    input_bytes: int | None = None,
) -> MapExecution:
    """Run the job's mapper (and combiner, if any) over ``records``.

    Parameters
    ----------
    job:
        The job whose mapper/combiner/partitioner to apply.
    records:
        The split's input records.
    input_bytes:
        Split size to charge; computed from the records when omitted
        (callers pass the block size when splits are block-aligned).
    """
    pairs: List[KeyValue] = []
    for record in records:
        pairs.extend(job.mapper(record))
    if job.combiner is not None:
        pairs = apply_combiner(pairs, job.combiner)
    partitioned = partition_pairs(pairs, job)
    n_bytes = records_size(records) if input_bytes is None else input_bytes
    return MapExecution(
        partitioned=partitioned,
        input_records=len(records),
        input_bytes=n_bytes,
        output_pairs=len(pairs),
        output_bytes=len(pairs) * job.intermediate_pair_size,
    )


def execute_reduce(
    job: MapReduceJob,
    partition: int,
    pairs: Iterable[KeyValue],
) -> ReduceExecution:
    """Sort, group, and reduce one partition's pairs."""
    pair_list = list(pairs)
    output = run_reduce_partition(pair_list, job.reducer)
    return ReduceExecution(
        partition=partition,
        output=output,
        input_pairs=len(pair_list),
        input_bytes=len(pair_list) * job.intermediate_pair_size,
        output_bytes=len(output) * job.output_pair_size,
    )


def execute_pane_reduce(
    job: MapReduceJob,
    pairs: Iterable[KeyValue],
    *,
    aggregate: bool,
) -> tuple:
    """Sort one pane partition and (for aggregations) reduce it.

    Returns ``(sorted_pairs, reduced_or_None)`` — the reduce-input run
    Redoop caches plus, when ``aggregate`` is set, the pane's partial
    reduce output. Pure, so execution backends may run partitions
    concurrently; the Redoop runtime charges virtual time separately.
    """
    sorted_pairs = sort_pairs(list(pairs))
    reduced: List[KeyValue] | None = None
    if aggregate:
        reduced = []
        for key, values in group_sorted(sorted_pairs):
            reduced.extend(job.reducer(key, values))
    return sorted_pairs, reduced


def execute_finalize(
    finalize, partials: Sequence[List[KeyValue]]
) -> List[KeyValue]:
    """Merge per-pane partial outputs with a query's finalizer.

    The pane-based merge of the combine phase: flatten the partials,
    group by key, finalize each group. Pure — the finalizer must be a
    picklable callable for process backends (see
    :func:`repro.core.query.merging_finalizer`).
    """
    flat: List[KeyValue] = [pair for pane in partials for pair in pane]
    merged: List[KeyValue] = []
    for key, values in group_sorted(sort_pairs(flat)):
        merged.extend(finalize(key, values))
    return merged
