"""Logical execution of map and reduce tasks.

A task execution produces two things: the *real* output pairs (so
downstream logic and tests can check correctness) and the byte/record
accounting the cost model needs to charge virtual time. Scheduling —
which node runs the task and when — is decided elsewhere; these
functions are pure data transformations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Sequence

from .job import MapReduceJob
from .shuffle import apply_combiner, partition_pairs, run_reduce_partition
from .types import KeyValue, Record, records_size

__all__ = ["MapExecution", "ReduceExecution", "execute_map", "execute_reduce"]


@dataclass(slots=True)
class MapExecution:
    """Outcome of one map task over one input split."""

    #: Map output pairs, already split by reduce partition.
    partitioned: Dict[int, List[KeyValue]]
    input_records: int
    input_bytes: int
    output_pairs: int
    output_bytes: int

    def bytes_for_partition(self, partition: int, job: MapReduceJob) -> int:
        """Bytes of this task's output destined for ``partition``."""
        pairs = self.partitioned.get(partition, [])
        return len(pairs) * job.intermediate_pair_size


@dataclass(slots=True)
class ReduceExecution:
    """Outcome of one reduce task over one partition."""

    partition: int
    output: List[KeyValue]
    input_pairs: int
    input_bytes: int
    output_bytes: int


def execute_map(
    job: MapReduceJob,
    records: Sequence[Record],
    *,
    input_bytes: int | None = None,
) -> MapExecution:
    """Run the job's mapper (and combiner, if any) over ``records``.

    Parameters
    ----------
    job:
        The job whose mapper/combiner/partitioner to apply.
    records:
        The split's input records.
    input_bytes:
        Split size to charge; computed from the records when omitted
        (callers pass the block size when splits are block-aligned).
    """
    pairs: List[KeyValue] = []
    for record in records:
        pairs.extend(job.mapper(record))
    if job.combiner is not None:
        pairs = apply_combiner(pairs, job.combiner)
    partitioned = partition_pairs(pairs, job)
    n_bytes = records_size(records) if input_bytes is None else input_bytes
    return MapExecution(
        partitioned=partitioned,
        input_records=len(records),
        input_bytes=n_bytes,
        output_pairs=len(pairs),
        output_bytes=len(pairs) * job.intermediate_pair_size,
    )


def execute_reduce(
    job: MapReduceJob,
    partition: int,
    pairs: Iterable[KeyValue],
) -> ReduceExecution:
    """Sort, group, and reduce one partition's pairs."""
    pair_list = list(pairs)
    output = run_reduce_partition(pair_list, job.reducer)
    return ReduceExecution(
        partition=partition,
        output=output,
        input_pairs=len(pair_list),
        input_bytes=len(pair_list) * job.intermediate_pair_size,
        output_bytes=len(output) * job.output_pair_size,
    )
