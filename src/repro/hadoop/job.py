"""MapReduce job specifications.

A :class:`MapReduceJob` bundles the user's map, combine, and reduce
functions with the knobs the runtime needs: reducer count, partitioner,
and byte-size estimators for intermediate and output records (the cost
model charges I/O in bytes, so the simulator must know how big the
logical pairs would be on disk).

Functions follow Hadoop's contracts:

* ``mapper(record) -> iterable of (key, value)`` — one input record in,
  zero or more pairs out.
* ``combiner(key, values) -> iterable of (key, value)`` — optional
  map-side pre-aggregation; must be algebraically safe to apply any
  number of times.
* ``reducer(key, values) -> iterable of (key, value)`` — one key group
  in, zero or more output pairs out.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

from .types import KeyValue, Record

__all__ = [
    "MapReduceJob",
    "MapFn",
    "ReduceFn",
    "stable_hash",
    "default_partitioner",
]

MapFn = Callable[[Record], Iterable[KeyValue]]
ReduceFn = Callable[[Any, list], Iterable[KeyValue]]
Partitioner = Callable[[Any, int], int]


def stable_hash(key: Any) -> int:
    """A deterministic 32-bit hash of ``key``.

    Python's built-in ``hash`` for strings is salted per process, which
    would make partition assignment — and therefore cache placement —
    unstable across runs. CRC32 over the repr is stable, fast, and well
    mixed enough for partitioning.
    """
    return zlib.crc32(repr(key).encode("utf-8"))


def default_partitioner(key: Any, num_partitions: int) -> int:
    """Hadoop's HashPartitioner, on the stable hash."""
    if num_partitions < 1:
        raise ValueError("num_partitions must be at least 1")
    return stable_hash(key) % num_partitions


@dataclass(frozen=True)
class MapReduceJob:
    """A complete, runnable job description.

    Attributes
    ----------
    name:
        Human-readable job name, used in counters and logs.
    mapper / reducer / combiner:
        The user functions (see module docstring for contracts).
    num_reducers:
        Number of reduce partitions. Redoop requires this to stay fixed
        across recurrences of the same query so cached reduce inputs
        remain valid (paper Sec. 4.3).
    partitioner:
        Maps a key to a reduce partition; must also stay fixed across
        recurrences.
    intermediate_pair_size:
        Bytes charged per map-output pair.
    output_pair_size:
        Bytes charged per reduce-output pair.
    """

    name: str
    mapper: MapFn
    reducer: ReduceFn
    num_reducers: int
    combiner: Optional[ReduceFn] = None
    partitioner: Partitioner = default_partitioner
    intermediate_pair_size: int = 64
    output_pair_size: int = 64

    def __post_init__(self) -> None:
        if self.num_reducers < 1:
            raise ValueError("a job needs at least one reducer")
        if self.intermediate_pair_size <= 0 or self.output_pair_size <= 0:
            raise ValueError("pair sizes must be positive byte counts")

    def partition_of(self, key: Any) -> int:
        """Reduce partition responsible for ``key``."""
        return self.partitioner(key, self.num_reducers)

    def with_name(self, name: str) -> "MapReduceJob":
        """A copy of this job under a different name (per-window jobs)."""
        from dataclasses import replace

        return replace(self, name=name)
