"""Simulated Hadoop substrate: HDFS, MapReduce, scheduling, and faults.

This subpackage is a from-scratch, event-driven simulation of the
Hadoop 0.20-era stack the paper builds on: a block-replicated
distributed file system, slot-based task nodes, a FIFO job tracker, an
I/O-dominant cost model, and deterministic fault injection. Map and
reduce functions really execute over real records, so results are
checkable; time is virtual, so 30-node runs finish in milliseconds.
"""

from .catalog import BatchCatalog, BatchFile
from .cluster import Cluster
from .config import DEFAULT_CONFIG, ClusterConfig, small_test_config
from .costmodel import CostModel
from .counters import Counters, PhaseTimes
from .faults import FaultInjector, TaskAttemptsExhaustedError
from .hdfs import Block, FileSplit, HDFSError, HDFSFile, SimulatedHDFS
from .job import MapReduceJob, default_partitioner, stable_hash
from .jobtracker import FIFOScheduler, JobResult, JobTracker
from .node import MAP_SLOT, REDUCE_SLOT, LocalFile, NodeError, TaskNode
from .runner import PlainHadoopDriver, WindowExecution, window_filtered_job
from .shuffle import group_sorted, partition_pairs, run_reduce_partition, sort_pairs
from .simclock import EventQueue, SimClock
from .task import MapExecution, ReduceExecution, execute_map, execute_reduce
from .timeline import TaskInterval, Timeline, attach_timeline
from .types import GIGABYTE, MEGABYTE, KeyValue, Record, records_size, records_span

__all__ = [
    "BatchCatalog",
    "BatchFile",
    "Block",
    "Cluster",
    "ClusterConfig",
    "CostModel",
    "Counters",
    "DEFAULT_CONFIG",
    "EventQueue",
    "FIFOScheduler",
    "FaultInjector",
    "FileSplit",
    "GIGABYTE",
    "HDFSError",
    "HDFSFile",
    "JobResult",
    "JobTracker",
    "KeyValue",
    "LocalFile",
    "MAP_SLOT",
    "MEGABYTE",
    "MapExecution",
    "MapReduceJob",
    "NodeError",
    "PhaseTimes",
    "PlainHadoopDriver",
    "REDUCE_SLOT",
    "Record",
    "ReduceExecution",
    "SimClock",
    "SimulatedHDFS",
    "TaskAttemptsExhaustedError",
    "TaskInterval",
    "TaskNode",
    "Timeline",
    "WindowExecution",
    "default_partitioner",
    "execute_map",
    "execute_reduce",
    "group_sorted",
    "partition_pairs",
    "records_size",
    "records_span",
    "run_reduce_partition",
    "small_test_config",
    "sort_pairs",
    "stable_hash",
    "attach_timeline",
    "window_filtered_job",
]
