"""The master-side job tracker: split planning, scheduling, execution.

This is the plain-Hadoop execution path: every job reads its full input
from HDFS, shuffles every map output pair, and reduces every group. The
Redoop runtime (:mod:`repro.core.runtime`) replaces parts of this
pipeline with cache-aware equivalents but reuses the same slot
simulation, cost model, and logical task execution.

Timing model
------------
Map tasks are list-scheduled onto map slots in split order; each task
starts at ``max(job start, earliest slot free)`` on its chosen node.
Reducers begin copying map output as soon as the first mapper finishes
(Hadoop's early-shuffle), so a partition's shuffle completes at
``max(last map finish, first map finish + transfer time)``. Reduce
tasks then queue on reduce slots. The job finishes when the last reduce
task does. Phase spans are recorded the way the paper measures them
(Sec. 6.2 "Time distribution").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.exec import ExecBackend, SerialBackend, WorkerFaultError
from repro.trace import CAT_JOB, CAT_PHASE, CAT_RUN, CAT_TASK, Span, Tracer

from .cluster import Cluster
from .counters import Counters, PhaseTimes
from .faults import FaultInjector, TaskAttemptsExhaustedError
from .hdfs import FileSplit
from .job import MapReduceJob
from .node import MAP_SLOT, REDUCE_SLOT, SlotKind, TaskNode
from .task import MapExecution, ReduceExecution, execute_map, execute_reduce
from .timeline import SchedulingDecision, SchedulingTrace
from .types import KeyValue, Record

__all__ = ["FIFOScheduler", "JobResult", "JobTracker"]


class FIFOScheduler:
    """Hadoop's default scheduler: earliest free slot, locality on ties.

    Among live nodes, the node whose next ``kind`` slot frees earliest
    wins; when several free at the same instant, data-local nodes are
    preferred, then the lowest node id (for determinism).

    Like the cache-aware scheduler, it can record every placement into
    a :class:`~repro.hadoop.timeline.SchedulingTrace` so baseline runs
    expose the same decision log as Redoop runs.
    """

    def __init__(self, *, trace: Optional[SchedulingTrace] = None) -> None:
        self.trace = trace

    def choose_node(
        self,
        cluster: Cluster,
        kind: SlotKind,
        now: float,
        *,
        preferred: Set[int] = frozenset(),
        task: str = "",
    ) -> TaskNode:
        live = cluster.live_nodes()
        if not live:
            raise RuntimeError("no live nodes to schedule on")

        def rank(node: TaskNode) -> Tuple[float, int, int]:
            est_start = max(now, node.earliest_slot_time(kind))
            local = 0 if node.node_id in preferred else 1
            return (est_start, local, node.node_id)

        node = min(live, key=rank)
        if self.trace is not None:
            self.trace.record(
                SchedulingDecision(
                    event="select",
                    kind=kind,
                    task=task,
                    node_id=node.node_id,
                    load=node.load_at(now),
                    time=now,
                )
            )
        return node


@dataclass(slots=True)
class JobResult:
    """Everything a caller needs to know about a finished job."""

    job_name: str
    start_time: float
    finish_time: float
    phase_times: PhaseTimes
    #: Reduce output per partition index.
    outputs: Dict[int, List[KeyValue]]
    counters: Counters
    #: Node each reduce partition ran on (Redoop uses this for cache locality).
    reduce_nodes: Dict[int, int] = field(default_factory=dict)

    @property
    def span(self) -> float:
        """End-to-end (virtual) response time of the job."""
        return self.finish_time - self.start_time

    def merged_output(self) -> List[KeyValue]:
        """All output pairs across partitions, in partition order."""
        merged: List[KeyValue] = []
        for partition in sorted(self.outputs):
            merged.extend(self.outputs[partition])
        return merged


class JobTracker:
    """Runs complete MapReduce jobs on a cluster, FIFO by default."""

    def __init__(
        self,
        cluster: Cluster,
        *,
        scheduler: Optional[FIFOScheduler] = None,
        fault_injector: Optional[FaultInjector] = None,
        tracer: Optional[Tracer] = None,
        backend: Optional[ExecBackend] = None,
    ) -> None:
        self.cluster = cluster
        self.scheduler = scheduler or FIFOScheduler()
        self.faults = fault_injector
        #: Execution backend for task user-code. Task *bodies* run
        #: through it (possibly in parallel, see docs/parallelism.md);
        #: the scheduling loop below stays sequential and owns virtual
        #: time, so results and spans are backend-independent.
        self.backend = backend if backend is not None else SerialBackend()
        #: Span spine for the baseline path; jobs, phases, and tasks all
        #: land here so plain-Hadoop runs export the same trace shape as
        #: Redoop runs (the ``job`` category replaces ``recurrence``).
        self.tracer = tracer if tracer is not None else Tracer()
        if getattr(cluster, "tracer", None) is None:
            cluster.tracer = self.tracer
        self._run_span = self.tracer.begin(
            "hadoop-run", CAT_RUN, cluster.clock.now
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run_job(
        self,
        job: MapReduceJob,
        input_paths: Sequence[str],
        *,
        start: Optional[float] = None,
        output_path: Optional[str] = None,
        trace_attrs: Optional[Mapping[str, Any]] = None,
    ) -> JobResult:
        """Execute ``job`` over ``input_paths`` and advance the clock.

        Parameters
        ----------
        job:
            The job specification.
        input_paths:
            HDFS paths the job reads; missing paths raise ``HDFSError``.
        start:
            Earliest virtual time the job may begin (defaults to now).
        output_path:
            When given, the merged reduce output is materialised as an
            HDFS file at this path (write cost is already charged inside
            the reduce tasks).
        trace_attrs:
            Extra attributes for the job's trace span. A ``"due"`` key
            (the window's deadline, for recurring drivers) anchors the
            span's start so response time reads off the span directly;
            a ``"window"`` key labels it for per-window reports.
        """
        cluster = self.cluster
        counters = Counters()
        t_submit = max(cluster.clock.now, start if start is not None else 0.0)
        t0 = t_submit + cluster.config.job_overhead

        attrs = dict(trace_attrs or {})
        due = float(attrs.pop("due", t_submit))
        job_span = self.tracer.begin(
            job.name, CAT_JOB, min(due, t_submit), parent=self._run_span,
            due=due, **attrs,
        )
        map_span = self.tracer.begin("map", CAT_PHASE, t0, parent=job_span)
        shuffle_span = self.tracer.begin(
            "shuffle", CAT_PHASE, t0, parent=job_span
        )
        reduce_span = self.tracer.begin(
            "reduce", CAT_PHASE, t0, parent=job_span
        )

        splits = self._plan_splits(input_paths)
        map_execs, map_finishes = self._run_map_phase(
            job, splits, t0, counters, map_span
        )
        maps_done = max(map_finishes, default=t0)
        first_map_done = min(map_finishes, default=t0)

        outputs, reduce_nodes, shuffle_all_done, finish = self._run_reduce_phase(
            job,
            map_execs,
            first_map_done,
            maps_done,
            counters,
            shuffle_span,
            reduce_span,
        )

        finish = max(finish, maps_done)
        cluster.clock.advance_to(finish)
        phases = PhaseTimes(
            map=maps_done - t0,
            shuffle=max(0.0, shuffle_all_done - first_map_done),
            reduce=max(0.0, finish - shuffle_all_done),
        )

        if output_path is not None:
            self._write_output(job, output_path, outputs, finish)

        counters.increment("job.runs")
        self.tracer.end(map_span, max(maps_done, t0))
        shuffle_span.start = min(first_map_done, shuffle_all_done)
        self.tracer.end(shuffle_span, shuffle_all_done)
        reduce_span.start = min(shuffle_all_done, finish)
        self.tracer.end(reduce_span, finish)
        self.tracer.end(
            job_span,
            finish,
            response_time=finish - due,
            phases={
                "map": phases.map,
                "shuffle": phases.shuffle,
                "reduce": phases.reduce,
            },
            counters=counters.as_dict(),
        )
        self.tracer.extend(self._run_span, finish)
        return JobResult(
            job_name=job.name,
            start_time=t_submit,
            finish_time=finish,
            phase_times=phases,
            outputs=outputs,
            counters=counters,
            reduce_nodes=reduce_nodes,
        )

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------

    def _plan_splits(self, input_paths: Sequence[str]) -> List[FileSplit]:
        splits: List[FileSplit] = []
        for path in input_paths:
            splits.extend(self.cluster.hdfs.splits(path))
        return splits

    def _run_map_phase(
        self,
        job: MapReduceJob,
        splits: Sequence[FileSplit],
        t0: float,
        counters: Counters,
        phase_span: Span,
    ) -> Tuple[List[MapExecution], List[float]]:
        cluster = self.cluster
        cost = cluster.cost_model
        finishes: List[float] = []
        nodes_used: List[int] = []
        durations: List[float] = []
        # Task bodies first (possibly in parallel — results come back in
        # split order), then the sequential list-scheduling pass below
        # charges virtual time exactly as before.
        execs: List[MapExecution] = self._run_backend(
            execute_map,
            [((job, split.records), {"input_bytes": split.size}) for split in splits],
            phase="map",
            counters=counters,
            now=t0,
            task_key=f"{job.name}/exec-map",
        )
        for split, ex in zip(splits, execs):
            node = self.scheduler.choose_node(
                cluster,
                MAP_SLOT,
                t0,
                preferred=set(split.locations),
                task=f"{job.name}/map/{split.path}#{split.split_index}",
            )
            local = node.node_id in split.locations
            duration = cost.map_task_duration(
                ex.input_bytes,
                ex.input_records,
                ex.output_bytes,
                data_local=local,
            )
            duration = self._with_faults(
                f"{job.name}/map/{split.path}#{split.split_index}",
                duration,
                counters,
                at=t0,
                node_id=node.node_id,
            )
            task_finish = node.occupy_slot(MAP_SLOT, t0, duration)
            finishes.append(task_finish)
            self.tracer.span(
                f"map/{split.path}#{split.split_index}",
                CAT_TASK,
                task_finish - duration / node.speed,
                task_finish,
                parent=phase_span,
                node_id=node.node_id,
                slot="map",
                bytes=ex.input_bytes,
                data_local=local,
            )
            nodes_used.append(node.node_id)
            durations.append(duration)
            counters.increment("map.tasks")
            counters.increment("map.input_records", ex.input_records)
            counters.increment("map.input_bytes", ex.input_bytes)
            counters.increment("map.output_bytes", ex.output_bytes)
            if not local:
                counters.increment("map.rack_remote_tasks")
        if cluster.config.speculative_execution and len(finishes) > 1:
            finishes = self._speculate_stragglers(
                finishes, nodes_used, durations, counters, phase_span
            )
        return execs, finishes

    def _speculate_stragglers(
        self,
        finishes: List[float],
        nodes_used: List[int],
        durations: List[float],
        counters: Counters,
        phase_span: Span,
    ) -> List[float]:
        """Launch backup copies of straggler map tasks (Hadoop-style).

        A task projected to finish later than ``speculative_slowness``
        times the phase's fast-quartile finish gets a backup on a
        different node, launched once the straggle is apparent; the
        task completes when either copy does. The quartile (rather than
        the median) keeps the baseline honest even when a degraded node
        swallowed most of the tasks.
        """
        cluster = self.cluster
        ordered = sorted(finishes)
        baseline = ordered[len(ordered) // 4]
        threshold = baseline * cluster.config.speculative_slowness
        adjusted = list(finishes)
        for i, finish in enumerate(finishes):
            if finish <= threshold:
                continue
            candidates = [
                n for n in cluster.live_nodes() if n.node_id != nodes_used[i]
            ]
            if not candidates:
                continue
            backup_node = min(
                candidates,
                key=lambda n: (n.earliest_slot_time(MAP_SLOT), n.node_id),
            )
            backup_finish = backup_node.occupy_slot(
                MAP_SLOT, baseline, durations[i]
            )
            self.tracer.span(
                f"map-backup#{i}",
                CAT_TASK,
                backup_finish - durations[i] / backup_node.speed,
                backup_finish,
                parent=phase_span,
                node_id=backup_node.node_id,
                slot="map",
                speculative=True,
            )
            adjusted[i] = min(finish, backup_finish)
            counters.increment("map.speculative_tasks")
        return adjusted

    def _run_reduce_phase(
        self,
        job: MapReduceJob,
        map_execs: Sequence[MapExecution],
        first_map_done: float,
        maps_done: float,
        counters: Counters,
        shuffle_span: Span,
        reduce_span: Span,
    ) -> Tuple[Dict[int, List[KeyValue]], Dict[int, int], float, float]:
        cluster = self.cluster
        cost = cluster.cost_model
        outputs: Dict[int, List[KeyValue]] = {}
        reduce_nodes: Dict[int, int] = {}
        shuffle_all_done = maps_done
        finish = maps_done

        by_partition: Dict[int, List[KeyValue]] = {}
        for ex in map_execs:
            for partition, pairs in ex.partitioned.items():
                by_partition.setdefault(partition, []).extend(pairs)

        # Reduce bodies run through the backend in partition order; the
        # scheduling pass below then charges each partition's virtual
        # shuffle + reduce time sequentially, exactly as before.
        partitions = sorted(by_partition)
        rexes: Dict[int, ReduceExecution] = dict(
            zip(
                partitions,
                self._run_backend(
                    execute_reduce,
                    [((job, p, by_partition[p]), {}) for p in partitions],
                    phase="reduce",
                    counters=counters,
                    now=maps_done,
                    task_key=f"{job.name}/exec-reduce",
                ),
            )
        )
        for partition in partitions:
            pairs = by_partition[partition]
            fetch_bytes = len(pairs) * job.intermediate_pair_size
            shuffle_done = max(
                maps_done,
                first_map_done + cost.shuffle_fetch_duration(fetch_bytes),
            )
            shuffle_all_done = max(shuffle_all_done, shuffle_done)

            rex = rexes[partition]
            duration = cost.reduce_task_duration(
                shuffled_bytes=fetch_bytes,
                shuffled_records=rex.input_pairs,
                cached_bytes=0.0,
                cached_records=0,
                output_bytes=rex.output_bytes,
            )
            node = self.scheduler.choose_node(
                cluster,
                REDUCE_SLOT,
                shuffle_done,
                task=f"{job.name}/reduce/{partition}",
            )
            duration = self._with_faults(
                f"{job.name}/reduce/{partition}",
                duration,
                counters,
                at=shuffle_done,
                node_id=node.node_id,
            )
            task_finish = node.occupy_slot(REDUCE_SLOT, shuffle_done, duration)
            finish = max(finish, task_finish)
            if shuffle_done > first_map_done:
                self.tracer.span(
                    f"shuffle/p{partition}",
                    CAT_TASK,
                    first_map_done,
                    shuffle_done,
                    parent=shuffle_span,
                    node_id=node.node_id,
                    slot="net",
                    bytes=fetch_bytes,
                )
            self.tracer.span(
                f"reduce/p{partition}",
                CAT_TASK,
                task_finish - duration / node.speed,
                task_finish,
                parent=reduce_span,
                node_id=node.node_id,
                slot="reduce",
                bytes=fetch_bytes,
            )
            outputs[partition] = rex.output
            reduce_nodes[partition] = node.node_id
            counters.increment("reduce.tasks")
            counters.increment("shuffle.bytes", fetch_bytes)
            counters.increment("reduce.output_bytes", rex.output_bytes)
        return outputs, reduce_nodes, shuffle_all_done, finish

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _run_backend(
        self,
        fn,
        calls,
        *,
        phase: str,
        counters: Counters,
        now: float,
        task_key: str,
    ):
        """Run a task batch through the execution backend.

        A terminal worker-pool failure maps onto attempt exhaustion:
        plain Hadoop has no degraded-window notion, so — exactly like
        a simulated exhausted task — it fails the whole job.
        """
        try:
            return self.backend.run_tasks(
                fn,
                calls,
                phase=phase,
                counters=counters,
                tracer=self.tracer,
                now=now,
            )
        except WorkerFaultError as exc:
            counters.increment("task.exhausted")
            self.tracer.instant(
                "task.exhausted",
                "fault",
                time=now,
                node_id=None,
                task=task_key,
                attempts=exc.attempts,
            )
            raise TaskAttemptsExhaustedError(task_key, exc.attempts) from exc

    def _with_faults(
        self,
        task_key: str,
        duration: float,
        counters: Counters,
        *,
        at: Optional[float] = None,
        node_id: Optional[int] = None,
    ) -> float:
        """Inflate ``duration`` by any injected failed attempts.

        Attempt exhaustion propagates: plain Hadoop has no degraded-
        window notion, so an exhausted task fails the whole job (the
        Redoop runtime, by contrast, catches the typed error and
        degrades only the affected window).
        """
        if self.faults is None:
            return duration
        try:
            effective, retries = self.faults.attempt_duration(task_key, duration)
        except TaskAttemptsExhaustedError as exc:
            exc.node_id = node_id
            counters.increment("task.exhausted")
            self.tracer.instant(
                "task.exhausted",
                "fault",
                time=at,
                node_id=node_id,
                task=task_key,
                attempts=exc.attempts,
            )
            raise
        if retries:
            counters.increment("task.retries", retries)
            self.tracer.instant(
                "task.retry",
                "fault",
                time=at,
                node_id=node_id,
                task=task_key,
                retries=retries,
            )
        return effective

    def _write_output(
        self,
        job: MapReduceJob,
        output_path: str,
        outputs: Dict[int, List[KeyValue]],
        finish: float,
    ) -> None:
        records = [
            Record(ts=finish, value=pair, size=job.output_pair_size)
            for partition in sorted(outputs)
            for pair in outputs[partition]
        ]
        self.cluster.hdfs.create(output_path, records, created_at=finish)
