"""Deterministic fault injection for tasks, nodes, and caches.

The paper evaluates fault tolerance (Sec. 6.4) by injecting *cache
removals* at the start of each window and relies on Hadoop's standard
task-retry machinery for task failures. This module provides both,
driven by a seeded RNG so experiments are exactly repeatable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

__all__ = ["FaultInjector"]


@dataclass
class FaultInjector:
    """Injects failures with reproducible randomness.

    Parameters
    ----------
    task_failure_prob:
        Probability that any given task *attempt* fails. A failed
        attempt wastes ``failed_attempt_fraction`` of the task's
        duration before the retry starts (Hadoop restarts failed tasks,
        paper Sec. 5, item 1).
    max_attempts:
        Attempts before the job would be declared failed (Hadoop's
        ``mapred.map.max.attempts``, default 4).
    failed_attempt_fraction:
        Fraction of the task duration elapsed when the failure strikes.
    cache_loss_fraction:
        Fraction of cache entries destroyed by :meth:`pick_cache_victims`
        (the Fig. 9 experiment removes caches at each window start).
    seed:
        RNG seed.
    """

    task_failure_prob: float = 0.0
    max_attempts: int = 4
    failed_attempt_fraction: float = 0.5
    cache_loss_fraction: float = 0.0
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.task_failure_prob < 1.0:
            raise ValueError("task_failure_prob must be in [0, 1)")
        if not 0.0 <= self.cache_loss_fraction <= 1.0:
            raise ValueError("cache_loss_fraction must be in [0, 1]")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if not 0.0 < self.failed_attempt_fraction <= 1.0:
            raise ValueError("failed_attempt_fraction must be in (0, 1]")
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------
    # task failures
    # ------------------------------------------------------------------

    def attempt_duration(
        self, task_key: str, duration: float
    ) -> Tuple[float, int]:
        """Total time spent on ``task_key`` including failed attempts.

        Returns ``(effective_duration, retries)``. Raises
        ``RuntimeError`` if the task exhausts ``max_attempts`` — in real
        Hadoop that fails the whole job, which no experiment here should
        hit with sane probabilities.
        """
        if self.task_failure_prob == 0.0:
            return duration, 0
        total = 0.0
        for attempt in range(self.max_attempts):
            if self._rng.random() >= self.task_failure_prob:
                return total + duration, attempt
            total += duration * self.failed_attempt_fraction
        raise RuntimeError(
            f"task {task_key!r} failed {self.max_attempts} attempts"
        )

    # ------------------------------------------------------------------
    # cache failures
    # ------------------------------------------------------------------

    def pick_cache_victims(self, cache_ids: Sequence[str]) -> List[str]:
        """Choose which cache entries to destroy this round.

        Selects ``cache_loss_fraction`` of ``cache_ids`` (at least one
        when the fraction is non-zero and any caches exist), sampling
        without replacement.
        """
        if self.cache_loss_fraction == 0.0 or not cache_ids:
            return []
        k = max(1, round(len(cache_ids) * self.cache_loss_fraction))
        k = min(k, len(cache_ids))
        return sorted(self._rng.sample(list(cache_ids), k))

    def pick_node_victim(self, node_ids: Sequence[int]) -> int:
        """Choose a node to kill (for slave-failure experiments)."""
        if not node_ids:
            raise ValueError("no nodes to choose a victim from")
        return self._rng.choice(list(node_ids))
