"""Deterministic fault injection for tasks, nodes, and caches.

The paper evaluates fault tolerance (Sec. 6.4) by injecting *cache
removals* at the start of each window and relies on Hadoop's standard
task-retry machinery for task failures. This module provides both,
driven by a seeded RNG so experiments are exactly repeatable, plus the
knobs the chaos harness (:mod:`repro.chaos`) composes into mid-flight
fault schedules: forced attempt exhaustion (:meth:`FaultInjector.doom`)
and cache *corruption* victims (distinct from cache loss — the file
survives but its content no longer matches its checksum).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["FaultInjector", "TaskAttemptsExhaustedError"]


class TaskAttemptsExhaustedError(RuntimeError):
    """A task failed every one of its allowed attempts.

    In real Hadoop this fails the whole job; the Redoop runtime instead
    catches it, marks the window *degraded* (its caches are rolled back,
    its output is empty) and proceeds with subsequent recurrences — see
    ``docs/fault-tolerance.md``. Subclasses :class:`RuntimeError` so
    pre-existing callers that guarded against the old bare error keep
    working.
    """

    def __init__(self, task_key: str, attempts: int, node_id: Optional[int] = None):
        super().__init__(
            f"task {task_key!r} failed {attempts} attempts"
        )
        self.task_key = task_key
        self.attempts = attempts
        #: Filled in by the runtime when it knows the placement.
        self.node_id = node_id


@dataclass
class FaultInjector:
    """Injects failures with reproducible randomness.

    Parameters
    ----------
    task_failure_prob:
        Probability in ``[0, 1]`` that any given task *attempt* fails.
        A failed attempt wastes ``failed_attempt_fraction`` of the
        task's duration before the retry starts (Hadoop restarts failed
        tasks, paper Sec. 5, item 1). A probability of exactly 1
        guarantees attempt exhaustion — useful for chaos schedules.
    max_attempts:
        Attempts before the task is declared failed (Hadoop's
        ``mapred.map.max.attempts``, default 4).
    failed_attempt_fraction:
        Fraction of the task duration elapsed when the failure strikes.
    cache_loss_fraction:
        Fraction of cache entries destroyed by :meth:`pick_cache_victims`
        (the Fig. 9 experiment removes caches at each window start).
    cache_corruption_fraction:
        Fraction of cache entries silently corrupted by
        :meth:`pick_corruption_victims` (content tampered in place; the
        registry detects the mismatch on read).
    seed:
        RNG seed.
    """

    task_failure_prob: float = 0.0
    max_attempts: int = 4
    failed_attempt_fraction: float = 0.5
    cache_loss_fraction: float = 0.0
    cache_corruption_fraction: float = 0.0
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)
    _doomed: Set[str] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.task_failure_prob <= 1.0:
            raise ValueError("task_failure_prob must be in [0, 1]")
        if not 0.0 <= self.cache_loss_fraction <= 1.0:
            raise ValueError("cache_loss_fraction must be in [0, 1]")
        if not 0.0 <= self.cache_corruption_fraction <= 1.0:
            raise ValueError("cache_corruption_fraction must be in [0, 1]")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if not 0.0 < self.failed_attempt_fraction <= 1.0:
            raise ValueError("failed_attempt_fraction must be in (0, 1]")
        self._rng = random.Random(self.seed)
        self._doomed = set()

    # ------------------------------------------------------------------
    # pickling — chaos schedules must survive repro.service checkpoints,
    # so the RNG's position is serialised explicitly (a version-stable
    # state tuple) instead of relying on the Random object's own pickle.
    # ------------------------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["_rng"] = self._rng.getstate()
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        rng_state = state.pop("_rng")
        self.__dict__.update(state)
        self._rng = random.Random()
        self._rng.setstate(rng_state)

    # ------------------------------------------------------------------
    # task failures
    # ------------------------------------------------------------------

    def doom(self, task_key_substring: str) -> None:
        """Doom the next task whose key contains ``task_key_substring``.

        The doomed task fails all of its attempts regardless of
        ``task_failure_prob`` and raises
        :class:`TaskAttemptsExhaustedError`. The doom is one-shot: the
        first matching task consumes it, so the re-execution in a later
        window succeeds.
        """
        if not task_key_substring:
            raise ValueError("doom needs a non-empty task-key substring")
        self._doomed.add(task_key_substring)

    def doomed(self) -> List[str]:
        """Pending one-shot dooms (monitoring/testing)."""
        return sorted(self._doomed)

    def attempt_duration(
        self, task_key: str, duration: float
    ) -> Tuple[float, int]:
        """Total time spent on ``task_key`` including failed attempts.

        Returns ``(effective_duration, retries)``. Raises
        :class:`TaskAttemptsExhaustedError` if the task exhausts
        ``max_attempts`` — in real Hadoop that fails the whole job; the
        Redoop runtime degrades the window instead (Sec. 5 rollback plus
        graceful degradation).
        """
        for marker in sorted(self._doomed):
            if marker in task_key:
                self._doomed.discard(marker)
                raise TaskAttemptsExhaustedError(task_key, self.max_attempts)
        if self.task_failure_prob == 0.0:
            return duration, 0
        total = 0.0
        for attempt in range(self.max_attempts):
            if self._rng.random() >= self.task_failure_prob:
                return total + duration, attempt
            total += duration * self.failed_attempt_fraction
        raise TaskAttemptsExhaustedError(task_key, self.max_attempts)

    # ------------------------------------------------------------------
    # cache failures
    # ------------------------------------------------------------------

    def pick_cache_victims(
        self, cache_ids: Sequence[str], *, fraction: Optional[float] = None
    ) -> List[str]:
        """Choose which cache entries to destroy this round.

        Selects ``fraction`` (default: ``cache_loss_fraction``) of
        ``cache_ids`` (at least one when the fraction is non-zero and
        any caches exist), sampling without replacement.
        """
        if fraction is None:
            fraction = self.cache_loss_fraction
        if fraction == 0.0 or not cache_ids:
            return []
        k = max(1, round(len(cache_ids) * fraction))
        k = min(k, len(cache_ids))
        return sorted(self._rng.sample(list(cache_ids), k))

    def pick_corruption_victims(
        self, cache_ids: Sequence[str], *, fraction: Optional[float] = None
    ) -> List[str]:
        """Choose which cache entries to silently corrupt this round."""
        if fraction is None:
            fraction = self.cache_corruption_fraction
        return self.pick_cache_victims(cache_ids, fraction=fraction)

    def pick_node_victim(self, node_ids: Sequence[int]) -> int:
        """Choose a node to kill (for slave-failure experiments)."""
        if not node_ids:
            raise ValueError("no nodes to choose a victim from")
        return self._rng.choice(list(node_ids))
