"""Virtual time for the discrete-event cluster simulation.

The simulator never sleeps: all durations produced by the cost model are
added to a :class:`SimClock`, and ordering between concurrent activities
is resolved with a simple event queue. Keeping the clock an explicit
object (rather than a module global) lets tests run many independent
simulations side by side.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

__all__ = ["SimClock", "EventQueue"]


class SimClock:
    """A monotonically advancing virtual clock measured in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("the clock cannot start before time zero")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move the clock forward by ``delta`` seconds and return the new time.

        Raises
        ------
        ValueError
            If ``delta`` is negative — virtual time never flows backwards.
        """
        if delta < 0:
            raise ValueError(f"cannot advance the clock by {delta!r} seconds")
        self._now += delta
        return self._now

    def advance_to(self, when: float) -> float:
        """Move the clock forward to the absolute time ``when``.

        Advancing to a time in the past is an error; advancing to the
        current time is a no-op, which makes the method safe to call with
        completion times produced by overlapping activities.
        """
        if when < self._now:
            raise ValueError(
                f"cannot rewind the clock from {self._now} to {when}"
            )
        self._now = float(when)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.3f})"


@dataclass(order=True)
class _Event:
    when: float
    seq: int
    payload: Any = field(compare=False)


class EventQueue:
    """A time-ordered queue of events with FIFO tie-breaking.

    Events scheduled for the same instant pop in insertion order, which
    keeps simulations deterministic without relying on payload
    comparability.
    """

    def __init__(self) -> None:
        self._heap: List[_Event] = []
        self._counter = itertools.count()

    def push(self, when: float, payload: Any) -> None:
        """Schedule ``payload`` to fire at virtual time ``when``."""
        if when < 0:
            raise ValueError("events cannot be scheduled before time zero")
        heapq.heappush(self._heap, _Event(when, next(self._counter), payload))

    def pop(self) -> Tuple[float, Any]:
        """Remove and return the ``(when, payload)`` of the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        ev = heapq.heappop(self._heap)
        return ev.when, ev.payload

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` when empty."""
        return self._heap[0].when if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
