"""Shuffle mechanics: partitioning, sorting, and grouping of map output.

These are the *logical* counterparts of Hadoop's shuffle — they move
real key/value pairs so reduce functions see correct groups. The
*temporal* cost of shuffling (network transfer, merge-sort CPU) is
charged separately by the cost model inside the job tracker.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import groupby
from typing import Any, Dict, Iterable, Iterator, List, Sequence, Tuple

from .job import MapReduceJob, ReduceFn
from .types import KeyValue

__all__ = [
    "partition_pairs",
    "sort_pairs",
    "group_sorted",
    "apply_combiner",
    "run_reduce_partition",
]


def _sort_token(key: Any) -> Tuple[str, str]:
    """A total-order token for heterogeneous keys.

    Hadoop sorts serialised bytes; we emulate that with the type name
    plus ``repr``, which is deterministic and totally ordered for any
    mix of key types.
    """
    return (type(key).__name__, repr(key))


def partition_pairs(
    pairs: Iterable[KeyValue], job: MapReduceJob
) -> Dict[int, List[KeyValue]]:
    """Split map output ``pairs`` across the job's reduce partitions."""
    buckets: Dict[int, List[KeyValue]] = defaultdict(list)
    for key, value in pairs:
        buckets[job.partition_of(key)].append((key, value))
    return dict(buckets)


def sort_pairs(pairs: Iterable[KeyValue]) -> List[KeyValue]:
    """Sort pairs by key the way Hadoop's merge-sort would."""
    return sorted(pairs, key=lambda kv: _sort_token(kv[0]))


def group_sorted(
    sorted_pairs: Sequence[KeyValue],
) -> Iterator[Tuple[Any, List[Any]]]:
    """Yield ``(key, values)`` groups from key-sorted pairs."""
    for key, group in groupby(sorted_pairs, key=lambda kv: kv[0]):
        yield key, [v for _, v in group]


def apply_combiner(
    pairs: Iterable[KeyValue], combiner: ReduceFn
) -> List[KeyValue]:
    """Run the map-side combiner over ``pairs`` and return the survivors."""
    combined: List[KeyValue] = []
    for key, values in group_sorted(sort_pairs(list(pairs))):
        combined.extend(combiner(key, values))
    return combined


def run_reduce_partition(
    pairs: Iterable[KeyValue], reducer: ReduceFn
) -> List[KeyValue]:
    """Sort, group, and reduce one partition's worth of pairs."""
    output: List[KeyValue] = []
    for key, values in group_sorted(sort_pairs(list(pairs))):
        output.extend(reducer(key, values))
    return output
