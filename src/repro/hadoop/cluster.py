"""The simulated cluster: one master plus N slave task nodes and HDFS.

This object owns everything with cross-module lifetime: the virtual
clock, the distributed file system, the per-node slot/cache state, and
the shared cost model. Both the plain-Hadoop baseline driver and the
Redoop runtime execute against the same :class:`Cluster` so comparisons
are apples-to-apples.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional

from .config import ClusterConfig, DEFAULT_CONFIG
from .costmodel import CostModel
from .counters import Counters
from .hdfs import SimulatedHDFS
from .node import TaskNode
from .simclock import SimClock

__all__ = ["Cluster"]


class Cluster:
    """A shared-nothing cluster of task nodes with simulated HDFS.

    Parameters
    ----------
    config:
        Static cluster description; defaults to the paper's 30-node setup.
    seed:
        Seed for all stochastic choices (block placement, tie-breaking).
    """

    def __init__(
        self,
        config: ClusterConfig = DEFAULT_CONFIG,
        *,
        seed: int = 0,
        node_speeds: Optional[Dict[int, float]] = None,
    ) -> None:
        """Build the cluster.

        ``node_speeds`` optionally maps node ids to relative execution
        speeds (default 1.0) to model heterogeneous hardware: tasks on
        a 0.5x node take twice as long, which Eq. 4's load term sees
        and routes around.
        """
        self.config = config
        self.rng = random.Random(seed)
        self.clock = SimClock()
        self.hdfs = SimulatedHDFS(config, seed=seed + 1)
        self.cost_model = CostModel(config)
        self.counters = Counters()
        #: Optional span spine; when a runtime attaches one, node
        #: failures/recoveries land on it as fault events.
        self.tracer = None
        speeds = node_speeds or {}
        unknown = set(speeds) - set(range(config.num_nodes))
        if unknown:
            raise ValueError(f"speeds given for unknown nodes: {sorted(unknown)}")
        self._nodes: Dict[int, TaskNode] = {
            node_id: TaskNode(
                node_id,
                map_slots=config.map_slots_per_node,
                reduce_slots=config.reduce_slots_per_node,
                speed=speeds.get(node_id, 1.0),
            )
            for node_id in range(config.num_nodes)
        }

    # ------------------------------------------------------------------
    # node access
    # ------------------------------------------------------------------

    def node(self, node_id: int) -> TaskNode:
        """The node with id ``node_id`` (alive or dead)."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyError(f"no node {node_id} in this cluster") from None

    def nodes(self) -> Iterator[TaskNode]:
        """All nodes in id order, including dead ones."""
        for node_id in sorted(self._nodes):
            yield self._nodes[node_id]

    def live_nodes(self) -> List[TaskNode]:
        """Alive nodes in id order."""
        return [n for n in self.nodes() if n.alive]

    def live_node_ids(self) -> List[int]:
        return [n.node_id for n in self.live_nodes()]

    @property
    def num_live_nodes(self) -> int:
        return len(self.live_nodes())

    # ------------------------------------------------------------------
    # failure control (exercised by repro.hadoop.faults)
    # ------------------------------------------------------------------

    def fail_node(self, node_id: int) -> List[str]:
        """Kill a slave node: its slots, local caches, and HDFS replicas.

        Returns the local-file names lost with the node so cache recovery
        can react. HDFS re-replicates affected blocks immediately.
        """
        node = self.node(node_id)
        lost = node.fail()
        self.hdfs.fail_node(node_id)
        self.counters.increment("cluster.node_failures")
        if self.tracer is not None:
            self.tracer.instant(
                "node.failed",
                "fault",
                time=self.clock.now,
                node_id=node_id,
                lost_files=len(lost),
            )
        return lost

    def recover_node(self, node_id: int) -> None:
        """Bring a dead node back with empty local state."""
        node = self.node(node_id)
        node.recover(self.clock.now)
        self.hdfs.recover_node(node_id)
        if self.tracer is not None:
            self.tracer.instant(
                "node.recovered",
                "fault",
                time=self.clock.now,
                node_id=node_id,
            )

    def set_node_speed(self, node_id: int, speed: float) -> None:
        """Slow down (or restore) a live node mid-simulation.

        Chaos straggler injection: subsequent tasks on the node stretch
        by ``1/speed``. Emits a ``node.slowed`` instant so traces show
        when the degradation started.
        """
        node = self.node(node_id)
        node.set_speed(speed)
        self.counters.increment("cluster.node_slowdowns")
        if self.tracer is not None:
            self.tracer.instant(
                "node.slowed",
                "fault",
                time=self.clock.now,
                node_id=node_id,
                speed=speed,
            )

    # ------------------------------------------------------------------
    # housekeeping
    # ------------------------------------------------------------------

    def reset_slots(self) -> None:
        """Free every slot on every live node at the current clock time."""
        for node in self.live_nodes():
            node.reset_slots(self.clock.now)

    def total_cache_bytes(self) -> int:
        """Bytes of local-file-system data across live nodes."""
        return sum(n.local_bytes for n in self.live_nodes())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(nodes={self.config.num_nodes}, "
            f"live={self.num_live_nodes}, t={self.clock.now:.1f}s)"
        )
