"""Task nodes: slot capacity, local file system, and load accounting.

Each slave node runs a fixed number of concurrent map and reduce tasks
(the paper's workers: 6 map + 2 reduce). The event-driven job tracker
models slot occupancy as per-slot "free at" timestamps; a node's *load*
— the first term of the scheduler objective in Eq. 4 — is the pending
busy time summed over its slots.

The node's local file system is a plain byte-accounted key/value store.
Redoop's reduce-input and reduce-output caches live here, *not* in HDFS,
which is exactly why cache loss on node failure needs special recovery
(paper Sec. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

__all__ = ["LocalFile", "TaskNode", "SlotKind", "NodeError"]


class NodeError(Exception):
    """Raised on invalid node operations (dead node, missing local file)."""


#: Discriminates map slots from reduce slots in scheduling calls.
SlotKind = str
MAP_SLOT: SlotKind = "map"
REDUCE_SLOT: SlotKind = "reduce"


@dataclass(slots=True)
class LocalFile:
    """A file on a task node's local disk (cache data, spills)."""

    name: str
    size: int
    payload: Any = None
    created_at: float = 0.0


class TaskNode:
    """One slave node of the simulated cluster."""

    def __init__(
        self,
        node_id: int,
        *,
        map_slots: int,
        reduce_slots: int,
        speed: float = 1.0,
    ) -> None:
        if map_slots < 1 or reduce_slots < 1:
            raise ValueError("a node needs at least one slot of each kind")
        if speed <= 0:
            raise ValueError("node speed must be positive")
        self.node_id = node_id
        #: Relative execution speed: tasks on a 0.5x node take twice as
        #: long. Models heterogeneous clusters / degraded hardware.
        self.speed = speed
        self.alive = True
        self._map_slot_free: List[float] = [0.0] * map_slots
        self._reduce_slot_free: List[float] = [0.0] * reduce_slots
        self._local_fs: Dict[str, LocalFile] = {}
        #: Optional callback ``(node_id, kind, start, finish)`` invoked on
        #: every task placement (see :mod:`repro.hadoop.timeline`).
        self.slot_observer = None

    # ------------------------------------------------------------------
    # slots
    # ------------------------------------------------------------------

    def _slots(self, kind: SlotKind) -> List[float]:
        if kind == MAP_SLOT:
            return self._map_slot_free
        if kind == REDUCE_SLOT:
            return self._reduce_slot_free
        raise ValueError(f"unknown slot kind: {kind!r}")

    def earliest_slot_time(self, kind: SlotKind) -> float:
        """Earliest virtual time a slot of ``kind`` becomes free."""
        self._ensure_alive()
        return min(self._slots(kind))

    def occupy_slot(self, kind: SlotKind, start: float, duration: float) -> float:
        """Run a task on the earliest-free slot of ``kind``.

        The task begins at ``max(start, slot free time)`` and holds the
        slot for ``duration / speed`` (slow nodes stretch their tasks).
        Returns the task's *finish* time.
        """
        self._ensure_alive()
        if duration < 0:
            raise ValueError("task duration cannot be negative")
        slots = self._slots(kind)
        idx = min(range(len(slots)), key=slots.__getitem__)
        begin = max(start, slots[idx])
        finish = begin + duration / self.speed
        slots[idx] = finish
        if self.slot_observer is not None:
            self.slot_observer(self.node_id, kind, begin, finish)
        return finish

    def set_speed(self, speed: float) -> None:
        """Change the node's relative speed mid-simulation.

        Used by the chaos harness to model stragglers: a node slowed to
        0.25x stretches every subsequent task placed on it. Already
        placed tasks keep their original finish times (the slowdown
        strikes between placements, as real degradation would between
        heartbeats).
        """
        if speed <= 0:
            raise ValueError("node speed must be positive")
        self._ensure_alive()
        self.speed = speed

    def load_at(self, now: float) -> float:
        """Pending busy seconds across all slots at time ``now`` (Eq. 4 term)."""
        self._ensure_alive()
        pending = 0.0
        for free in self._map_slot_free + self._reduce_slot_free:
            pending += max(0.0, free - now)
        return pending

    def reset_slots(self, now: float = 0.0) -> None:
        """Clear slot occupancy (used between independent simulations)."""
        self._map_slot_free = [now] * len(self._map_slot_free)
        self._reduce_slot_free = [now] * len(self._reduce_slot_free)

    # ------------------------------------------------------------------
    # local file system
    # ------------------------------------------------------------------

    def store_local(
        self, name: str, size: int, payload: Any = None, *, created_at: float = 0.0
    ) -> LocalFile:
        """Create or overwrite a local file (caches are rewritable)."""
        self._ensure_alive()
        if size < 0:
            raise ValueError("file size cannot be negative")
        lf = LocalFile(name=name, size=size, payload=payload, created_at=created_at)
        self._local_fs[name] = lf
        return lf

    def read_local(self, name: str) -> LocalFile:
        self._ensure_alive()
        try:
            return self._local_fs[name]
        except KeyError:
            raise NodeError(
                f"node {self.node_id} has no local file {name!r}"
            ) from None

    def has_local(self, name: str) -> bool:
        return self.alive and name in self._local_fs

    def delete_local(self, name: str) -> None:
        self._ensure_alive()
        if name not in self._local_fs:
            raise NodeError(f"node {self.node_id} has no local file {name!r}")
        del self._local_fs[name]

    def local_files(self) -> List[str]:
        return sorted(self._local_fs)

    @property
    def local_bytes(self) -> int:
        """Total bytes on the node's local file system."""
        return sum(f.size for f in self._local_fs.values())

    # ------------------------------------------------------------------
    # failure
    # ------------------------------------------------------------------

    def fail(self) -> List[str]:
        """Kill the node; its local files (caches!) are lost.

        Returns the names of the local files that were destroyed, so the
        recovery machinery can roll back cache metadata.
        """
        if not self.alive:
            raise NodeError(f"node {self.node_id} is already dead")
        lost = sorted(self._local_fs)
        self._local_fs.clear()
        self.alive = False
        return lost

    def recover(self, now: float = 0.0) -> None:
        """Restart the node with empty local state and free slots."""
        if self.alive:
            raise NodeError(f"node {self.node_id} is already alive")
        self.alive = True
        self.reset_slots(now)

    def _ensure_alive(self) -> None:
        if not self.alive:
            raise NodeError(f"node {self.node_id} is dead")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"TaskNode(id={self.node_id}, {state}, files={len(self._local_fs)})"
