"""Job counters and per-phase timing, mirroring Hadoop's counter system.

The paper's Figures 6(b,d,f) and 7(b,d,f) report the *time distribution*
of jobs across the shuffle and reduce phases; :class:`PhaseTimes`
accumulates exactly those quantities, while :class:`Counters` tracks the
byte- and record-level work the cost model charges for.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Tuple

__all__ = ["Counters", "PhaseTimes"]


class Counters:
    """A named bag of monotonically increasing numeric counters.

    Counter names follow Hadoop's dotted convention, e.g.
    ``hdfs.bytes_read`` or ``shuffle.bytes``. Unknown counters read as
    zero, so callers never need to pre-register names.
    """

    def __init__(self) -> None:
        self._values: Dict[str, float] = defaultdict(float)

    def increment(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` (which must be non-negative) to counter ``name``."""
        if amount < 0:
            raise ValueError(f"counter {name!r} cannot be decremented")
        self._values[name] += amount

    def get(self, name: str) -> float:
        """Current value of ``name`` (zero if never incremented)."""
        return self._values.get(name, 0.0)

    def merge(self, other: "Counters") -> None:
        """Fold every counter from ``other`` into this bag."""
        for name, value in other._values.items():
            self._values[name] += value

    def as_dict(self) -> Dict[str, float]:
        """A plain-dict snapshot, suitable for reporting."""
        return dict(self._values)

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self._values.items()))

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:g}" for k, v in self)
        return f"Counters({inner})"


@dataclass(slots=True)
class PhaseTimes:
    """Wall-clock (virtual) seconds attributed to each phase of a job.

    ``map`` is the busy time of the map phase (maps overlap, so this is
    the phase's *span*, not the sum of task durations). ``shuffle`` is
    measured the way the paper does: from the first mapper finishing
    (reducers begin copying immediately) until reducers start sorting.
    ``reduce`` covers sort + group + the accumulated reduce calls.
    """

    map: float = 0.0
    shuffle: float = 0.0
    reduce: float = 0.0

    @property
    def total(self) -> float:
        """Sum over all phases; equals job span when phases don't overlap."""
        return self.map + self.shuffle + self.reduce

    def add(self, other: "PhaseTimes") -> None:
        """Accumulate ``other`` into this instance (used across windows)."""
        self.map += other.map
        self.shuffle += other.shuffle
        self.reduce += other.reduce

    def scaled(self, factor: float) -> "PhaseTimes":
        """Return a copy with every phase multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("phase times cannot be scaled negatively")
        return PhaseTimes(
            map=self.map * factor,
            shuffle=self.shuffle * factor,
            reduce=self.reduce * factor,
        )

    def as_dict(self) -> Mapping[str, float]:
        return {"map": self.map, "shuffle": self.shuffle, "reduce": self.reduce}
