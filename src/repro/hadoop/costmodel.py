"""The I/O-dominant task cost model.

The paper justifies its scheduling objective (Eq. 4) by citing SOPA's
observation that I/O cost dominates MapReduce task cost. This module
turns byte and record counts into virtual seconds:

* reading a local block streams at disk bandwidth;
* reading a remote block is bounded by both disk and network bandwidth;
* map output is spilled to local disk and later served to reducers over
  the network;
* the reduce phase pays a merge-sort cost of ``O(n log n)`` comparisons
  plus per-record reduce CPU and output write-back to HDFS.

All methods are pure functions of their arguments so the model can be
unit-tested and swapped out wholesale in experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .config import ClusterConfig

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Computes virtual-time durations for simulated task work."""

    config: ClusterConfig

    # ------------------------------------------------------------------
    # primitive costs
    # ------------------------------------------------------------------

    def local_read_time(self, nbytes: float) -> float:
        """Stream ``nbytes`` from the node's local disk."""
        return nbytes / self.config.disk_bandwidth

    def remote_read_time(self, nbytes: float) -> float:
        """Stream ``nbytes`` from another node (network + remote disk)."""
        effective = min(self.config.disk_bandwidth, self.config.network_bandwidth)
        return nbytes / effective

    def write_time(self, nbytes: float) -> float:
        """Write ``nbytes`` to local disk."""
        return nbytes / self.config.disk_bandwidth

    def hdfs_write_time(self, nbytes: float) -> float:
        """Write ``nbytes`` to HDFS: a local write plus pipeline replication.

        The replication pipeline overlaps with the local write, so the
        charge is the local write plus one network hop for the slowest
        downstream replica.
        """
        pipeline = 0.0
        if self.config.replication > 1:
            pipeline = nbytes / self.config.network_bandwidth
        return self.write_time(nbytes) + pipeline

    def transfer_time(self, nbytes: float) -> float:
        """Move ``nbytes`` across the network between two nodes."""
        return nbytes / self.config.network_bandwidth

    def sort_time(self, num_records: int) -> float:
        """Merge-sort ``num_records`` intermediate records."""
        if num_records <= 1:
            return 0.0
        return self.config.sort_cpu_coeff * num_records * math.log2(num_records)

    def map_compute_time(self, num_records: int) -> float:
        return self.config.map_cpu_per_record * num_records

    def reduce_compute_time(self, num_records: int) -> float:
        return self.config.reduce_cpu_per_record * num_records

    # ------------------------------------------------------------------
    # composite task durations
    # ------------------------------------------------------------------

    def map_task_duration(
        self,
        input_bytes: float,
        input_records: int,
        output_bytes: float,
        *,
        data_local: bool,
    ) -> float:
        """Duration of one map task.

        Covers reading the split (locally or remotely), running the map
        function, and spilling the map output to local disk for the
        shuffle to serve later.
        """
        read = (
            self.local_read_time(input_bytes)
            if data_local
            else self.remote_read_time(input_bytes)
        )
        spill = self.write_time(output_bytes * self.config.spill_factor)
        return (
            self.config.task_overhead
            + read
            + self.map_compute_time(input_records)
            + spill
        )

    def shuffle_fetch_duration(self, fetch_bytes: float) -> float:
        """Time for one reducer to copy its share of map output.

        Fetches from co-located mappers would be local reads, but the
        paper's analysis (and ours) treats shuffle as a network transfer
        because with tens of nodes the local fraction is negligible.
        """
        return self.transfer_time(fetch_bytes)

    def reduce_task_duration(
        self,
        shuffled_bytes: float,
        shuffled_records: int,
        cached_bytes: float,
        cached_records: int,
        output_bytes: float,
        *,
        cache_local: bool = True,
    ) -> float:
        """Duration of the sort+reduce portion of one reduce task.

        ``shuffled_*`` describes freshly shuffled map output; ``cached_*``
        describes reduce-input cache read back from a local (or, on a
        cache miss in placement, remote) file system. Cached records skip
        the shuffle but still pass through the reduce function; they are
        already sorted, so only the *new* records pay the sort cost and a
        linear merge combines the two runs.
        """
        cache_read = (
            self.local_read_time(cached_bytes)
            if cache_local
            else self.remote_read_time(cached_bytes)
        )
        merge = self.config.sort_cpu_coeff * (shuffled_records + cached_records)
        out = self.hdfs_write_time(output_bytes)
        return (
            self.config.task_overhead
            + cache_read
            + self.sort_time(shuffled_records)
            + merge
            + self.reduce_compute_time(shuffled_records + cached_records)
            + out
        )

    def cache_write_time(self, nbytes: float) -> float:
        """Persist ``nbytes`` of cache to the node's local file system."""
        return self.write_time(nbytes)

    # ------------------------------------------------------------------
    # Eq. 4 ingredient: I/O cost of placing ``task`` on a node
    # ------------------------------------------------------------------

    def task_io_cost(
        self, input_bytes: float, *, bytes_local: float = 0.0
    ) -> float:
        """SOPA-style I/O cost of a task given how much input is node-local.

        ``bytes_local`` of the input stream from local disk; the rest
        crosses the network. Used as ``C_task,i`` in the scheduler's
        ``Load_i + C_task,i`` objective.
        """
        if bytes_local > input_bytes:
            raise ValueError("local bytes cannot exceed total input bytes")
        remote = input_bytes - bytes_local
        return self.local_read_time(bytes_local) + self.remote_read_time(remote)
