"""The batch-file catalog: which HDFS files cover which time ranges.

The paper's data model (Sec. 2.1): between two query recurrences the
system receives multiple batch files ``f1..fn`` whose *time ranges do
not overlap and arrive in order*; records inside a file carry their own
timestamps but are not necessarily sorted. The catalog tracks the
``[t_start, t_end)`` range of every batch per data source so that both
the plain-Hadoop driver and Redoop's data packer can find the files
relevant to a window without scanning record contents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["BatchFile", "BatchCatalog"]


@dataclass(frozen=True, slots=True)
class BatchFile:
    """One uploaded batch: an HDFS path plus its covered time range."""

    path: str
    source: str
    t_start: float
    t_end: float

    def __post_init__(self) -> None:
        if self.t_end <= self.t_start:
            raise ValueError(
                f"batch {self.path!r} has an empty or inverted range "
                f"[{self.t_start}, {self.t_end})"
            )

    def overlaps(self, start: float, end: float) -> bool:
        """Does this batch intersect the half-open window ``[start, end)``?"""
        return self.t_start < end and start < self.t_end


class BatchCatalog:
    """Per-source, time-ordered registry of batch files."""

    def __init__(self) -> None:
        self._by_source: Dict[str, List[BatchFile]] = {}

    def add(self, batch: BatchFile) -> None:
        """Register a batch; ranges within a source must not overlap.

        Raises
        ------
        ValueError
            If the batch overlaps an existing batch of the same source
            or arrives out of order (the paper's model forbids both).
        """
        batches = self._by_source.setdefault(batch.source, [])
        if batches and batch.t_start < batches[-1].t_end:
            raise ValueError(
                f"batch {batch.path!r} starts at {batch.t_start} but source "
                f"{batch.source!r} already covers up to {batches[-1].t_end}"
            )
        batches.append(batch)

    def sources(self) -> List[str]:
        return sorted(self._by_source)

    def batches(self, source: str) -> List[BatchFile]:
        """All batches of ``source`` in time order."""
        return list(self._by_source.get(source, []))

    def files_overlapping(
        self, start: float, end: float, *, source: Optional[str] = None
    ) -> List[BatchFile]:
        """Batches intersecting ``[start, end)``, optionally per source."""
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        sources = [source] if source is not None else self.sources()
        hits: List[BatchFile] = []
        for src in sources:
            for batch in self._by_source.get(src, []):
                if batch.overlaps(start, end):
                    hits.append(batch)
        return hits

    def covered_until(self, source: str) -> float:
        """Latest time up to which ``source`` has delivered data (0 if none)."""
        batches = self._by_source.get(source, [])
        return batches[-1].t_end if batches else 0.0
