"""Task timeline recording and cluster-utilisation analysis.

The simulator schedules every task through
:meth:`~repro.hadoop.node.TaskNode.occupy_slot`; attaching a
:class:`Timeline` to a cluster records each occupancy as a
``(node, kind, start, finish)`` interval. From the timeline one can
compute per-node busy time, slot utilisation over a horizon, and the
cluster-wide concurrency profile — the observability a real deployment
would get from the JobTracker UI.

:class:`SchedulingTrace` complements the timeline with *decisions*: for
every task the cache-aware scheduler pops from a task list and places,
it records which request was dequeued, at what cache-coverage rank, and
why the chosen node won Eq. 4 (its load and its ``C_task`` I/O cost).
Benchmarks and tests use the trace to assert *why* a node was chosen —
not merely that something ran somewhere.

Since the observability unification, :class:`SchedulingTrace` is a
facade over the span spine (:class:`repro.trace.Tracer`): every
decision is stored as one ``"sched"``-category trace event, so the
decision log and the exported run trace are a single source of truth.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.trace import CAT_SCHED, Tracer

from .cluster import Cluster
from .node import SlotKind

__all__ = [
    "TaskInterval",
    "Timeline",
    "attach_timeline",
    "SchedulingDecision",
    "SchedulingTrace",
]


@dataclass(frozen=True, slots=True)
class TaskInterval:
    """One task's occupancy of one slot."""

    node_id: int
    kind: SlotKind
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


class Timeline:
    """Accumulates task intervals and answers utilisation queries."""

    def __init__(self) -> None:
        self._intervals: List[TaskInterval] = []

    def record(
        self, node_id: int, kind: SlotKind, start: float, finish: float
    ) -> None:
        if finish < start:
            raise ValueError("a task cannot finish before it starts")
        self._intervals.append(TaskInterval(node_id, kind, start, finish))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def intervals(
        self,
        *,
        node_id: Optional[int] = None,
        kind: Optional[SlotKind] = None,
    ) -> List[TaskInterval]:
        """Recorded intervals, optionally filtered."""
        return [
            iv
            for iv in self._intervals
            if (node_id is None or iv.node_id == node_id)
            and (kind is None or iv.kind == kind)
        ]

    def busy_time(
        self,
        *,
        node_id: Optional[int] = None,
        kind: Optional[SlotKind] = None,
    ) -> float:
        """Total task-seconds (slot-occupancy, counts parallel work)."""
        return sum(iv.duration for iv in self.intervals(node_id=node_id, kind=kind))

    def span(self) -> Tuple[float, float]:
        """``(earliest start, latest finish)`` over all intervals."""
        if not self._intervals:
            raise ValueError("the timeline is empty")
        return (
            min(iv.start for iv in self._intervals),
            max(iv.finish for iv in self._intervals),
        )

    def utilisation(
        self,
        total_slots: int,
        *,
        kind: Optional[SlotKind] = None,
        horizon: Optional[Tuple[float, float]] = None,
    ) -> float:
        """Fraction of available slot-time spent busy over a horizon."""
        if total_slots < 1:
            raise ValueError("need at least one slot")
        lo, hi = horizon if horizon is not None else self.span()
        if hi <= lo:
            raise ValueError("empty horizon")
        busy = sum(
            max(0.0, min(iv.finish, hi) - max(iv.start, lo))
            for iv in self.intervals(kind=kind)
        )
        return busy / (total_slots * (hi - lo))

    def peak_concurrency(self, *, kind: Optional[SlotKind] = None) -> int:
        """Maximum number of tasks running at once."""
        events: List[Tuple[float, int]] = []
        for iv in self.intervals(kind=kind):
            events.append((iv.start, 1))
            events.append((iv.finish, -1))
        # Finishes sort before starts at the same instant: half-open
        # intervals never overlap at a shared boundary.
        events.sort(key=lambda e: (e[0], e[1]))
        current = peak = 0
        for _t, delta in events:
            current += delta
            peak = max(peak, current)
        return peak

    def per_node_busy(self) -> Dict[int, float]:
        """Busy seconds per node — the load-balance picture."""
        busy: Dict[int, float] = defaultdict(float)
        for iv in self._intervals:
            busy[iv.node_id] += iv.duration
        return dict(busy)

    def __len__(self) -> int:
        return len(self._intervals)


@dataclass(frozen=True)
class SchedulingDecision:
    """One event in the scheduler's decision log.

    ``event`` is one of:

    * ``"pop"`` — a request left a task list (``rank`` is its cache
      coverage at pop time: 0 fully cached, 1 partial, 2 uncached;
      map pops carry no rank);
    * ``"select"`` — Eq. 4 placed the request (``load``/``c_task``
      explain the winning node's objective value);
    * ``"execute"`` — the runtime ran the popped request on a node;
    * ``"drop"`` — failure recovery removed the request from a list.
    """

    event: str
    kind: SlotKind
    task: str
    #: The request object itself, so tests can assert that the request
    #: executed *is* (identity, not equality) the one popped.
    request: Any = None
    node_id: Optional[int] = None
    load: Optional[float] = None
    c_task: Optional[float] = None
    rank: Optional[int] = None
    time: Optional[float] = None
    queue_depth: Optional[int] = None


class SchedulingTrace:
    """Scheduling-decision view over the span spine.

    Each :meth:`record` call becomes one ``"sched"`` trace event on the
    underlying :class:`~repro.trace.Tracer` (a private one when
    constructed standalone, the runtime's shared spine otherwise), with
    the full :class:`SchedulingDecision` riding in the event's ``data``
    payload. Queries read back from the spine, so there is exactly one
    store: the Chrome-trace export and these assertions cannot drift.
    """

    def __init__(self, spine: Optional[Tracer] = None) -> None:
        self._spine = spine if spine is not None else Tracer()

    @property
    def spine(self) -> Tracer:
        """The tracer this decision log writes to."""
        return self._spine

    def record(self, decision: SchedulingDecision) -> None:
        self._spine.instant(
            f"sched.{decision.event}",
            CAT_SCHED,
            time=decision.time,
            node_id=decision.node_id,
            data=decision,
            task=decision.task,
            kind=str(decision.kind),
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def decisions(
        self,
        *,
        event: Optional[str] = None,
        kind: Optional[SlotKind] = None,
    ) -> List[SchedulingDecision]:
        """Recorded decisions, optionally filtered by event and kind."""
        return [
            d
            for d in (
                e.data for e in self._spine.events(category=CAT_SCHED)
            )
            if isinstance(d, SchedulingDecision)
            and (event is None or d.event == event)
            and (kind is None or d.kind == kind)
        ]

    def pops(self, kind: Optional[SlotKind] = None) -> List[SchedulingDecision]:
        return self.decisions(event="pop", kind=kind)

    def selects(self, kind: Optional[SlotKind] = None) -> List[SchedulingDecision]:
        return self.decisions(event="select", kind=kind)

    def executions(
        self, kind: Optional[SlotKind] = None
    ) -> List[SchedulingDecision]:
        return self.decisions(event="execute", kind=kind)

    def drops(self, kind: Optional[SlotKind] = None) -> List[SchedulingDecision]:
        return self.decisions(event="drop", kind=kind)

    def nodes_chosen(self, kind: Optional[SlotKind] = None) -> Dict[int, int]:
        """Selections per node — the placement-balance picture."""
        chosen: Dict[int, int] = defaultdict(int)
        for d in self.selects(kind):
            if d.node_id is not None:
                chosen[d.node_id] += 1
        return dict(chosen)

    def clear(self) -> None:
        self._spine.clear_events(CAT_SCHED)

    def __len__(self) -> int:
        return len(self._spine.events(category=CAT_SCHED))


def attach_timeline(cluster: Cluster) -> Timeline:
    """Attach a fresh :class:`Timeline` to every node of ``cluster``.

    Returns the timeline; all subsequent task placements on the cluster
    are recorded. Attaching again replaces the previous observer.
    """
    timeline = Timeline()
    for node in cluster.nodes():
        node.slot_observer = timeline.record
    return timeline
