"""Core data types shared across the simulated Hadoop substrate.

The simulator executes real map and reduce functions over real records so
that query outputs can be checked for correctness, while a cost model
(:mod:`repro.hadoop.costmodel`) charges virtual time for the I/O, shuffle,
sort, and compute work those records imply.

A :class:`Record` is the unit of data stored in simulated HDFS files. It
carries an event timestamp (used by window semantics), an arbitrary value
payload, and an explicit on-disk size in bytes so that the cost model can
charge I/O without serialising anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence, Tuple

__all__ = [
    "Record",
    "KeyValue",
    "records_size",
    "records_span",
    "MEGABYTE",
    "GIGABYTE",
]

#: One binary megabyte, the unit most Hadoop knobs are expressed in.
MEGABYTE: int = 1024 * 1024

#: One binary gigabyte.
GIGABYTE: int = 1024 * MEGABYTE

#: A key/value pair as produced by map functions and consumed by reducers.
KeyValue = Tuple[Any, Any]


@dataclass(frozen=True, slots=True)
class Record:
    """A single timestamped record stored in a simulated HDFS file.

    Attributes
    ----------
    ts:
        Event timestamp in seconds. Window membership of a record is
        decided purely by this field; records within a batch file need
        not be sorted by it (matching the paper's data model, Sec. 2.1).
    value:
        Arbitrary payload handed to the user's map function.
    size:
        Serialised size in bytes charged by the cost model. Defaults to
        a typical log-line size.
    """

    ts: float
    value: Any
    size: int = 100

    def in_range(self, start: float, end: float) -> bool:
        """Return ``True`` when ``start <= ts < end`` (half-open range)."""
        return start <= self.ts < end


def records_size(records: Iterable[Record]) -> int:
    """Total serialised size in bytes of ``records``."""
    return sum(r.size for r in records)


def records_span(records: Sequence[Record]) -> Tuple[float, float]:
    """Return the ``(min_ts, max_ts)`` span covered by ``records``.

    Raises
    ------
    ValueError
        If ``records`` is empty — an empty file has no time span.
    """
    if not records:
        raise ValueError("cannot compute the time span of zero records")
    lo = min(r.ts for r in records)
    hi = max(r.ts for r in records)
    return lo, hi


@dataclass(slots=True)
class TaggedOutput:
    """A key/value pair tagged with its source, used by multi-input joins.

    Reducers for a join query receive values from several logical data
    sources under the same key; the ``source`` tag lets the reduce
    function separate the two sides without re-parsing the payload.
    """

    source: str
    value: Any

    def __iter__(self) -> Iterator[Any]:
        # Allow ``source, value = tagged`` unpacking in user reduce code.
        return iter((self.source, self.value))
