"""Cluster and cost-model configuration for the simulated Hadoop substrate.

Defaults mirror the paper's experimental setup (Sec. 6.1): 30 slave nodes
plus one master, each worker running up to 6 map and 2 reduce tasks
concurrently, 64 MB HDFS blocks, replication factor 3, and 1 Gbit
Ethernet. Disk and CPU rates are chosen to make I/O the dominant cost,
matching the SOPA observation the paper relies on for Eq. 4.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from .types import MEGABYTE

__all__ = ["ClusterConfig", "DEFAULT_CONFIG", "small_test_config"]


@dataclass(frozen=True, slots=True)
class ClusterConfig:
    """Static description of a simulated cluster.

    All bandwidths are bytes per (virtual) second; all per-record costs
    are virtual seconds per record. The defaults are deliberately on the
    scale of 2013-era commodity hardware so that simulated job times land
    in the same minutes-per-window regime the paper reports.
    """

    #: Number of slave (task) nodes; the master is separate and runs no tasks.
    num_nodes: int = 30

    #: Concurrent map tasks per node (paper: 6).
    map_slots_per_node: int = 6

    #: Concurrent reduce tasks per node (paper: 2).
    reduce_slots_per_node: int = 2

    #: HDFS block size in bytes (paper/default Hadoop: 64 MB).
    block_size: int = 64 * MEGABYTE

    #: HDFS replication factor (paper: 3).
    replication: int = 3

    #: Effective *per-task-stream* local-disk bandwidth, bytes/s. A
    #: 2013-era spinning disk streams ~100 MB/s, shared by the node's
    #: 6 concurrent map tasks — hence ~16 MB/s per stream.
    disk_bandwidth: float = 16.0 * MEGABYTE

    #: Effective *per-task-stream* network bandwidth, bytes/s. 1 Gbit
    #: Ethernet (~117 MiB/s) shared across a node's concurrent
    #: transfers gives ~12 MB/s per stream.
    network_bandwidth: float = 12.0 * MEGABYTE

    #: CPU cost of running the map function on one record, seconds.
    map_cpu_per_record: float = 2.0e-6

    #: CPU cost of running the reduce function on one record, seconds.
    reduce_cpu_per_record: float = 4.0e-6

    #: Per-comparison coefficient for the merge-sort in the reduce phase.
    #: Sort cost for n records is ``sort_cpu_coeff * n * log2(n)``.
    sort_cpu_coeff: float = 1.5e-7

    #: Fixed startup/teardown overhead charged per task (JVM spin-up etc.).
    task_overhead: float = 0.1

    #: Fixed per-job overhead (job setup, split computation).
    job_overhead: float = 1.0

    #: Fraction of map output written to and re-read from local disk
    #: during the map-side spill/merge (1.0 = every byte spilled once).
    spill_factor: float = 1.0

    #: Number of reduce tasks a job uses by default. The paper keeps the
    #: reducer count fixed across recurrences to preserve cache validity.
    default_num_reducers: int = 60

    #: Hadoop's speculative execution: launch backup copies of straggler
    #: map tasks on other nodes and take whichever finishes first. The
    #: paper turns it off "so to boost performance" (Sec. 6.1) — that is
    #: the default here too.
    speculative_execution: bool = False

    #: A map task is a straggler when its projected finish exceeds this
    #: multiple of the phase's median finish time.
    speculative_slowness: float = 1.5

    #: Task failures a node may accumulate before the scheduler
    #: blacklists it (Hadoop's ``mapred.max.tracker.failures`` idea).
    #: Blacklisted nodes are treated as infinite-cost in Eq. 4.
    blacklist_threshold: int = 3

    #: Virtual seconds a blacklisted node sits out before it is given
    #: another chance (its failure score resets on un-blacklist).
    blacklist_cooldown: float = 300.0

    #: Per-node cache budget in bytes. ``None`` (the default) keeps the
    #: registries unbounded, matching the paper's experiments; setting a
    #: budget turns on admission control and live-entry eviction in
    #: every :class:`~repro.core.cache_registry.LocalCacheRegistry`.
    cache_capacity_bytes: Optional[int] = None

    #: Replacement policy used when a cache write would exceed the
    #: budget: ``"lru"`` or the window-aware ``"lifespan"`` (see
    #: :mod:`repro.core.eviction`).
    cache_eviction_policy: str = "lru"

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("a cluster needs at least one task node")
        if self.map_slots_per_node < 1 or self.reduce_slots_per_node < 1:
            raise ValueError("each node needs at least one map and one reduce slot")
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.replication < 1:
            raise ValueError("replication factor must be at least 1")
        if min(self.disk_bandwidth, self.network_bandwidth) <= 0:
            raise ValueError("bandwidths must be positive")
        if self.default_num_reducers < 1:
            raise ValueError("jobs need at least one reducer")
        if self.blacklist_threshold < 1:
            raise ValueError("blacklist_threshold must be at least 1")
        if self.blacklist_cooldown < 0:
            raise ValueError("blacklist_cooldown cannot be negative")
        if self.cache_capacity_bytes is not None and self.cache_capacity_bytes <= 0:
            raise ValueError("cache_capacity_bytes must be positive when set")
        if self.cache_eviction_policy not in ("lru", "lifespan"):
            raise ValueError(
                "cache_eviction_policy must be 'lru' or 'lifespan', "
                f"got {self.cache_eviction_policy!r}"
            )

    @property
    def total_map_slots(self) -> int:
        """Cluster-wide map-slot capacity."""
        return self.num_nodes * self.map_slots_per_node

    @property
    def total_reduce_slots(self) -> int:
        """Cluster-wide reduce-slot capacity."""
        return self.num_nodes * self.reduce_slots_per_node

    def with_overrides(self, **changes: object) -> "ClusterConfig":
        """Return a copy of this config with ``changes`` applied."""
        return replace(self, **changes)


#: The paper's 30-node cluster.
DEFAULT_CONFIG = ClusterConfig()


def small_test_config(
    num_nodes: int = 4,
    *,
    block_size: int = 4 * MEGABYTE,
    num_reducers: Optional[int] = None,
) -> ClusterConfig:
    """A small, fast configuration suitable for unit tests.

    Parameters
    ----------
    num_nodes:
        Slave-node count (default 4).
    block_size:
        HDFS block size; small so that modest files still split.
    num_reducers:
        Default reducer count; defaults to ``2 * num_nodes`` so reduce
        slots are contended but not starved.
    """
    return ClusterConfig(
        num_nodes=num_nodes,
        block_size=block_size,
        default_num_reducers=num_reducers or 2 * num_nodes,
    )
