"""A simulated Hadoop Distributed File System.

Files hold real :class:`~repro.hadoop.types.Record` objects (so map
functions consume real data) and are carved into fixed-size blocks with
replica placement across the cluster's data nodes (so the scheduler can
reason about data locality and the fault injector about replica loss).

The implementation follows HDFS semantics where they matter to the
paper: immutable write-once files, 64 MB default blocks, rack-unaware
random replica placement, and re-replication when a data node dies.
"""

from __future__ import annotations

import fnmatch
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from .config import ClusterConfig
from .counters import Counters
from .types import Record, records_size

__all__ = ["Block", "HDFSFile", "FileSplit", "SimulatedHDFS", "HDFSError"]


class HDFSError(Exception):
    """Raised for namespace violations (missing paths, duplicate creates)."""


@dataclass(slots=True)
class Block:
    """One replicated block of an HDFS file."""

    block_id: int
    size: int
    replicas: Tuple[int, ...]

    def hosted_on(self, node_id: int) -> bool:
        return node_id in self.replicas


@dataclass(slots=True)
class HDFSFile:
    """An immutable, block-replicated file in the simulated namespace."""

    path: str
    records: Tuple[Record, ...]
    size: int
    blocks: Tuple[Block, ...]
    created_at: float = 0.0

    @property
    def num_records(self) -> int:
        return len(self.records)

    def replica_nodes(self) -> Set[int]:
        """Every node holding at least one replica of any block."""
        nodes: Set[int] = set()
        for block in self.blocks:
            nodes.update(block.replicas)
        return nodes


@dataclass(slots=True)
class FileSplit:
    """The unit of work handed to one map task (one block of one file)."""

    path: str
    split_index: int
    records: Tuple[Record, ...]
    size: int
    locations: Tuple[int, ...]

    @property
    def num_records(self) -> int:
        return len(self.records)


class SimulatedHDFS:
    """The namespace plus block-placement logic of the simulated DFS.

    Parameters
    ----------
    config:
        Cluster configuration providing block size, replication factor,
        and the set of data-node ids (``0 .. num_nodes-1``).
    seed:
        Seed for the private RNG governing replica placement. Fixing it
        makes entire simulations reproducible.
    """

    def __init__(self, config: ClusterConfig, seed: int = 0) -> None:
        self._config = config
        self._rng = random.Random(seed)
        self._files: Dict[str, HDFSFile] = {}
        self._live_nodes: Set[int] = set(range(config.num_nodes))
        self._next_block_id = 0
        self.counters = Counters()

    # ------------------------------------------------------------------
    # namespace operations
    # ------------------------------------------------------------------

    def create(
        self,
        path: str,
        records: Sequence[Record],
        *,
        created_at: float = 0.0,
    ) -> HDFSFile:
        """Write ``records`` as a new immutable file at ``path``.

        Raises
        ------
        HDFSError
            If ``path`` already exists (HDFS files are write-once).
        """
        if path in self._files:
            raise HDFSError(f"path already exists: {path!r}")
        recs = tuple(records)
        size = records_size(recs)
        blocks = self._place_blocks(size)
        hfile = HDFSFile(
            path=path,
            records=recs,
            size=size,
            blocks=blocks,
            created_at=created_at,
        )
        self._files[path] = hfile
        self.counters.increment("hdfs.bytes_written", size)
        self.counters.increment("hdfs.files_created")
        return hfile

    def create_isolated(
        self,
        path: str,
        records: Sequence[Record],
        *,
        created_at: float = 0.0,
    ) -> HDFSFile:
        """Like :meth:`create`, without advancing the placement RNG.

        For bookkeeping side-files (e.g. reuse-store artifacts) written
        *during* a simulation: block placement draws from a throwaway
        RNG keyed on the path, so whether such a file is written has no
        effect on where every later file's replicas land — runs with
        and without the side-channel stay placement-identical.
        """
        state = self._rng.getstate()
        self._rng.seed(path)
        try:
            return self.create(path, records, created_at=created_at)
        finally:
            self._rng.setstate(state)

    def open(self, path: str) -> HDFSFile:
        """Return the file at ``path``.

        Raises
        ------
        HDFSError
            If no such file exists.
        """
        try:
            return self._files[path]
        except KeyError:
            raise HDFSError(f"no such file: {path!r}") from None

    def read_records(self, path: str) -> Tuple[Record, ...]:
        """Read every record of ``path``, charging the read counters."""
        hfile = self.open(path)
        self.counters.increment("hdfs.bytes_read", hfile.size)
        return hfile.records

    def delete(self, path: str) -> None:
        """Remove ``path`` from the namespace.

        Raises
        ------
        HDFSError
            If no such file exists.
        """
        if path not in self._files:
            raise HDFSError(f"no such file: {path!r}")
        del self._files[path]
        self.counters.increment("hdfs.files_deleted")

    def exists(self, path: str) -> bool:
        return path in self._files

    def glob(self, pattern: str) -> List[str]:
        """Paths matching a shell-style ``pattern``, sorted for determinism."""
        return sorted(fnmatch.filter(self._files, pattern))

    def list_paths(self) -> List[str]:
        return sorted(self._files)

    @property
    def total_bytes(self) -> int:
        """Logical bytes stored (before replication)."""
        return sum(f.size for f in self._files.values())

    # ------------------------------------------------------------------
    # block placement and locality
    # ------------------------------------------------------------------

    def _place_blocks(self, size: int) -> Tuple[Block, ...]:
        block_size = self._config.block_size
        blocks: List[Block] = []
        remaining = size
        # Every file, even an empty marker, gets at least one block so
        # that locality queries always have an answer.
        while True:
            this_size = min(block_size, remaining) if remaining > 0 else 0
            blocks.append(
                Block(
                    block_id=self._next_block_id,
                    size=this_size,
                    replicas=self._choose_replicas(),
                )
            )
            self._next_block_id += 1
            remaining -= this_size
            if remaining <= 0:
                break
        return tuple(blocks)

    def _choose_replicas(self) -> Tuple[int, ...]:
        live = sorted(self._live_nodes)
        if not live:
            raise HDFSError("no live data nodes available for placement")
        k = min(self._config.replication, len(live))
        return tuple(self._rng.sample(live, k))

    def splits(self, path: str) -> List[FileSplit]:
        """Carve ``path`` into map-task input splits, one per block.

        Records are distributed across splits proportionally to block
        sizes; the final split absorbs any rounding remainder so no
        record is dropped.
        """
        hfile = self.open(path)
        blocks = hfile.blocks
        n = len(hfile.records)
        if len(blocks) == 1:
            return [
                FileSplit(
                    path=path,
                    split_index=0,
                    records=hfile.records,
                    size=hfile.size,
                    locations=blocks[0].replicas,
                )
            ]
        splits: List[FileSplit] = []
        start = 0
        for i, block in enumerate(blocks):
            if i == len(blocks) - 1:
                end = n
            else:
                share = block.size / hfile.size if hfile.size else 0.0
                end = start + round(n * share)
                end = min(end, n)
            recs = hfile.records[start:end]
            splits.append(
                FileSplit(
                    path=path,
                    split_index=i,
                    records=recs,
                    size=block.size,
                    locations=block.replicas,
                )
            )
            start = end
        return splits

    def nodes_for(self, path: str) -> Set[int]:
        """Data nodes holding at least one replica of ``path``."""
        return self.open(path).replica_nodes()

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------

    @property
    def live_nodes(self) -> Set[int]:
        return set(self._live_nodes)

    def fail_node(self, node_id: int) -> int:
        """Mark a data node dead and re-replicate its blocks elsewhere.

        Returns the number of blocks that had to be re-replicated. Blocks
        whose every replica is lost would be data loss; with replication
        >= 2 and more than one live node this cannot happen here because
        re-replication is immediate.
        """
        if node_id not in self._live_nodes:
            raise HDFSError(f"node {node_id} is not alive")
        self._live_nodes.discard(node_id)
        moved = 0
        for hfile in self._files.values():
            new_blocks: List[Block] = []
            changed = False
            for block in hfile.blocks:
                if node_id in block.replicas:
                    survivors = tuple(r for r in block.replicas if r != node_id)
                    replacement = self._pick_replacement(survivors)
                    replicas = survivors + replacement
                    if not replicas:
                        raise HDFSError(
                            f"block {block.block_id} lost its last replica"
                        )
                    new_blocks.append(
                        Block(block.block_id, block.size, replicas)
                    )
                    moved += 1
                    changed = True
                    self.counters.increment("hdfs.bytes_rereplicated", block.size)
                else:
                    new_blocks.append(block)
            if changed:
                hfile.blocks = tuple(new_blocks)
        return moved

    def _pick_replacement(self, survivors: Tuple[int, ...]) -> Tuple[int, ...]:
        candidates = sorted(self._live_nodes - set(survivors))
        if not candidates:
            return ()
        return (self._rng.choice(candidates),)

    def recover_node(self, node_id: int) -> None:
        """Bring a previously failed node back (empty — blocks were moved)."""
        if node_id in self._live_nodes:
            raise HDFSError(f"node {node_id} is already alive")
        if not 0 <= node_id < self._config.num_nodes:
            raise HDFSError(f"node {node_id} is not part of this cluster")
        self._live_nodes.add(node_id)
