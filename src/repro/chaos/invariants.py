"""Structural consistency checks across the metadata layers.

Redoop keeps four views of the same cache state: the master-side
controller (ready bits + placement signatures), the per-node local
registries, the scheduler's task lists, and the node-local files that
actually hold the bytes. Recovery is correct only when every fault
leaves these views mutually consistent — a placement pointing at a dead
node, or a ready bit claiming ``CACHE_AVAILABLE`` with no backing
entry, is exactly the kind of drift that turns into a silently wrong
window three recurrences later.

:func:`check_invariants` is run by the chaos driver after every
injected event and after every recurrence. It returns human-readable
violation strings (empty list = consistent) rather than raising, so a
sweep can collect everything that is wrong at once.

One asymmetry is deliberate: a *registry* entry whose pane's controller
placement points at a different node is **not** a violation. When a
cache is rebuilt after a node failure the placement moves to the new
host, and the paper's lazy purge protocol leaves the stale replica on
the old node until its pane expires. The controller is authoritative;
orphans are garbage, not corruption.
"""

from __future__ import annotations

from typing import List

from ..core.cache_controller import CACHE_AVAILABLE, HDFS_AVAILABLE

__all__ = ["check_invariants"]


def check_invariants(runtime) -> List[str]:
    """Cross-check controller, registries, scheduler, and local files.

    Parameters
    ----------
    runtime:
        A :class:`~repro.core.runtime.RedoopRuntime`, quiescent (between
        recurrences / injections — task lists are expected empty).

    Returns
    -------
    list of str
        One line per violation; empty when every layer agrees.
    """
    violations: List[str] = []
    controller = runtime.controller
    registries = runtime.registries()
    cluster = runtime.cluster

    # 1. Every controller placement is backed end-to-end: live node,
    #    registry entry, node-local file. Caches whose every done-mask
    #    bit is set are exempt: purge notifications have gone out, the
    #    nodes have (lazily) dropped the bytes, and the signature is
    #    just awaiting garbage collection.
    for signature in controller.signatures():
        if signature.all_done():
            continue
        for partition, node_id in sorted(signature.placements.items()):
            where = (
                f"placement {signature.pid}/type{signature.cache_type}"
                f"/part{partition} -> node {node_id}"
            )
            node = cluster.node(node_id)
            if not node.alive:
                violations.append(f"{where}: node is dead")
                continue
            registry = registries.get(node_id)
            if registry is None or not registry.has(
                signature.pid, signature.cache_type, partition
            ):
                violations.append(f"{where}: no live registry entry")

    # 2. A CACHE_AVAILABLE ready bit needs at least one placed cache.
    placed_pids = {
        s.pid for s in controller.signatures() if s.placements
    }
    for pid, ready in controller.ready_states():
        if ready == CACHE_AVAILABLE and pid not in placed_pids:
            violations.append(
                f"ready bit: {pid} is CACHE_AVAILABLE but no cache is placed"
            )

    # 3. Map-eligible panes are exactly the HDFS_AVAILABLE ones the
    #    runtime still has work for; eligibility with the wrong ready
    #    bit means the rollback listeners misfired.
    ready_of = dict(controller.ready_states())
    for pid in sorted(runtime.map_eligible()):
        ready = ready_of.get(pid)
        if ready != HDFS_AVAILABLE:
            violations.append(
                f"map-eligible {pid} has ready bit {ready!r}, "
                f"expected HDFS_AVAILABLE"
            )

    # 4. Recurrences are atomic: between events the scheduler's task
    #    lists must be drained (a leftover request would leak into the
    #    next recurrence's Algorithm 2 pass).
    sched = runtime.scheduler
    if sched.map_task_list:
        violations.append(
            f"scheduler mapTaskList holds {len(sched.map_task_list)} "
            f"request(s) between recurrences"
        )
    if sched.reduce_task_list:
        violations.append(
            f"scheduler reduceTaskList holds {len(sched.reduce_task_list)} "
            f"request(s) between recurrences"
        )

    # 5. Live registry entries are backed by node-local files.
    for node_id, registry in sorted(registries.items()):
        if not registry.node.alive:
            # 6. A dead node's registry must be empty (fail_node
            #    forgets everything; resurrecting stale entries on
            #    recovery would serve pre-failure bytes).
            leftover = registry.live_entries()
            if leftover:
                violations.append(
                    f"dead node {node_id} registry still lists "
                    f"{len(leftover)} entr(ies)"
                )
            continue
        for entry in registry.live_entries():
            if not registry.node.has_local(entry.local_name):
                violations.append(
                    f"node {node_id} registry lists {entry.local_name} "
                    f"but the file is gone"
                )

    # 7. Budget: a bounded registry never holds more cached bytes than
    #    its capacity — admission control and eviction must keep every
    #    node at or under budget at every step, not just eventually.
    for node_id, registry in sorted(registries.items()):
        cap = registry.capacity_bytes
        if cap is None or not registry.node.alive:
            continue
        held = registry.cached_bytes
        if held > cap:
            violations.append(
                f"node {node_id} holds {held} cached bytes over its "
                f"budget of {cap}"
            )

    # 8. Cross-query reuse store: every manifest entry's backing files
    #    exist in HDFS (a dangling manifest row would fail every read
    #    and silently disable the tier), and the store's accounted
    #    bytes respect its own budget.
    store = getattr(runtime, "reuse", None)
    if store is not None and store.hdfs is not None:
        for entry in store.entries():
            for path in entry.paths():
                if not store.hdfs.exists(path):
                    violations.append(
                        f"reuse entry {entry.key} references missing "
                        f"HDFS file {path}"
                    )
        cap = store.capacity_bytes
        if cap is not None and store.total_bytes > cap:
            violations.append(
                f"reuse store holds {store.total_bytes} bytes over its "
                f"budget of {cap}"
            )

    # 9. Real worker-fault supervision: the execution backend never
    #    parks on a broken process pool between batches — the
    #    supervisor either rebuilt it or raised into the degraded-
    #    window path. A lingering broken pool would turn the *next*
    #    batch into an unsupervised crash.
    probe = getattr(getattr(runtime, "backend", None), "pool_healthy", None)
    if probe is not None and not probe():
        violations.append(
            "execution backend left a broken process pool behind"
        )

    return violations
