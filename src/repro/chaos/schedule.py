"""Declarative, seeded, replayable fault schedules.

A :class:`ChaosSchedule` is a sorted list of :class:`ChaosEvent`s, each
pinned to a virtual time. The driver applies an event as soon as the
simulation's ingest/execute loop passes its ``at`` time — between batch
arrivals, not just at window boundaries — so faults land mid-recurrence
the way real failures do.

Schedules serialise to JSON (:meth:`ChaosSchedule.to_json`) so a failing
randomized run can be attached to a CI artifact and replayed bit-for-bit
with :meth:`ChaosSchedule.from_json`.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = ["ChaosEvent", "ChaosSchedule", "EVENT_KINDS"]

#: Every fault domain the harness can inject.
EVENT_KINDS = (
    "task-kill",       # transient task failures: set task_failure_prob
    "task-exhaust",    # doom one task to burn all attempts (degraded window)
    "node-kill",       # fail a slave node (slots, local caches, replicas)
    "node-recover",    # bring a failed node back, empty
    "cache-loss",      # destroy a fraction of live caches (rollback applies)
    "cache-corrupt",   # silently tamper a fraction of live caches
    "slow-node",       # straggler: change one node's relative speed
    "ingest-burst",    # deliver the next N batches ahead of schedule
    "worker-kill",     # crash real pool workers (os._exit) on next tasks
    "worker-hang",     # hang real pool workers past the batch deadline
)


@dataclass(frozen=True)
class ChaosEvent:
    """One injected fault, pinned to a virtual time.

    Which optional fields matter depends on ``kind``:

    =============  ==================================================
    kind           parameters
    =============  ==================================================
    task-kill      ``prob`` (new task_failure_prob; 0 restores calm)
    task-exhaust   ``doom`` (task-key substring, one-shot)
    node-kill      ``node_id`` (``None``: seeded pick among live nodes)
    node-recover   ``node_id`` (``None``: the longest-dead node)
    cache-loss     ``fraction``, ``cache_type`` (``None`` = both)
    cache-corrupt  ``fraction``, ``cache_type``
    slow-node      ``node_id``, ``speed`` (1.0 restores full speed)
    ingest-burst   ``count`` (batches delivered early)
    worker-kill    ``count`` (tasks armed to crash their worker; 1)
    worker-hang    ``count`` (tasks armed to hang their worker; 1)
    =============  ==================================================

    The two ``worker-*`` kinds inject *real* process faults: they arm
    the runtime's supervised process backend so the next ``count``
    first-attempt pool submissions crash (``os._exit``) or hang past
    the batch deadline inside an actual worker. On a serial backend
    (or one without a deadline, for hangs) the event is skipped —
    ``applied`` stays false, like a ``node-kill`` on the last node.
    """

    at: float
    kind: str
    node_id: Optional[int] = None
    fraction: Optional[float] = None
    cache_type: Optional[int] = None
    prob: Optional[float] = None
    speed: Optional[float] = None
    count: Optional[int] = None
    doom: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown chaos event kind {self.kind!r}; "
                f"expected one of {EVENT_KINDS}"
            )
        if self.at < 0:
            raise ValueError("event times are non-negative virtual seconds")
        if self.kind == "task-kill" and self.prob is None:
            raise ValueError("task-kill needs prob")
        if self.kind == "task-exhaust" and not self.doom:
            raise ValueError("task-exhaust needs a doom task-key substring")
        if self.kind in ("cache-loss", "cache-corrupt") and self.fraction is None:
            raise ValueError(f"{self.kind} needs fraction")
        if self.kind == "slow-node" and (self.node_id is None or self.speed is None):
            raise ValueError("slow-node needs node_id and speed")
        if self.kind == "ingest-burst" and not self.count:
            raise ValueError("ingest-burst needs a positive count")
        if (
            self.kind in ("worker-kill", "worker-hang")
            and self.count is not None
            and self.count < 1
        ):
            raise ValueError(f"{self.kind} count must be positive")

    def describe(self) -> str:
        """One human-readable line for logs and CLI output."""
        params = {
            k: v
            for k, v in asdict(self).items()
            if k not in ("at", "kind") and v is not None
        }
        detail = " ".join(f"{k}={v}" for k, v in sorted(params.items()))
        return f"t={self.at:.0f}s {self.kind}" + (f" ({detail})" if detail else "")


@dataclass(frozen=True)
class ChaosSchedule:
    """An ordered, seeded composition of chaos events.

    ``seed`` drives every random choice downstream of the schedule —
    which node dies, which caches are hit — so one ``(seed, events)``
    pair replays exactly.
    """

    seed: int
    events: Tuple[ChaosEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: e.at))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        horizon: float,
        num_nodes: int,
        num_windows: int,
        slide: float,
        include: Sequence[str] = (
            "task-kill",
            "node-kill",
            "cache-loss",
            "cache-corrupt",
            "slow-node",
        ),
        events_per_window: float = 1.0,
        exhaust_window: Optional[int] = None,
        worker_kills: int = 0,
        worker_hangs: int = 0,
    ) -> "ChaosSchedule":
        """Compose a randomized-but-reproducible schedule.

        The generator keeps the schedule *recoverable by construction*:
        at most one node is down at a time (so re-execution always has
        somewhere to run), every ``node-kill`` is paired with a
        ``node-recover`` before the next kill, cache fractions stay
        below 1.0, and faults start after window 1 (there is nothing
        cached to lose earlier). ``exhaust_window`` additionally dooms
        that window's combine task — the one *non*-recoverable fault,
        expected to surface as a degraded window, not a wrong answer.
        ``worker_kills`` / ``worker_hangs`` scatter that many *real*
        process-fault events (``worker-kill`` / ``worker-hang``) over
        the same horizon; they only bite when the run executes on a
        supervised process backend.
        """
        if num_windows < 2:
            raise ValueError("chaos needs at least two windows")
        rng = random.Random(seed)
        events: List[ChaosEvent] = []
        total = max(1, round(events_per_window * (num_windows - 1)))
        #: End of the current kill/recover interval; a new kill must
        #: start strictly after it so at most one node is ever down.
        node_busy_until = float("-inf")
        # Faults strike inside the ingest stretch of windows 2..N.
        lo, hi = slide, max(slide + 1.0, horizon - 1.0)
        for _ in range(total):
            at = round(rng.uniform(lo, hi), 1)
            kind = rng.choice(list(include))
            if kind == "node-kill":
                if at <= node_busy_until:
                    continue  # would overlap the previous outage: skip
                events.append(ChaosEvent(at=at, kind="node-kill"))
                recover_at = round(
                    min(hi, at + rng.uniform(0.5, 2.0) * slide), 1
                )
                events.append(
                    ChaosEvent(at=recover_at, kind="node-recover")
                )
                node_busy_until = recover_at
            elif kind == "task-kill":
                events.append(
                    ChaosEvent(
                        at=at, kind="task-kill", prob=round(rng.uniform(0.05, 0.4), 2)
                    )
                )
                calm_at = min(hi, at + rng.uniform(0.5, 1.5) * slide)
                events.append(
                    ChaosEvent(at=round(calm_at, 1), kind="task-kill", prob=0.0)
                )
            elif kind in ("cache-loss", "cache-corrupt"):
                events.append(
                    ChaosEvent(
                        at=at,
                        kind=kind,
                        fraction=round(rng.uniform(0.1, 0.6), 2),
                        cache_type=rng.choice([None, 1, 2]),
                    )
                )
            elif kind == "slow-node":
                node_id = rng.randrange(num_nodes)
                events.append(
                    ChaosEvent(
                        at=at,
                        kind="slow-node",
                        node_id=node_id,
                        speed=round(rng.uniform(0.25, 0.75), 2),
                    )
                )
                restore_at = min(hi, at + rng.uniform(0.5, 2.0) * slide)
                events.append(
                    ChaosEvent(
                        at=round(restore_at, 1),
                        kind="slow-node",
                        node_id=node_id,
                        speed=1.0,
                    )
                )
            elif kind == "ingest-burst":
                events.append(
                    ChaosEvent(at=at, kind="ingest-burst", count=rng.randint(1, 4))
                )
            elif kind in ("worker-kill", "worker-hang"):
                events.append(
                    ChaosEvent(at=at, kind=kind, count=rng.randint(1, 2))
                )
        for kind, extra in (
            ("worker-kill", worker_kills),
            ("worker-hang", worker_hangs),
        ):
            for _ in range(extra):
                events.append(
                    ChaosEvent(
                        at=round(rng.uniform(lo, hi), 1), kind=kind, count=1
                    )
                )
        if exhaust_window is not None:
            if not 1 <= exhaust_window <= num_windows:
                raise ValueError("exhaust_window out of range")
            events.append(
                ChaosEvent(
                    at=round(max(0.0, exhaust_window * slide - 1.0), 1),
                    kind="task-exhaust",
                    doom=f"/w{exhaust_window}/",
                )
            )
        return cls(seed=seed, events=tuple(events))

    # ------------------------------------------------------------------
    # serialisation (CI artifacts, replays)
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "seed": self.seed,
            "events": [
                {k: v for k, v in asdict(e).items() if v is not None}
                for e in self.events
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ChaosSchedule":
        payload = json.loads(text)
        return cls(
            seed=int(payload["seed"]),
            events=tuple(ChaosEvent(**e) for e in payload.get("events", [])),
        )
