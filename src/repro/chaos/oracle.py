"""The differential recovery oracle: fault-free run vs. chaos run.

Redoop's recovery contract (paper Sec. 5) is *output neutrality*: for
every recoverable fault, metadata rollback plus re-execution yields the
same per-window answers the fault-free run produced — faults may cost
time, never correctness. The oracle makes the contract executable:

1. build one workload;
2. run it fault-free (the benchmark harness's ``run_redoop_series``);
3. run it again under a :class:`~repro.chaos.schedule.ChaosSchedule`
   on an independent but identically-seeded cluster;
4. compare the per-window output digests.

Digests are placement- and timing-independent (sorted reprs of the
final output pairs), so retries, node kills, cache loss/corruption and
stragglers must not move them. The one sanctioned divergence is a
*degraded* window — attempt exhaustion, the non-recoverable fault —
whose output is empty by design; the oracle checks instead that every
window *after* it converges back to the fault-free answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..bench.harness import ExperimentConfig, SeriesResult, build_workload, run_redoop_series
from .driver import ChaosReport, run_chaos_series
from .schedule import ChaosSchedule

__all__ = [
    "DifferentialReport",
    "ReuseDifferentialReport",
    "WorkerFaultDifferentialReport",
    "run_differential",
    "run_reuse_differential",
    "run_worker_fault_differential",
]


@dataclass(slots=True)
class DifferentialReport:
    """Outcome of one fault-free-vs-chaos comparison."""

    schedule: ChaosSchedule
    baseline: SeriesResult
    chaos: ChaosReport
    #: Non-degraded windows whose digests differ from the baseline.
    mismatched_windows: List[int] = field(default_factory=list)

    @property
    def degraded_windows(self) -> List[int]:
        return self.chaos.degraded_windows

    @property
    def violations(self) -> List[str]:
        return self.chaos.violations

    @property
    def ok(self) -> bool:
        """Recovery held: digests match everywhere they must, and the
        structural invariants never broke."""
        return not self.mismatched_windows and not self.chaos.violations

    def summary(self) -> str:
        """One paragraph for CLI output / CI logs."""
        lines = [
            f"seed={self.schedule.seed} events={len(self.schedule)} "
            f"applied={len(self.chaos.events_applied)} "
            f"windows={len(self.baseline.windows)}",
        ]
        for desc in self.chaos.events_applied:
            lines.append(f"  injected {desc}")
        if self.degraded_windows:
            lines.append(
                "  degraded windows (empty output, by design): "
                + ", ".join(map(str, self.degraded_windows))
            )
        if self.mismatched_windows:
            lines.append(
                "  DIGEST MISMATCH in windows: "
                + ", ".join(map(str, self.mismatched_windows))
            )
        for violation in self.chaos.violations:
            lines.append(f"  INVARIANT VIOLATION {violation}")
        lines.append("  verdict: " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


def run_differential(
    config: ExperimentConfig,
    schedule: ChaosSchedule,
    *,
    check: bool = True,
    backend=None,
) -> DifferentialReport:
    """Run the differential oracle for one ``(config, schedule)`` pair.

    Both runs share one generated workload but execute on independent,
    identically-seeded clusters, so the only difference between them is
    the injected faults — any digest divergence outside degraded
    windows is a recovery bug, not noise. ``backend`` (an
    :class:`repro.exec.ExecBackend`) is applied to *both* runs, so the
    oracle holds regardless of how task user-code executes.
    """
    workload = build_workload(config)
    baseline = run_redoop_series(
        config, label="fault-free", workload=workload, backend=backend
    )
    chaos = run_chaos_series(
        config,
        schedule,
        label="chaos",
        workload=workload,
        check=check,
        backend=backend,
    )
    degraded = set(chaos.degraded_windows)
    mismatched = [
        i + 1
        for i, (want, got) in enumerate(
            zip(baseline.output_digests, chaos.series.output_digests)
        )
        if (i + 1) not in degraded and want != got
    ]
    return DifferentialReport(
        schedule=schedule,
        baseline=baseline,
        chaos=chaos,
        mismatched_windows=mismatched,
    )


@dataclass(slots=True)
class WorkerFaultDifferentialReport(DifferentialReport):
    """Fault-free *serial* run vs. process backend under *real* worker
    faults (crashed / hung pool workers).

    Strengthens :class:`DifferentialReport` two ways: the baseline is
    the serial backend (so parity spans backends *and* faults at
    once), and ``ok`` additionally demands the injection actually
    bit — a worker-fault schedule that lost no worker proves nothing.
    """

    #: ``exec.*`` counters of the chaos run (retries, worker_lost, …).
    exec_counters: dict = field(default_factory=dict)

    @property
    def worker_events_applied(self) -> bool:
        return any(
            "worker-kill" in desc or "worker-hang" in desc
            for desc in self.chaos.events_applied
        )

    @property
    def faults_exercised(self) -> bool:
        """The supervisor really saw workers die (not a no-op run)."""
        return self.exec_counters.get("exec.worker_lost", 0) > 0

    @property
    def ok(self) -> bool:
        if not DifferentialReport.ok.fget(self):  # type: ignore[union-attr]
            return False
        return not self.worker_events_applied or self.faults_exercised

    def summary(self) -> str:
        lines = [DifferentialReport.summary(self)]
        shown = {
            k: int(v)
            for k, v in sorted(self.exec_counters.items())
            if k in (
                "exec.retries",
                "exec.worker_lost",
                "exec.quarantined",
                "exec.pool_rebuilds",
            )
        }
        if shown:
            lines.append(
                "  recovery: "
                + " ".join(f"{k.split('.', 1)[1]}={v}" for k, v in shown.items())
            )
        if self.worker_events_applied and not self.faults_exercised:
            lines.append("  WORKER FAULTS ARMED BUT NO WORKER WAS LOST")
        return "\n".join(lines)


def run_worker_fault_differential(
    config: ExperimentConfig,
    schedule: ChaosSchedule,
    *,
    check: bool = True,
    backend=None,
    workers: int = 2,
    batch_deadline: float = 5.0,
    max_task_retries: int = 2,
    max_pool_rebuilds: int = 3,
) -> WorkerFaultDifferentialReport:
    """The real-process extension of :func:`run_differential`.

    The baseline runs fault-free on the **serial** backend; the chaos
    run executes on a supervised **process** backend while the
    schedule's ``worker-kill`` / ``worker-hang`` events crash and hang
    its actual OS workers (any simulated events ride along as usual).
    Byte-identical non-degraded digests then prove the whole ladder —
    deadline reaping, pool rebuild, retry, quarantine — is output-
    neutral, not just the metadata-level recovery.

    Pass ``backend`` to reuse a supervised process backend across
    seeds; otherwise one is built from the keyword knobs and closed
    before returning.
    """
    from ..exec import ProcessPoolBackend

    workload = build_workload(config)
    baseline = run_redoop_series(
        config, label="fault-free-serial", workload=workload
    )
    owned = backend is None
    chaos_backend = backend if backend is not None else ProcessPoolBackend(
        workers=workers,
        batch_deadline=batch_deadline,
        max_task_retries=max_task_retries,
        max_pool_rebuilds=max_pool_rebuilds,
    )
    try:
        chaos = run_chaos_series(
            config,
            schedule,
            label="worker-chaos",
            workload=workload,
            check=check,
            backend=chaos_backend,
        )
    finally:
        if owned:
            chaos_backend.close()
    degraded = set(chaos.degraded_windows)
    mismatched = [
        i + 1
        for i, (want, got) in enumerate(
            zip(baseline.output_digests, chaos.series.output_digests)
        )
        if (i + 1) not in degraded and want != got
    ]
    return WorkerFaultDifferentialReport(
        schedule=schedule,
        baseline=baseline,
        chaos=chaos,
        mismatched_windows=mismatched,
        exec_counters={
            name: value
            for name, value in chaos.series.runtime_counters.items()
            if name.startswith("exec.")
        },
    )


@dataclass(slots=True)
class ReuseDifferentialReport:
    """Outcome of the reuse-on/off differential comparison.

    Three runs over one workload: ``off`` (no store), ``cold`` (fresh
    store, publishes everything), and ``warm`` (fresh cluster, the
    cold run's store — artifacts must actually serve). When a chaos
    schedule is supplied, all three runs execute under it.
    """

    off: SeriesResult
    cold: ChaosReport
    warm: ChaosReport
    #: Windows (degraded in no run) whose digests diverge across runs.
    mismatched_windows: List[int] = field(default_factory=list)
    #: Invariant violations from the cold + warm chaos runs.
    violations: List[str] = field(default_factory=list)
    #: ``reuse.*`` counters of the warm run.
    warm_reuse_counters: dict = field(default_factory=dict)

    @property
    def warm_hits(self) -> float:
        return self.warm_reuse_counters.get("reuse.hits", 0.0)

    @property
    def ok(self) -> bool:
        """The store never changed an answer — and actually served."""
        return (
            not self.mismatched_windows
            and not self.violations
            and self.warm_hits > 0
        )

    def summary(self) -> str:
        lines = [
            f"windows={len(self.off.windows)} "
            f"warm_hits={self.warm_hits:.0f} "
            f"bytes_saved={self.warm_reuse_counters.get('reuse.bytes_saved', 0.0):.0f}"
        ]
        if self.mismatched_windows:
            lines.append(
                "  DIGEST MISMATCH in windows: "
                + ", ".join(map(str, self.mismatched_windows))
            )
        for violation in self.violations:
            lines.append(f"  INVARIANT VIOLATION {violation}")
        if self.warm_hits == 0:
            lines.append("  WARM RUN NEVER HIT THE STORE")
        lines.append("  verdict: " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


def run_reuse_differential(
    config: ExperimentConfig,
    schedule: Optional[ChaosSchedule] = None,
    *,
    check: bool = True,
    backend=None,
) -> ReuseDifferentialReport:
    """Prove the reuse tier is answer-neutral for one workload.

    The contract mirrors :func:`run_differential`: enabling the store
    (cold), then serving a second identical tenant from it on a fresh
    cluster (warm), must produce byte-identical window digests to the
    store-free run — under a chaos schedule too, where degraded
    windows (in *any* run; fault timing shifts when work is skipped)
    are the only sanctioned divergence.
    """
    from ..reuse import ReuseStore

    workload = build_workload(config)
    sched = schedule if schedule is not None else ChaosSchedule(seed=0, events=())
    off = run_redoop_series(config, label="reuse-off", workload=workload, backend=backend)
    store = ReuseStore()
    cold = run_chaos_series(
        config, sched, label="reuse-cold", workload=workload,
        check=check, backend=backend, reuse_store=store,
    )
    warm = run_chaos_series(
        config, sched, label="reuse-warm", workload=workload,
        check=check, backend=backend, reuse_store=store,
    )
    degraded = (
        set(cold.degraded_windows)
        | set(warm.degraded_windows)
    )
    mismatched = []
    for i, want in enumerate(off.output_digests):
        window = i + 1
        if window in degraded:
            continue
        if (
            cold.series.output_digests[i] != want
            or warm.series.output_digests[i] != want
        ):
            mismatched.append(window)
    warm_counters = {
        name: value
        for name, value in warm.series.runtime_counters.items()
        if name.startswith("reuse.")
    }
    return ReuseDifferentialReport(
        off=off,
        cold=cold,
        warm=warm,
        mismatched_windows=mismatched,
        violations=list(cold.violations) + list(warm.violations),
        warm_reuse_counters=warm_counters,
    )
