"""Chaos harness: declarative fault schedules and a recovery oracle.

Redoop's fault-tolerance claim (paper Sec. 5) is that metadata rollback
plus re-execution makes every recoverable failure *output-neutral*: the
per-window answers of a run that suffered task kills, node losses,
cache losses, cache corruption, stragglers, and ingest bursts must be
byte-identical to a fault-free run of the same workload. This package
turns that claim into an executable check:

* :class:`~repro.chaos.schedule.ChaosSchedule` — a seeded, replayable
  composition of mid-flight fault events (JSON round-trippable so CI
  can upload a failing schedule as an artifact);
* :func:`~repro.chaos.invariants.check_invariants` — structural
  consistency of controller ready bits vs. registry entries vs.
  scheduler task lists vs. node-local files, run after every injection;
* :func:`~repro.chaos.driver.run_chaos_series` — executes a workload
  under a schedule, applying events between ingest steps;
* :func:`~repro.chaos.oracle.run_differential` — the differential
  oracle: fault-free vs. chaos run, digests compared per window;
* :func:`~repro.chaos.oracle.run_reuse_differential` — the same
  contract for the cross-query reuse store: store-off vs. cold vs.
  warm runs must agree on every non-degraded window digest;
* :func:`~repro.chaos.oracle.run_worker_fault_differential` — the
  *real-process* extension: a fault-free serial run vs. a supervised
  process-backend run whose actual OS workers are crashed
  (``os._exit``) and hung by ``worker-kill`` / ``worker-hang`` events.

See ``docs/fault-tolerance.md`` for the failure domains and semantics.
"""

from .schedule import ChaosEvent, ChaosSchedule, EVENT_KINDS
from .invariants import check_invariants
from .driver import ChaosReport, run_chaos_series
from .oracle import (
    DifferentialReport,
    ReuseDifferentialReport,
    WorkerFaultDifferentialReport,
    run_differential,
    run_reuse_differential,
    run_worker_fault_differential,
)

__all__ = [
    "ChaosEvent",
    "ChaosReport",
    "ChaosSchedule",
    "DifferentialReport",
    "ReuseDifferentialReport",
    "WorkerFaultDifferentialReport",
    "EVENT_KINDS",
    "check_invariants",
    "run_chaos_series",
    "run_differential",
    "run_reuse_differential",
    "run_worker_fault_differential",
]
