"""Execute a workload under a :class:`~repro.chaos.schedule.ChaosSchedule`.

:func:`run_chaos_series` mirrors the benchmark harness's
``run_redoop_series`` loop — same workload construction, same
ingest/execute interleaving, same per-window metrics — but threads a
fault schedule through it: events fire *between ingest steps* as soon
as virtual time passes their ``at``, not merely at window boundaries.
After every injection (and every recurrence) the structural invariants
are checked, so a rollback bug is pinned to the event that exposed it
rather than to a wrong digest three windows later.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional

from ..bench.harness import (
    ExperimentConfig,
    SeriesResult,
    WindowMetrics,
    build_workload,
)
from ..core.recovery import RecoveryManager
from ..core.runtime import RecurrenceResult, RedoopRuntime
from ..hadoop.cluster import Cluster
from ..hadoop.faults import FaultInjector
from ..trace import CAT_CHAOS, Tracer
from .invariants import check_invariants
from .schedule import ChaosEvent, ChaosSchedule

__all__ = ["ChaosReport", "run_chaos_series"]


@dataclass(slots=True)
class ChaosReport:
    """Everything a chaos run produced, for the oracle and the CLI."""

    schedule: ChaosSchedule
    series: SeriesResult
    #: ``describe()`` strings of events actually applied, in order.
    events_applied: List[str] = field(default_factory=list)
    #: Recurrences that ended degraded (attempt exhaustion).
    degraded_windows: List[int] = field(default_factory=list)
    #: Invariant violations, prefixed with the checkpoint that saw them.
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no structural invariant was ever violated."""
        return not self.violations


class _ChaosRun:
    """One chaos execution; holds the mutable mid-run state."""

    def __init__(
        self,
        config: ExperimentConfig,
        schedule: ChaosSchedule,
        *,
        label: str,
        workload,
        check: bool,
        tracer: Optional[Tracer],
        backend=None,
        reuse_store=None,
    ) -> None:
        self.config = config
        self.schedule = schedule
        self.check = check
        self.workload = workload or build_workload(config)
        self.cluster = Cluster(config.cluster_config, seed=config.seed)
        self.injector = FaultInjector(seed=schedule.seed)
        self.runtime = RedoopRuntime(
            self.cluster,
            fault_injector=self.injector,
            tracer=tracer,
            backend=backend,
            reuse_store=reuse_store,
        )
        self.query = config.build_query()
        self.runtime.register_query(
            self.query, {src: config.rate for src in config.sources}
        )
        self.recovery = RecoveryManager(self.runtime)
        self.pending: List[tuple] = sorted(
            (item for items in self.workload.values() for item in items),
            key=lambda bw: (bw[0].t_end, bw[0].source),
        )
        self.cursor = 0
        self.label = label
        #: Nodes currently down, oldest failure first (node-recover
        #: with no explicit node_id revives the longest-dead one).
        self.down_nodes: List[int] = []
        self.report = ChaosReport(schedule=schedule, series=None)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # event application
    # ------------------------------------------------------------------

    def apply(self, event: ChaosEvent) -> None:
        when = max(self.cluster.clock.now, event.at)
        applied = True
        if event.kind == "task-kill":
            self.injector.task_failure_prob = event.prob
        elif event.kind == "task-exhaust":
            self.injector.doom(event.doom)
        elif event.kind == "node-kill":
            live = self.cluster.live_node_ids()
            if len(live) <= 1:
                applied = False  # never kill the last node
            else:
                node_id = (
                    event.node_id
                    if event.node_id is not None
                    else self.injector.pick_node_victim(live)
                )
                if self.cluster.node(node_id).alive:
                    self.recovery.fail_node(node_id)
                    self.down_nodes.append(node_id)
                else:
                    applied = False
        elif event.kind == "node-recover":
            node_id = event.node_id
            if node_id is None:
                node_id = self.down_nodes[0] if self.down_nodes else None
            if node_id is None or self.cluster.node(node_id).alive:
                applied = False
            else:
                self.recovery.recover_node(node_id)
                self.down_nodes.remove(node_id)
        elif event.kind == "cache-loss":
            self.recovery.inject_cache_failures(
                self.injector,
                cache_type=event.cache_type,
                fraction=event.fraction,
            )
        elif event.kind == "cache-corrupt":
            self.recovery.inject_cache_corruption(
                self.injector,
                cache_type=event.cache_type,
                fraction=event.fraction,
            )
        elif event.kind == "slow-node":
            if self.cluster.node(event.node_id).alive:
                self.cluster.set_node_speed(event.node_id, event.speed)
            else:
                applied = False
        elif event.kind == "ingest-burst":
            burst = 0
            while burst < event.count and self.cursor < len(self.pending):
                self.runtime.ingest(*self.pending[self.cursor])
                self.cursor += 1
                burst += 1
            applied = burst > 0
        elif event.kind in ("worker-kill", "worker-hang"):
            # Real process faults: arm the supervised backend so the
            # next first-attempt pool submissions crash or hang inside
            # an actual worker. Skipped (applied=False) on backends
            # that cannot host them — serial, or hang without a batch
            # deadline to reap it.
            backend = self.runtime.backend
            inject = getattr(backend, "inject_worker_faults", None)
            if inject is None or not getattr(backend, "parallel", False):
                applied = False
            else:
                kind = "kill" if event.kind == "worker-kill" else "hang"
                try:
                    inject(kind, count=event.count or 1)
                except ValueError:
                    applied = False

        if not applied:
            return
        self.runtime.counters.increment("chaos.events_injected")
        self.runtime.tracer.instant(
            "chaos.event",
            CAT_CHAOS,
            time=when,
            node_id=event.node_id,
            kind=event.kind,
            detail=event.describe(),
        )
        self.report.events_applied.append(event.describe())
        self.check_now(f"after {event.describe()}")

    def check_now(self, where: str) -> None:
        if not self.check:
            return
        for violation in check_invariants(self.runtime):
            self.report.violations.append(f"{where}: {violation}")

    # ------------------------------------------------------------------
    # the run loop (mirrors run_redoop_series, plus event interleaving)
    # ------------------------------------------------------------------

    def run(self) -> ChaosReport:
        events = list(self.schedule.events)
        ei = 0
        results: List[RecurrenceResult] = []
        for recurrence in range(1, self.config.num_windows + 1):
            due = self.query.execution_time(recurrence)
            while (
                self.cursor < len(self.pending)
                and self.pending[self.cursor][0].t_end <= due + 1e-9
            ):
                t_next = self.pending[self.cursor][0].t_end
                if ei < len(events) and events[ei].at <= t_next + 1e-9:
                    self.apply(events[ei])
                    ei += 1
                    # Re-evaluate: an ingest-burst may have moved the cursor.
                    continue
                self.runtime.ingest(*self.pending[self.cursor])
                self.cursor += 1
            while ei < len(events) and events[ei].at <= due + 1e-9:
                self.apply(events[ei])
                ei += 1
            result = self.runtime.run_recurrence(self.query.name, recurrence)
            results.append(result)
            if result.degraded:
                self.report.degraded_windows.append(recurrence)
            self.check_now(f"after window {recurrence}")
        # Leftover events (e.g. the recover half of a late kill).
        while ei < len(events):
            self.apply(events[ei])
            ei += 1
        # Worker faults armed too late to be consumed must not leak
        # into whatever runs next on a shared backend (the next seed's
        # fault-free baseline, say) — output-neutral, but noisy.
        drain = getattr(self.runtime.backend, "drain_worker_faults", None)
        if drain is not None:
            drain()

        self.report.series = SeriesResult(
            label=self.label,
            tracer=self.runtime.tracer,
            runtime_counters=self.runtime.counters.as_dict(),
            windows=[
                WindowMetrics(
                    recurrence=r.recurrence,
                    due_time=r.due_time,
                    finish_time=r.finish_time,
                    response_time=r.response_time,
                    phases=r.phase_times,
                    output_pairs=len(r.output),
                )
                for r in results
            ],
            output_digests=[
                tuple(sorted(map(repr, r.output))) for r in results
            ],
        )
        return self.report


def run_chaos_series(
    config: ExperimentConfig,
    schedule: ChaosSchedule,
    *,
    label: str = "chaos",
    workload: Optional[Mapping] = None,
    check: bool = True,
    tracer: Optional[Tracer] = None,
    backend=None,
    reuse_store=None,
) -> ChaosReport:
    """Run ``config``'s workload on Redoop under a chaos schedule.

    Parameters
    ----------
    config:
        The experiment (same type the benchmark harness uses).
    schedule:
        The fault composition; its seed drives every random choice the
        injections make, so a run replays exactly.
    workload:
        Pre-built batches (share one workload across the fault-free and
        chaos runs of a differential comparison).
    check:
        Run the structural invariant checker after every injection and
        every recurrence (on by default; the cost is trivial).
    reuse_store:
        Optional cross-query :class:`~repro.reuse.ReuseStore` attached
        to the chaos run's runtime — the reuse tier must hold its
        digests under fault injection too (invariant 8 then also
        audits the store's backing files).
    """
    run = _ChaosRun(
        config,
        schedule,
        label=label,
        workload=workload,
        check=check,
        tracer=tracer,
        backend=backend,
        reuse_store=reuse_store,
    )
    return run.run()
