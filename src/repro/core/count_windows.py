"""Count-based sliding windows (paper Sec. 6.1).

The paper evaluates time-based windows but notes that "count-based
windows provide similar results". This module supports them through a
reduction: a count-based window of ``win`` records sliding by ``slide``
records is exactly a time-based window over *ordinal time*, where the
i-th arriving record of a source carries timestamp ``i``.

:class:`CountingIngest` performs that rewrite at the ingest boundary —
each source keeps a running record counter and batches are re-stamped
onto the ordinal axis — after which every Redoop mechanism (pane GCD
planning, caching, expiration, scheduling, adaptivity) applies
verbatim. One ordinal second == one record, so
``WindowSpec(win=1000, slide=100)`` means "the last 1000 records, every
100 records".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..hadoop.catalog import BatchFile
from ..hadoop.types import Record
from .panes import WindowSpec
from .runtime import RedoopRuntime

__all__ = ["count_window_spec", "CountingIngest"]


def count_window_spec(win_records: int, slide_records: int) -> WindowSpec:
    """Window constraints counted in records instead of seconds.

    Returns a :class:`WindowSpec` on the ordinal axis; use together
    with :class:`CountingIngest`, which maps arriving records onto that
    axis.
    """
    if win_records < 1 or slide_records < 1:
        raise ValueError("count windows need positive record counts")
    if slide_records > win_records:
        raise ValueError("slide must not exceed win (no gaps)")
    return WindowSpec(win=float(win_records), slide=float(slide_records))


@dataclass
class _SourceCounter:
    next_ordinal: int = 0


class CountingIngest:
    """Ingest adapter rewriting record timestamps to arrival ordinals.

    Wraps a :class:`~repro.core.runtime.RedoopRuntime`: call
    :meth:`ingest` with ordinary batches; records are re-stamped with
    consecutive ordinals per source (preserving arrival order) and the
    batch range becomes the ordinal interval it covers.

    Recurrence ``k`` of a query with ``count_window_spec(W, S)`` then
    fires once ``W + (k-1) * S`` records have arrived, covering exactly
    the paper's count-based window semantics.
    """

    def __init__(self, runtime: RedoopRuntime) -> None:
        self.runtime = runtime
        self._counters: Dict[str, _SourceCounter] = {}

    def records_seen(self, source: str) -> int:
        """How many records of ``source`` have been ingested so far."""
        counter = self._counters.get(source)
        return counter.next_ordinal if counter else 0

    def ingest(self, batch: BatchFile, records: Sequence[Record]) -> None:
        """Re-stamp ``records`` onto the ordinal axis and ingest them.

        Records are taken in the given order (the arrival order defines
        the count semantics); their original timestamps are preserved
        inside the payload under ``_ts`` when the payload is a dict.
        """
        counter = self._counters.setdefault(batch.source, _SourceCounter())
        start = counter.next_ordinal
        restamped: List[Record] = []
        for offset, record in enumerate(records):
            value = record.value
            if isinstance(value, dict) and "_ts" not in value:
                value = {**value, "_ts": record.ts}
            restamped.append(
                Record(ts=float(start + offset), value=value, size=record.size)
            )
        counter.next_ordinal = start + len(records)
        ordinal_batch = BatchFile(
            path=batch.path,
            source=batch.source,
            t_start=float(start),
            t_end=float(counter.next_ordinal),
        )
        self.runtime.ingest(ordinal_batch, restamped)

    def ready_recurrences(self, query_name: str) -> int:
        """How many recurrences of ``query_name`` have enough records.

        A recurrence is ready once every source has delivered the
        records its window needs.
        """
        state = self.runtime._state(query_name)
        query = state.query
        k = 0
        while True:
            needed = {
                src: query.spec(src).execution_time(k + 1)
                for src in query.sources
            }
            if all(
                self.records_seen(src) >= need for src, need in needed.items()
            ):
                k += 1
            else:
                return k
