"""The Execution Profiler: runtime statistics and overload forecasting.

After each query recurrence the profiler records the execution time and
input volume, maintains a double-exponentially-smoothed estimate of the
execution time (Holt's linear method — the paper's Eqs. 1–3):

    L_i = a * X_i + (1 - a) * (L_{i-1} + T_{i-1})          (1)
    T_i = b * (L_i - L_{i-1}) + (1 - b) * T_{i-1}          (2)
    X̂_{i+k} = L_i + k * T_i                                (3)

and reports a *scale factor* — forecast execution time over the slide
period — that the Semantic Analyzer uses to split panes into sub-panes
and the runtime uses to switch into proactive mode (Sec. 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["Observation", "ExecutionProfiler"]


@dataclass(frozen=True)
class Observation:
    """One recurrence's statistics as collected by the profiler."""

    recurrence: int
    execution_time: float
    input_bytes: float


class ExecutionProfiler:
    """Holt double-exponential smoothing over recurrence execution times.

    Parameters
    ----------
    alpha:
        Level smoothing parameter ``a`` in Eq. 1 (0 < a <= 1).
    beta:
        Trend smoothing parameter ``b`` in Eq. 2 (0 <= b <= 1).

    The defaults weight recent recurrences heavily, which suits the
    spiky workloads of the Fig. 8 experiment; the paper notes the
    parameters can be fit to historical data (Holt-Winters, [12]).
    """

    def __init__(self, alpha: float = 0.5, beta: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 <= beta <= 1.0:
            raise ValueError("beta must be in [0, 1]")
        self.alpha = alpha
        self.beta = beta
        self._level: Optional[float] = None
        self._trend: float = 0.0
        self._observations: List[Observation] = []

    # ------------------------------------------------------------------
    # statistics intake
    # ------------------------------------------------------------------

    def observe(self, execution_time: float, input_bytes: float = 0.0) -> None:
        """Record one finished recurrence and update level and trend."""
        if execution_time < 0:
            raise ValueError("execution times are non-negative")
        self._observations.append(
            Observation(
                recurrence=len(self._observations) + 1,
                execution_time=execution_time,
                input_bytes=input_bytes,
            )
        )
        if self._level is None:
            self._level = execution_time
            self._trend = 0.0
            return
        prev_level = self._level
        self._level = self.alpha * execution_time + (1 - self.alpha) * (
            prev_level + self._trend
        )
        self._trend = (
            self.beta * (self._level - prev_level) + (1 - self.beta) * self._trend
        )

    @property
    def num_observations(self) -> int:
        return len(self._observations)

    @property
    def observations(self) -> Tuple[Observation, ...]:
        return tuple(self._observations)

    @property
    def level(self) -> Optional[float]:
        """Current smoothed level ``L_i`` (None before any observation)."""
        return self._level

    @property
    def trend(self) -> float:
        """Current smoothed trend ``T_i``."""
        return self._trend

    # ------------------------------------------------------------------
    # forecasting (Eq. 3)
    # ------------------------------------------------------------------

    def forecast(self, k: int = 1) -> Optional[float]:
        """Forecast the execution time ``k`` recurrences ahead.

        Returns ``None`` until at least one observation exists; the
        forecast is floored at zero (a negative trend cannot predict
        negative execution time).
        """
        if self._level is None:
            return None
        if k < 1:
            raise ValueError("forecasts look at least one recurrence ahead")
        return max(0.0, self._level + k * self._trend)

    def scale_factor(self, slide: float, k: int = 1) -> float:
        """Forecast execution time relative to the slide period.

        A factor above 1 means the next execution is expected to
        overrun its slot — the trigger for adaptive re-partitioning and
        proactive processing (Sec. 3.3). Returns 1.0 when no forecast
        is available yet.
        """
        if slide <= 0:
            raise ValueError("slide must be positive")
        fc = self.forecast(k)
        if fc is None:
            return 1.0
        return fc / slide

    def overload_predicted(self, slide: float, *, margin: float = 1.0) -> bool:
        """True when the forecast exceeds ``margin`` times the slide."""
        return self.scale_factor(slide) > margin

    def change_factor(self) -> float:
        """Forecast execution time over the pre-spike baseline.

        This is the paper's *scale factor* (Sec. 3.3): "the ratio
        between the expected execution time and the previous one".
        ``forecast(1)`` already smoothed in the newest observation, so
        dividing by that same observation would *mute* exactly the
        spikes the factor exists to detect (a 1,1,1,10 step series
        would read as < 1 — "load falling"). The denominator is
        therefore the observation *before* the one most recently
        absorbed: the execution time the forecast is a change *from*.
        Returns 1.0 until two observations exist.
        """
        if len(self._observations) < 2:
            return 1.0
        prev = self._observations[-2].execution_time
        fc = self.forecast(1)
        if prev <= 0 or fc is None:
            return 1.0
        return fc / prev

    def volatility(self, k: int = 3) -> float:
        """Max/min ratio of the last ``k`` execution times.

        A cheap fluctuation detector: ~1.0 for steady workloads, large
        when recent windows alternate between normal and spiked loads.
        Returns 1.0 until two observations exist.
        """
        if k < 2:
            raise ValueError("volatility needs at least two observations")
        recent = [o.execution_time for o in self._observations[-k:]]
        if len(recent) < 2:
            return 1.0
        low = min(recent)
        if low <= 0:
            return float("inf") if max(recent) > 0 else 1.0
        return max(recent) / low

    def input_volatility(self, k: int = 3) -> float:
        """Max/min ratio of the last ``k`` observations' input volumes.

        Data volume drives execution time (the paper cites SOPA for
        I/O dominance), and unlike the execution time itself it is not
        affected by which processing mode produced the observation —
        so it makes a stable fluctuation signal. Observations without
        volume information are skipped; returns 1.0 with fewer than two
        usable points.
        """
        if k < 2:
            raise ValueError("volatility needs at least two observations")
        recent = [
            o.input_bytes for o in self._observations[-k:] if o.input_bytes > 0
        ]
        if len(recent) < 2:
            return 1.0
        return max(recent) / min(recent)

    def fluctuation_detected(
        self, *, change_threshold: float = 1.2, volatility_threshold: float = 1.3
    ) -> bool:
        """The adaptive-mode trigger (Sec. 3.3).

        Fires when the forecast predicts a significant execution-time
        increase, or when recent executions (or their input volumes)
        have been fluctuating — the paper's cue to re-partition into
        sub-panes and switch to proactive best-effort processing.
        """
        return (
            self.change_factor() > change_threshold
            or self.volatility() > volatility_threshold
            or self.input_volatility() > volatility_threshold
        )
