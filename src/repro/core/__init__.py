"""Redoop core: the paper's contribution layered over simulated Hadoop.

Component map (paper section -> module):

* recurring query model (2.1, 5)  -> :mod:`repro.core.query`
* pane/window algebra (3.1)       -> :mod:`repro.core.panes`
* Semantic Analyzer (3.1, Alg. 1) -> :mod:`repro.core.semantic_analyzer`
* Dynamic Data Packer (3.2)       -> :mod:`repro.core.data_packer`
* Execution Profiler (3.3)        -> :mod:`repro.core.profiler`
* Local Cache Registry (4.1)      -> :mod:`repro.core.cache_registry`
* Cache Status Matrix (4.2)       -> :mod:`repro.core.status_matrix`
* Cache Controller (4.2)          -> :mod:`repro.core.cache_controller`
* Cache-Aware Scheduler (4.3)     -> :mod:`repro.core.scheduler`
* Runtime / task exec manager     -> :mod:`repro.core.runtime`
* Failure recovery (5)            -> :mod:`repro.core.recovery`
"""

from .builder import RecurringQueryBuilder
from .count_windows import CountingIngest, count_window_spec
from .cache_controller import (
    CACHE_AVAILABLE,
    HDFS_AVAILABLE,
    NOT_AVAILABLE,
    CacheSignature,
    PurgeNotification,
    WindowAwareCacheController,
)
from .cache_registry import (
    REDUCE_INPUT,
    REDUCE_OUTPUT,
    CacheCorruptionError,
    CacheEntry,
    LocalCacheRegistry,
    cache_file_name,
    payload_checksum,
)
from .data_packer import DynamicDataPacker, PackedPane, PaneFileHeader, PaneLocator
from .eviction import (
    EVICTION_POLICIES,
    EvictionPolicy,
    LifespanPolicy,
    LruPolicy,
    make_policy,
)
from .panes import (
    Pane,
    PaneRange,
    WindowSpec,
    pane_file_name,
    pane_name,
    parse_pane_name,
)
from .profiler import ExecutionProfiler, Observation
from .query import RecurringQuery, concat_finalizer, merging_finalizer
from .recovery import LostCache, RecoveryManager
from .runtime import RecurrenceResult, RedoopRuntime, pair_pid
from .scheduler import CacheAwareTaskScheduler, MapTaskRequest, ReduceTaskRequest
from .semantic_analyzer import PartitionPlan, SemanticAnalyzer, SourceStats
from .status_matrix import CacheStatusMatrix

__all__ = [
    "CACHE_AVAILABLE",
    "CacheAwareTaskScheduler",
    "CacheCorruptionError",
    "CacheEntry",
    "CacheSignature",
    "CacheStatusMatrix",
    "CountingIngest",
    "DynamicDataPacker",
    "EVICTION_POLICIES",
    "EvictionPolicy",
    "ExecutionProfiler",
    "HDFS_AVAILABLE",
    "LifespanPolicy",
    "LocalCacheRegistry",
    "LostCache",
    "LruPolicy",
    "MapTaskRequest",
    "NOT_AVAILABLE",
    "Observation",
    "PackedPane",
    "Pane",
    "PaneFileHeader",
    "PaneLocator",
    "PaneRange",
    "PartitionPlan",
    "PurgeNotification",
    "REDUCE_INPUT",
    "REDUCE_OUTPUT",
    "RecoveryManager",
    "RecurrenceResult",
    "RecurringQuery",
    "RecurringQueryBuilder",
    "RedoopRuntime",
    "ReduceTaskRequest",
    "SemanticAnalyzer",
    "SourceStats",
    "WindowAwareCacheController",
    "WindowSpec",
    "cache_file_name",
    "concat_finalizer",
    "count_window_spec",
    "make_policy",
    "merging_finalizer",
    "pair_pid",
    "pane_file_name",
    "pane_name",
    "parse_pane_name",
    "payload_checksum",
]
