"""The Semantic Analyzer: window-aware partition planning (paper Sec. 3.1).

Given a recurring query's window constraints, per-source arrival-rate
statistics, and the HDFS block size, the analyzer emits a
:class:`PartitionPlan` per data source following Algorithm 1:

1. ``pane = GCD(win, slide)`` — the logical data unit.
2. ``filesize = rate * pane`` — expected physical size of one pane.
3. *Oversize* case (``filesize >= blocksize``): one pane per physical
   file (the file may span several HDFS blocks).
4. *Undersized* case: ``floor(blocksize / filesize)`` panes are packed
   into one physical file, avoiding Hadoop's many-small-files problem.

The adaptive path (Sec. 3.3) re-plans with a scaled pane size when the
Execution Profiler forecasts that executions will overrun the slide.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping

from ..hadoop.config import ClusterConfig
from .panes import WindowSpec

__all__ = ["SourceStats", "PartitionPlan", "SemanticAnalyzer", "shared_pane_seconds"]


@dataclass(frozen=True)
class SourceStats:
    """Arrival statistics for one data source.

    ``rate`` is bytes per second of incoming data, as measured by the
    ingest layer or estimated from recent batches.
    """

    source: str
    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"source {self.source!r} needs a positive rate")


@dataclass(frozen=True)
class PartitionPlan:
    """Output of Algorithm 1 for one source: ``PP = (pane, 1, panenum)``.

    Attributes
    ----------
    source:
        The data source this plan partitions.
    pane_seconds:
        Logical pane length (seconds).
    panes_per_file:
        How many logical panes share one physical HDFS file: 1 in the
        oversize case, ``floor(blocksize / filesize)`` when undersized.
    expected_pane_bytes:
        The ``filesize`` estimate the decision was based on.
    sub_panes:
        Adaptive refinement factor (Sec. 3.3): each pane is split into
        this many sub-panes for proactive early processing. 1 = no
        refinement.
    """

    source: str
    pane_seconds: float
    panes_per_file: int
    expected_pane_bytes: float
    sub_panes: int = 1

    def __post_init__(self) -> None:
        if self.pane_seconds <= 0:
            raise ValueError("pane_seconds must be positive")
        if self.panes_per_file < 1:
            raise ValueError("a file holds at least one pane")
        if self.sub_panes < 1:
            raise ValueError("sub_panes must be at least 1")

    @property
    def oversize(self) -> bool:
        """True when one pane maps to exactly one (possibly multi-block) file."""
        return self.panes_per_file == 1

    @property
    def sub_pane_seconds(self) -> float:
        """Length of the adaptive processing unit."""
        return self.pane_seconds / self.sub_panes

    def file_group_of_pane(self, pane_index: int) -> int:
        """Index of the physical file that stores ``pane_index``."""
        if pane_index < 0:
            raise ValueError("pane indices are non-negative")
        return pane_index // self.panes_per_file


def pane_divides(finer: float, coarser: float) -> bool:
    """Does pane size ``finer`` tile pane size ``coarser`` exactly?

    Millisecond-exact, like every pane computation in the analyzer. The
    cross-query reuse store uses this to decide subsumption: a stored
    artifact materialised at a finer pane granularity can be composed
    into a new query's coarser GCD pane only when the finer pane
    divides it (otherwise stored ranges cannot tile the new pane).
    """
    finer_ms = round(finer * 1000)
    coarser_ms = round(coarser * 1000)
    if finer_ms <= 0 or coarser_ms <= 0:
        return False
    return coarser_ms % finer_ms == 0


def shared_pane_seconds(specs: "list[WindowSpec]") -> float:
    """Pane size serving *all* queries on one source (Sec. 3.1).

    The analyzer "takes as input a sequence of recurring queries with
    different window constraints"; the logical data unit must divide
    every query's win and slide, so the shared pane is the GCD over all
    of them. Every individual query's windows remain exact unions of
    the shared panes.
    """
    if not specs:
        raise ValueError("need at least one window spec")
    ms = 0
    for spec in specs:
        ms = math.gcd(ms, round(spec.win * 1000))
        ms = math.gcd(ms, round(spec.slide * 1000))
    return ms / 1000.0


class SemanticAnalyzer:
    """Produces and adaptively revises partition plans (Algorithm 1)."""

    def __init__(self, config: ClusterConfig) -> None:
        self._config = config

    def plan(self, spec: WindowSpec, stats: SourceStats) -> PartitionPlan:
        """Algorithm 1: choose pane size and pane-to-file mapping."""
        pane = spec.pane_seconds  # line 1: GCD(win, slide)
        filesize = stats.rate * pane  # line 2
        blocksize = self._config.block_size
        if filesize >= blocksize:  # line 3: oversize case
            panes_per_file = 1  # line 4: one file for one pane
        else:  # lines 5-7: undersized case
            panes_per_file = max(1, math.floor(blocksize / filesize))
        return PartitionPlan(
            source=stats.source,
            pane_seconds=pane,
            panes_per_file=panes_per_file,
            expected_pane_bytes=filesize,
        )

    def plan_pipeline(self, pipeline, stats: SourceStats) -> PartitionPlan:
        """Algorithm 1 driven off the logical-plan IR.

        ``pipeline`` is a :class:`repro.plan.SourcePipeline`; the
        window constraints are read off its Scan node — the IR, not the
        query object, is the structural source of truth. Callers
        re-expressing a window over a shared GCD pane do so on the IR
        (:meth:`SourcePipeline.with_window
        <repro.plan.ir.SourcePipeline.with_window>`) before planning.
        """
        if pipeline.source != stats.source:
            raise ValueError(
                f"pipeline reads {pipeline.source!r} but statistics "
                f"describe {stats.source!r}"
            )
        return self.plan(pipeline.scan.window, stats)

    def plan_all(
        self,
        specs: Mapping[str, WindowSpec],
        stats: Mapping[str, SourceStats],
    ) -> Dict[str, PartitionPlan]:
        """Plans for every source of a (possibly multi-source) query."""
        missing = set(specs) - set(stats)
        if missing:
            raise ValueError(f"no arrival statistics for sources: {sorted(missing)}")
        return {src: self.plan(specs[src], stats[src]) for src in sorted(specs)}

    def replan_adaptive(
        self, plan: PartitionPlan, scale_factor: float
    ) -> PartitionPlan:
        """Refine a plan when executions are forecast to overrun (Sec. 3.3).

        ``scale_factor`` is the ratio between the forecast execution
        time and the slide (>= 1 means the execution will not finish
        before the next one is due). The pane is split into
        ``ceil(scale_factor)`` sub-panes so that partial processing can
        start as soon as each sub-pane's data is available. A factor
        at or below 1 reverts to whole-pane processing.
        """
        if scale_factor <= 0:
            raise ValueError("scale_factor must be positive")
        sub = max(1, math.ceil(scale_factor))
        if sub == plan.sub_panes:
            return plan
        return PartitionPlan(
            source=plan.source,
            pane_seconds=plan.pane_seconds,
            panes_per_file=plan.panes_per_file,
            expected_pane_bytes=plan.expected_pane_bytes,
            sub_panes=sub,
        )
