"""Cache eviction policies for budget-bounded registries.

The paper assumes node-local disks large enough that caches only leave
through window expiration (Sec. 4.1's purging). Under a byte budget
(``ClusterConfig.cache_capacity_bytes``) that is not enough: a write
that would exceed the budget must *evict* live entries. Eviction is a
planned invalidation, not a fault — the runtime routes every victim
through :meth:`~repro.core.runtime.RedoopRuntime.discard_cache` so
controller signatures, ready bits, and queued tasks stay consistent,
and the evicted pane is simply recomputed from HDFS if needed again.

Two policies are provided:

``lru``
    Evict the least recently used entry first (classic H-SVM-LRU-style
    replacement). Recency is a per-registry monotonic use counter, so
    victim order is deterministic even when virtual time stands still.

``lifespan``
    Window-aware: score each entry by ``bytes x remaining uses``, where
    the remaining uses come from the Cache Status Matrix — the number
    of not-yet-reduced cells the pane still participates in across all
    registered queries (the pane's residual lifespan, Sec. 4.2). Cheap
    entries about to expire anyway go first; large panes the next
    windows still need go last. Ties break by recency, then key.

``cost-benefit``
    ReStore-style (Elghandour & Aboulnaga, VLDB 2012) retention for the
    cross-query reuse tier: each entry's benefit is
    ``bytes x recompute-cost / staleness`` — what it would cost to
    rebuild the artifact, weighted by how recently anything reused it.
    Stale, cheap-to-recompute artifacts go first; large, expensive,
    recently-hit ones survive. Works on plain cache entries too (the
    recompute cost then defaults to the entry's size, degrading to a
    size-weighted LRU).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from .cache_registry import CacheEntry

__all__ = [
    "EVICTION_POLICIES",
    "CostBenefitPolicy",
    "EvictionPolicy",
    "LifespanPolicy",
    "LruPolicy",
    "make_policy",
    "select_victims",
]

#: Looks up a pid's remaining doneQueryMask uses (supplied by the
#: runtime from the cache controller's status matrices).
RemainingUses = Callable[[str], int]

_entry_key = lambda e: (e.pid, e.cache_type, e.partition)  # noqa: E731


class EvictionPolicy:
    """Orders live cache entries from first-evicted to last."""

    name = "abstract"
    #: Whether :meth:`rank` consults remaining uses (lets the runtime
    #: skip the status-matrix walk for policies that ignore it).
    needs_remaining_uses = False

    def rank(
        self,
        entries: Sequence[CacheEntry],
        remaining_uses: RemainingUses,
    ) -> List[CacheEntry]:
        raise NotImplementedError


class LruPolicy(EvictionPolicy):
    """Least-recently-used first."""

    name = "lru"

    def rank(
        self,
        entries: Sequence[CacheEntry],
        remaining_uses: RemainingUses,
    ) -> List[CacheEntry]:
        return sorted(entries, key=lambda e: (e.last_used, _entry_key(e)))


class LifespanPolicy(EvictionPolicy):
    """Smallest ``bytes x remaining uses`` first (window-aware)."""

    name = "lifespan"
    needs_remaining_uses = True

    def rank(
        self,
        entries: Sequence[CacheEntry],
        remaining_uses: RemainingUses,
    ) -> List[CacheEntry]:
        def score(e: CacheEntry) -> Tuple[int, int, Tuple[str, int, int]]:
            return (e.size * remaining_uses(e.pid), e.last_used, _entry_key(e))

        return sorted(entries, key=score)


class CostBenefitPolicy(EvictionPolicy):
    """Smallest ``bytes x recompute-cost / staleness`` first (ReStore).

    ``now`` is the caller's clock in the same units as the entries'
    ``last_used`` (the reuse store passes its monotonic use counter);
    entries may carry a ``recompute_cost`` attribute — absent one, the
    cost of rebuilding is approximated by the entry's own size.
    """

    name = "cost-benefit"

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def rank(
        self,
        entries: Sequence[CacheEntry],
        remaining_uses: RemainingUses,
    ) -> List[CacheEntry]:
        def benefit(e: CacheEntry) -> Tuple[float, float, Tuple[str, int, int]]:
            cost = float(getattr(e, "recompute_cost", e.size))
            staleness = max(1.0, self.now - e.last_used)
            return (e.size * cost / staleness, e.last_used, _entry_key(e))

        return sorted(entries, key=benefit)


EVICTION_POLICIES = ("lru", "lifespan", "cost-benefit")


def make_policy(name: str) -> EvictionPolicy:
    if name == "lru":
        return LruPolicy()
    if name == "lifespan":
        return LifespanPolicy()
    if name == "cost-benefit":
        return CostBenefitPolicy()
    raise ValueError(
        f"unknown eviction policy {name!r}; expected one of {EVICTION_POLICIES}"
    )


def select_victims(
    policy: EvictionPolicy,
    entries: Sequence[CacheEntry],
    need_bytes: int,
    remaining_uses: RemainingUses,
) -> List[CacheEntry]:
    """The prefix of ``policy``'s ranking that frees ``need_bytes``.

    Returns victims in eviction order; the total may fall short when
    the candidate set itself is too small (the caller then rejects the
    incoming write instead).
    """
    victims: List[CacheEntry] = []
    freed = 0
    for entry in policy.rank(entries, remaining_uses):
        if freed >= need_bytes:
            break
        victims.append(entry)
        freed += entry.size
    return victims
