"""Cache eviction policies for budget-bounded registries.

The paper assumes node-local disks large enough that caches only leave
through window expiration (Sec. 4.1's purging). Under a byte budget
(``ClusterConfig.cache_capacity_bytes``) that is not enough: a write
that would exceed the budget must *evict* live entries. Eviction is a
planned invalidation, not a fault — the runtime routes every victim
through :meth:`~repro.core.runtime.RedoopRuntime.discard_cache` so
controller signatures, ready bits, and queued tasks stay consistent,
and the evicted pane is simply recomputed from HDFS if needed again.

Two policies are provided:

``lru``
    Evict the least recently used entry first (classic H-SVM-LRU-style
    replacement). Recency is a per-registry monotonic use counter, so
    victim order is deterministic even when virtual time stands still.

``lifespan``
    Window-aware: score each entry by ``bytes x remaining uses``, where
    the remaining uses come from the Cache Status Matrix — the number
    of not-yet-reduced cells the pane still participates in across all
    registered queries (the pane's residual lifespan, Sec. 4.2). Cheap
    entries about to expire anyway go first; large panes the next
    windows still need go last. Ties break by recency, then key.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from .cache_registry import CacheEntry

__all__ = [
    "EVICTION_POLICIES",
    "EvictionPolicy",
    "LifespanPolicy",
    "LruPolicy",
    "make_policy",
    "select_victims",
]

#: Looks up a pid's remaining doneQueryMask uses (supplied by the
#: runtime from the cache controller's status matrices).
RemainingUses = Callable[[str], int]

_entry_key = lambda e: (e.pid, e.cache_type, e.partition)  # noqa: E731


class EvictionPolicy:
    """Orders live cache entries from first-evicted to last."""

    name = "abstract"
    #: Whether :meth:`rank` consults remaining uses (lets the runtime
    #: skip the status-matrix walk for policies that ignore it).
    needs_remaining_uses = False

    def rank(
        self,
        entries: Sequence[CacheEntry],
        remaining_uses: RemainingUses,
    ) -> List[CacheEntry]:
        raise NotImplementedError


class LruPolicy(EvictionPolicy):
    """Least-recently-used first."""

    name = "lru"

    def rank(
        self,
        entries: Sequence[CacheEntry],
        remaining_uses: RemainingUses,
    ) -> List[CacheEntry]:
        return sorted(entries, key=lambda e: (e.last_used, _entry_key(e)))


class LifespanPolicy(EvictionPolicy):
    """Smallest ``bytes x remaining uses`` first (window-aware)."""

    name = "lifespan"
    needs_remaining_uses = True

    def rank(
        self,
        entries: Sequence[CacheEntry],
        remaining_uses: RemainingUses,
    ) -> List[CacheEntry]:
        def score(e: CacheEntry) -> Tuple[int, int, Tuple[str, int, int]]:
            return (e.size * remaining_uses(e.pid), e.last_used, _entry_key(e))

        return sorted(entries, key=score)


EVICTION_POLICIES = ("lru", "lifespan")


def make_policy(name: str) -> EvictionPolicy:
    if name == "lru":
        return LruPolicy()
    if name == "lifespan":
        return LifespanPolicy()
    raise ValueError(
        f"unknown eviction policy {name!r}; expected one of {EVICTION_POLICIES}"
    )


def select_victims(
    policy: EvictionPolicy,
    entries: Sequence[CacheEntry],
    need_bytes: int,
    remaining_uses: RemainingUses,
) -> List[CacheEntry]:
    """The prefix of ``policy``'s ranking that frees ``need_bytes``.

    Returns victims in eviction order; the total may fall short when
    the candidate set itself is too small (the caller then rejects the
    incoming write instead).
    """
    victims: List[CacheEntry] = []
    freed = 0
    for entry in policy.rank(entries, remaining_uses):
        if freed >= need_bytes:
            break
        victims.append(entry)
        freed += entry.size
    return victims
