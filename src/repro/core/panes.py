"""Pane arithmetic: the window/slide/pane algebra underpinning Redoop.

A recurring query is specified by ``win`` and ``slide`` (paper Sec. 2.1).
Redoop slices each source's data into *panes* of length
``GCD(win, slide)`` (Algorithm 1, line 1) so that every window is an
exact union of panes and every slide advances the window by a whole
number of panes. This module implements that algebra exactly:

* which panes a window covers,
* when each execution (recurrence) fires,
* pane identifiers (``S1P3``) and file-name conventions,
* a pane's *lifespan* with respect to a join partner — the range of
  partner panes it must be processed with before it can expire
  (paper Sec. 4.2, "Expiration").

Times are in (virtual) seconds. To keep the GCD exact for fractional
inputs, times are converted to integer milliseconds internally.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = [
    "WindowSpec",
    "Pane",
    "pane_name",
    "parse_pane_name",
    "pane_file_name",
    "PaneRange",
]

_MS = 1000


def _to_ms(seconds: float) -> int:
    ms = round(seconds * _MS)
    if not math.isclose(ms / _MS, seconds, rel_tol=0, abs_tol=1e-9):
        raise ValueError(
            f"time {seconds!r} is not representable at millisecond "
            "granularity; window parameters must be whole milliseconds"
        )
    return ms


@dataclass(frozen=True)
class WindowSpec:
    """A source's window constraints: ``win`` and ``slide`` in seconds.

    ``win`` is the scope of data each execution processes; ``slide`` is
    the period between executions. The derived ``pane`` is their GCD.
    Example from the paper (Sec. 3.1): win = 6 min, slide = 2 min gives
    a 2-minute pane.

    ``pane`` may be overridden with a finer granularity — it must
    divide ``GCD(win, slide)`` exactly. The Semantic Analyzer uses this
    when several queries share a source: the source is partitioned once
    at the GCD of *all* the queries' constraints (Sec. 3.1, "based on
    the available queries in the system"), and every query's window
    remains an exact union of the shared panes.
    """

    win: float
    slide: float
    pane: Optional[float] = None

    def __post_init__(self) -> None:
        if self.win <= 0 or self.slide <= 0:
            raise ValueError("win and slide must be positive durations")
        if self.slide > self.win + 1e-12:
            # A slide larger than the window would leave gaps of data
            # never processed; the paper's model has slide <= win.
            raise ValueError(
                f"slide ({self.slide}) must not exceed win ({self.win})"
            )
        if self.pane is not None:
            if self.pane <= 0:
                raise ValueError("pane override must be positive")
            gcd_ms = math.gcd(_to_ms(self.win), _to_ms(self.slide))
            pane_ms = _to_ms(self.pane)
            if gcd_ms % pane_ms != 0:
                raise ValueError(
                    f"pane override {self.pane}s must divide "
                    f"GCD(win, slide) = {gcd_ms / _MS}s"
                )
        _ = self.pane_seconds  # validate representability eagerly

    def with_pane(self, pane_seconds: float) -> "WindowSpec":
        """This spec re-expressed over a finer shared pane size."""
        if _to_ms(self.pane_seconds) == _to_ms(pane_seconds):
            return self
        from dataclasses import replace

        return replace(self, pane=pane_seconds)

    # -- derived quantities -------------------------------------------

    @property
    def pane_seconds(self) -> float:
        """Pane length: ``GCD(win, slide)`` or the finer override."""
        if self.pane is not None:
            return self.pane
        return math.gcd(_to_ms(self.win), _to_ms(self.slide)) / _MS

    @property
    def panes_per_window(self) -> int:
        """Number of panes a full window spans (``win / pane``)."""
        return _to_ms(self.win) // _to_ms(self.pane_seconds)

    @property
    def panes_per_slide(self) -> int:
        """Panes by which the window advances each execution."""
        return _to_ms(self.slide) // _to_ms(self.pane_seconds)

    @property
    def overlap(self) -> float:
        """The paper's overlap factor ``(win - slide) / win`` (Sec. 6.2)."""
        return (self.win - self.slide) / self.win

    # -- execution schedule --------------------------------------------

    def execution_time(self, recurrence: int) -> float:
        """Virtual time at which recurrence ``recurrence`` (1-based) fires.

        The first execution fires once a full window of data exists, at
        ``win``; each subsequent execution fires ``slide`` later.
        """
        if recurrence < 1:
            raise ValueError("recurrences are numbered from 1")
        return self.win + (recurrence - 1) * self.slide

    def window_bounds(self, recurrence: int) -> Tuple[float, float]:
        """The half-open data range ``[start, end)`` of a recurrence."""
        end = self.execution_time(recurrence)
        return end - self.win, end

    # -- pane coverage --------------------------------------------------

    def pane_bounds(self, index: int) -> Tuple[float, float]:
        """Time range ``[start, end)`` covered by pane ``index`` (0-based)."""
        if index < 0:
            raise ValueError("pane indices are non-negative")
        pane = self.pane_seconds
        return index * pane, (index + 1) * pane

    def pane_of_time(self, ts: float) -> int:
        """Index of the pane containing timestamp ``ts``.

        Record timestamps are arbitrary floats (only the window
        parameters must be millisecond-exact); a small epsilon guards
        against float noise at pane boundaries.
        """
        if ts < 0:
            raise ValueError("timestamps are non-negative")
        return int(math.floor((ts + 1e-9) / self.pane_seconds))

    def panes_in_window(self, recurrence: int) -> List[int]:
        """Pane indices covered by the given recurrence's window."""
        start, end = self.window_bounds(recurrence)
        pane_ms = _to_ms(self.pane_seconds)
        first = _to_ms(max(0.0, start)) // pane_ms
        last = (_to_ms(end) - 1) // pane_ms
        return list(range(first, last + 1))

    def new_panes_in_window(self, recurrence: int) -> List[int]:
        """Panes of this recurrence that were not in the previous one."""
        current = set(self.panes_in_window(recurrence))
        if recurrence == 1:
            return sorted(current)
        previous = set(self.panes_in_window(recurrence - 1))
        return sorted(current - previous)

    # -- lifespans (join expiration, paper Sec. 4.2) ---------------------

    def recurrences_containing_pane(self, index: int) -> Tuple[int, int]:
        """First and last recurrence whose window includes pane ``index``.

        Derived by inverting :meth:`panes_in_window`: recurrence ``k``
        covers panes ``[(k-1)S, (k-1)S + W - 1]`` where ``S =
        panes_per_slide`` and ``W = panes_per_window``, so pane ``i``
        belongs to recurrences with ``(i - W + 1)/S + 1 <= k <= i/S + 1``.
        """
        if index < 0:
            raise ValueError("pane indices are non-negative")
        s = self.panes_per_slide
        w = self.panes_per_window
        k_min = max(1, math.ceil((index - w + 1) / s) + 1)
        k_max = index // s + 1
        if k_max < k_min:  # can happen only for malformed specs; guard anyway
            raise ValueError(f"pane {index} is covered by no recurrence")
        return k_min, k_max

    def lifespan(self, index: int, partner: "WindowSpec") -> Tuple[int, int]:
        """Range of ``partner`` panes that pane ``index`` must meet.

        A pane of this source joins, over its lifetime, with every
        partner pane that shares *some* window with it. The pane may be
        purged only after all those pairings are done and it has left
        the current window (paper Sec. 4.2, Fig. 4).

        Requires both sources to share the same slide (they execute in
        lockstep — the paper's model for multi-source queries).
        """
        if _to_ms(self.slide) != _to_ms(partner.slide):
            raise ValueError(
                "lifespan is defined for sources sharing the same slide"
            )
        k_min, k_max = self.recurrences_containing_pane(index)
        first_partner = min(partner.panes_in_window(k_min))
        last_partner = max(partner.panes_in_window(k_max))
        return first_partner, last_partner


@dataclass(frozen=True)
class Pane:
    """A concrete pane: a source name plus a pane index."""

    source: str
    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("pane indices are non-negative")

    @property
    def pid(self) -> str:
        """The paper's pane identifier, e.g. ``S1P3``."""
        return pane_name(self.source, self.index)

    def __str__(self) -> str:
        return self.pid


def pane_name(source: str, index: int) -> str:
    """The ``S#P#`` identifier used throughout the paper's examples."""
    return f"{source}P{index}"


_PANE_RE = re.compile(r"^(?P<source>.+)P(?P<index>\d+)$")


def parse_pane_name(pid: str) -> Pane:
    """Invert :func:`pane_name`.

    Raises
    ------
    ValueError
        If ``pid`` does not follow the ``S#P#`` convention.
    """
    m = _PANE_RE.match(pid)
    if m is None:
        raise ValueError(f"not a pane identifier: {pid!r}")
    return Pane(source=m.group("source"), index=int(m.group("index")))


@dataclass(frozen=True)
class PaneRange:
    """A contiguous run of panes of one source, ``[first, last]`` inclusive."""

    source: str
    first: int
    last: int

    def __post_init__(self) -> None:
        if self.first < 0 or self.last < self.first:
            raise ValueError(f"invalid pane range [{self.first}, {self.last}]")

    def indices(self) -> List[int]:
        return list(range(self.first, self.last + 1))

    def __contains__(self, index: int) -> bool:
        return self.first <= index <= self.last

    def __len__(self) -> int:
        return self.last - self.first + 1


def pane_file_name(source: str, first: int, last: Optional[int] = None) -> str:
    """HDFS file name for panes, per the paper's convention (Sec. 3.2).

    Oversize case (one pane per file): ``S1P1``. Undersized case
    (several panes per file): ``S1P1_4`` meaning panes 1 through 4.
    """
    if last is None or last == first:
        return pane_name(source, first)
    if last < first:
        raise ValueError(f"invalid pane file range [{first}, {last}]")
    return f"{pane_name(source, first)}_{last}"
