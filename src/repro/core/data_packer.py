"""The Dynamic Data Packer: pane materialisation at load time (Sec. 3.2).

The packer executes the Semantic Analyzer's partition plan while data is
being loaded: each arriving batch's records are bucketed into panes by
timestamp, and a pane is *sealed* once every instant of its time range
has been covered by arrived batches. Sealed panes become HDFS files
following the paper's naming convention:

* oversize case — one pane per file, named ``S1P3``;
* undersized case — up to ``panes_per_file`` consecutive panes share a
  file, named ``S1P2_4`` (panes 2, 3 and 4), with a *pane header* that
  records each pane's byte offset so later reads can fetch a single
  pane without scanning the whole file.

Because batches arrive in time order, panes seal in index order. Groups
are normally written when complete; :meth:`DynamicDataPacker.flush`
force-writes the sealed remainder of a partial group (needed when a
query execution is due before a low-rate source fills its group), in
which case the group's remaining panes go to a follow-up file — the
range-encoded naming keeps every file self-describing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..hadoop.catalog import BatchFile
from ..hadoop.hdfs import SimulatedHDFS
from ..hadoop.types import Record, records_size
from .panes import WindowSpec, pane_file_name, pane_name
from .semantic_analyzer import PartitionPlan

__all__ = ["PaneLocator", "PaneFileHeader", "PackedPane", "DynamicDataPacker"]

#: Bytes charged for reading a pane file's header.
HEADER_BYTES = 256


@dataclass(frozen=True)
class PaneLocator:
    """Where one pane's records live inside a (possibly shared) file."""

    pane_index: int
    byte_offset: int
    byte_length: int
    record_offset: int
    record_count: int


@dataclass(frozen=True)
class PaneFileHeader:
    """The special multi-pane file header of Sec. 3.2.

    Maps pane index to a :class:`PaneLocator` so a reader interested in
    one pane seeks directly to it instead of scanning the file.
    """

    locators: Tuple[PaneLocator, ...]

    def locator(self, pane_index: int) -> PaneLocator:
        for loc in self.locators:
            if loc.pane_index == pane_index:
                return loc
        raise KeyError(f"pane {pane_index} is not in this file")

    @property
    def pane_indices(self) -> List[int]:
        return [loc.pane_index for loc in self.locators]


@dataclass(frozen=True)
class PackedPane:
    """A sealed pane: identifiers plus its physical location."""

    source: str
    index: int
    path: str
    nbytes: int
    num_records: int
    #: Virtual time the pane's data was fully available (seal time).
    available_at: float

    @property
    def pid(self) -> str:
        return pane_name(self.source, self.index)


class DynamicDataPacker:
    """Packs one source's batches into pane files per a partition plan."""

    def __init__(
        self,
        hdfs: SimulatedHDFS,
        spec: WindowSpec,
        plan: PartitionPlan,
        *,
        base_path: str = "/panes",
        use_header: bool = True,
    ) -> None:
        if abs(plan.pane_seconds - spec.pane_seconds) > 1e-9:
            raise ValueError(
                "partition plan pane size does not match the window spec"
            )
        self._hdfs = hdfs
        self._spec = spec
        self._plan = plan
        self._base_path = base_path.rstrip("/")
        self.use_header = use_header
        #: sealed-but-unwritten and still-filling panes, by index
        self._pending: Dict[int, List[Record]] = {}
        self._covered_until = 0.0
        self._next_to_write = 0
        #: pane index -> (path, header or None)
        self._written: Dict[int, Tuple[str, Optional[PaneFileHeader]]] = {}
        self._packed: Dict[int, PackedPane] = {}

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------

    @property
    def source(self) -> str:
        return self._plan.source

    @property
    def pane_seconds(self) -> float:
        """The pane granularity this packer materialises."""
        return self._plan.pane_seconds

    @property
    def covered_until(self) -> float:
        """Time up to which this source's data has fully arrived."""
        return self._covered_until

    def ingest_batch(
        self, batch: BatchFile, records: Sequence[Record]
    ) -> List[PackedPane]:
        """Bucket a batch's records into panes; write completed groups.

        Pane creation piggybacks on loading (paper Sec. 2.3): the packer
        partitions the records while the batch lands, so no query-time
        cost is charged for it. Returns the panes sealed *and written*
        by this batch.
        """
        if batch.source != self.source:
            raise ValueError(
                f"batch belongs to {batch.source!r}, packer to {self.source!r}"
            )
        if batch.t_start < self._covered_until - 1e-9:
            raise ValueError(
                f"batch {batch.path!r} arrives out of order: starts at "
                f"{batch.t_start} but source covered until {self._covered_until}"
            )
        for record in records:
            if not batch.t_start <= record.ts < batch.t_end:
                raise ValueError(
                    f"record at ts={record.ts} outside batch range "
                    f"[{batch.t_start}, {batch.t_end})"
                )
            idx = self._spec.pane_of_time(record.ts)
            self._pending.setdefault(idx, []).append(record)
        self._covered_until = max(self._covered_until, batch.t_end)
        return self._write_ready(force=False)

    def flush(self) -> List[PackedPane]:
        """Force-write every sealed pane, splitting partial groups."""
        return self._write_ready(force=True)

    # ------------------------------------------------------------------
    # pane access
    # ------------------------------------------------------------------

    def pane(self, index: int) -> PackedPane:
        """Metadata of a written pane.

        Raises
        ------
        KeyError
            If the pane has not been sealed and written yet.
        """
        try:
            return self._packed[index]
        except KeyError:
            raise KeyError(
                f"pane {pane_name(self.source, index)} has not been packed yet"
            ) from None

    def is_packed(self, index: int) -> bool:
        return index in self._packed

    def is_shared(self, index: int) -> bool:
        """Does pane ``index`` share its physical file with other panes?"""
        self.pane(index)  # raise KeyError for unpacked panes
        _path, header = self._written[index]
        return header is not None

    def packed_panes(self) -> List[PackedPane]:
        return [self._packed[i] for i in sorted(self._packed)]

    def read_pane(self, index: int) -> Tuple[Tuple[Record, ...], int]:
        """Read one pane's records, returning ``(records, bytes_charged)``.

        For multi-pane files with the header enabled, only the pane's
        own bytes (plus a small header read) are charged — the Sec. 3.2
        optimisation. With the header disabled (ablation), the entire
        shared file must be scanned.
        """
        self.pane(index)  # raise KeyError for unpacked panes
        path, header = self._written[index]
        hfile = self._hdfs.open(path)
        if header is None:
            return hfile.records, hfile.size
        loc = header.locator(index)
        records = hfile.records[
            loc.record_offset : loc.record_offset + loc.record_count
        ]
        if self.use_header:
            return records, loc.byte_length + HEADER_BYTES
        return records, hfile.size

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _sealed_unwritten(self) -> List[int]:
        """Pane indices sealed by arrived data but not yet written."""
        pane = self._spec.pane_seconds
        sealed: List[int] = []
        idx = self._next_to_write
        while (idx + 1) * pane <= self._covered_until + 1e-9:
            sealed.append(idx)
            idx += 1
        return sealed

    def _write_ready(self, *, force: bool) -> List[PackedPane]:
        ppf = self._plan.panes_per_file
        sealed = self._sealed_unwritten()
        written: List[PackedPane] = []
        cursor = 0
        while cursor < len(sealed):
            first = sealed[cursor]
            group = first // ppf
            group_end = (group + 1) * ppf - 1  # last pane of this group
            run = [first]
            while (
                cursor + len(run) < len(sealed)
                and sealed[cursor + len(run)] == run[-1] + 1
                and run[-1] + 1 <= group_end
            ):
                run.append(run[-1] + 1)
            group_complete = run[-1] == group_end
            if not (group_complete or force):
                break  # wait for the rest of the group
            written.extend(self._write_pane_file(run))
            cursor += len(run)
        return written

    def _write_pane_file(self, indices: List[int]) -> List[PackedPane]:
        source = self.source
        name = pane_file_name(source, indices[0], indices[-1])
        path = f"{self._base_path}/{source}/{name}"
        all_records: List[Record] = []
        locators: List[PaneLocator] = []
        byte_offset = 0
        for idx in indices:
            recs = self._pending.pop(idx, [])
            nbytes = records_size(recs)
            locators.append(
                PaneLocator(
                    pane_index=idx,
                    byte_offset=byte_offset,
                    byte_length=nbytes,
                    record_offset=len(all_records),
                    record_count=len(recs),
                )
            )
            all_records.extend(recs)
            byte_offset += nbytes
        seal_time = self._covered_until
        self._hdfs.create(path, all_records, created_at=seal_time)
        header = PaneFileHeader(tuple(locators)) if len(indices) > 1 else None
        packed: List[PackedPane] = []
        for loc in locators:
            self._written[loc.pane_index] = (path, header)
            pane = PackedPane(
                source=source,
                index=loc.pane_index,
                path=path,
                nbytes=loc.byte_length,
                num_records=loc.record_count,
                available_at=seal_time,
            )
            self._packed[loc.pane_index] = pane
            packed.append(pane)
        self._next_to_write = indices[-1] + 1
        return packed
