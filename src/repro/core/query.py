"""The recurring query model and client API (paper Secs. 2.1 and 5).

A :class:`RecurringQuery` is a plain MapReduce job plus:

* **window constraints** — a :class:`~repro.core.panes.WindowSpec`
  (``win``, ``slide``) per input source; all sources share the slide,
  so the query's recurrences fire in lockstep;
* **a finalization function** — merges the *partial* reduce outputs
  Redoop caches per pane (or pane combination) into the window's final
  answer. For the composition to be correct the user's reducer and
  finalizer must satisfy the algebraic-aggregation property::

      reducer(k, all window values)
          == finalize(k, [reducer output per pane/pane-pair])

  Sums, counts, min/max, and joins (with the default concatenating
  finalizer) all satisfy it;
* **input/output path functions** — the paper's ``GetInputPaths`` /
  ``GetOutputPaths`` hooks; sensible defaults are provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..hadoop.job import MapReduceJob
from ..hadoop.types import KeyValue
from .panes import WindowSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..plan import LogicalPlan

__all__ = [
    "MergingFinalizer",
    "RecurringQuery",
    "concat_finalizer",
    "merging_finalizer",
]

#: A window finalizer: ``(key, [pane partial values]) -> output pairs``.
#: The runtime always passes the partials as a list (never a lazy
#: iterable) — merge functions may index and re-iterate it.
FinalizeFn = Callable[[Any, List[Any]], Iterable[KeyValue]]
#: The paper's GetOutputPaths hook: ``recurrence number -> HDFS path``.
PathFn = Callable[[int], str]


def concat_finalizer(key: Any, partials: List[Any]) -> Iterable[KeyValue]:
    """The default finalizer: emit every partial value unchanged.

    Correct whenever the reducer's output pairs are independent across
    panes — joins and other per-tuple transformations.
    """
    for value in partials:
        yield key, value


class MergingFinalizer:
    """A finalizer that folds pane partials with ``merge``.

    A class rather than a closure so that queries built from it stay
    picklable — process execution backends and service checkpoints both
    ship the finalizer across a pickle boundary.
    """

    __slots__ = ("merge",)

    def __init__(self, merge: Callable[[List[Any]], Any]) -> None:
        self.merge = merge

    def __call__(self, key: Any, partials: List[Any]) -> Iterable[KeyValue]:
        yield key, self.merge(partials)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MergingFinalizer({getattr(self.merge, '__name__', self.merge)!r})"


def merging_finalizer(merge: Callable[[List[Any]], Any]) -> MergingFinalizer:
    """Build a finalizer that folds pane partials with ``merge``.

    Example: ``merging_finalizer(sum)`` turns per-pane counts into a
    window count. Returns the concrete :class:`MergingFinalizer`
    instance (a valid :data:`FinalizeFn`), so callers can reach its
    ``merge`` attribute — fingerprinting and pickling both do.
    """
    return MergingFinalizer(merge)


@dataclass(frozen=True)
class RecurringQuery:
    """A window-constrained recurring MapReduce query."""

    name: str
    job: MapReduceJob
    #: source name -> window constraints; one entry per input source.
    windows: Mapping[str, WindowSpec]
    finalize: FinalizeFn = concat_finalizer
    #: recurrence -> HDFS output path (the paper's GetOutputPaths).
    output_path_fn: Optional[PathFn] = None

    def __post_init__(self) -> None:
        if not self.windows:
            raise ValueError("a recurring query needs at least one source")
        slides = {round(spec.slide * 1000) for spec in self.windows.values()}
        if len(slides) > 1:
            raise ValueError(
                "all sources of a recurring query must share the same slide"
            )

    # ------------------------------------------------------------------
    # derived structure
    # ------------------------------------------------------------------

    def plan(self) -> "LogicalPlan":
        """The query's logical-plan IR (see :mod:`repro.plan`).

        Built on demand from the query's callables: one Scan → Map →
        Shuffle → Reduce pipeline per source plus the window-level
        Finalize node. The IR is what the semantic analyzer, the reuse
        fingerprinter, and the shared-scan optimizer consume; this
        constructor-by-callables API remains the thin client-facing
        shim over it.
        """
        from ..plan import LogicalPlan

        return LogicalPlan.from_query(self)

    @property
    def sources(self) -> Tuple[str, ...]:
        """Input sources in deterministic (sorted) order."""
        return tuple(sorted(self.windows))

    @property
    def num_sources(self) -> int:
        return len(self.windows)

    @property
    def slide(self) -> float:
        """The shared slide period of all sources."""
        return next(iter(self.windows.values())).slide

    def spec(self, source: str) -> WindowSpec:
        try:
            return self.windows[source]
        except KeyError:
            raise KeyError(
                f"query {self.name!r} does not read source {source!r}"
            ) from None

    # ------------------------------------------------------------------
    # schedule
    # ------------------------------------------------------------------

    def execution_time(self, recurrence: int) -> float:
        """When recurrence ``recurrence`` may fire: all windows complete."""
        return max(
            spec.execution_time(recurrence) for spec in self.windows.values()
        )

    def window_bounds(self, recurrence: int) -> Dict[str, Tuple[float, float]]:
        """Per-source data ranges of the recurrence."""
        return {
            src: self.windows[src].window_bounds(recurrence)
            for src in self.sources
        }

    # ------------------------------------------------------------------
    # paths (paper Sec. 5 GetInputPaths/GetOutputPaths)
    # ------------------------------------------------------------------

    def output_path(self, recurrence: int) -> str:
        """HDFS path for the recurrence's final output."""
        if self.output_path_fn is not None:
            return self.output_path_fn(recurrence)
        return f"/out/{self.name}/w{recurrence:04d}"
