"""Failure recovery for Redoop caches and nodes (paper Sec. 5).

Redoop keeps Hadoop's fault-tolerance guarantees while adding one new
failure domain: the caches, which live on task nodes' *local* file
systems and are therefore not protected by HDFS replication. Recovery
is metadata rollback plus re-execution:

* a **lost cache** rolls the pane's ready bit back to HDFS-available
  (the controller's ready listeners make the pane map-eligible again),
  removes any scheduled reduce tasks that relied on it from the
  scheduler's ``reduceTaskList`` — matching job-namespaced pane pids
  and combination pids alike — and lets the next recurrence rebuild it
  by re-running the producing tasks — "without incurring any
  additional costs" beyond that re-execution;
* a **lost node** additionally loses its slots and HDFS replicas; HDFS
  re-replicates blocks immediately, and every cache the node hosted is
  rolled back as above.

:class:`RecoveryManager` drives both paths against a
:class:`~repro.core.runtime.RedoopRuntime`, and doubles as the
injection point for the paper's Fig. 9 experiment (cache removals at
the start of each window).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..hadoop.faults import FaultInjector
from .cache_registry import cache_file_name
from .runtime import RedoopRuntime

__all__ = ["LostCache", "RecoveryManager"]


@dataclass(frozen=True, slots=True)
class LostCache:
    """Identifies one destroyed cache partition."""

    node_id: int
    pid: str
    cache_type: int
    partition: int

    @property
    def key(self) -> str:
        return f"{self.node_id}:{self.pid}:{self.cache_type}:{self.partition}"


class RecoveryManager:
    """Cache/node failure handling and injection for a Redoop runtime."""

    def __init__(self, runtime: RedoopRuntime) -> None:
        self.runtime = runtime

    # ------------------------------------------------------------------
    # inventory
    # ------------------------------------------------------------------

    def live_caches(self) -> List[LostCache]:
        """Every live cache partition across the cluster."""
        found: List[LostCache] = []
        for node_id, registry in sorted(self.runtime.registries().items()):
            if not registry.node.alive:
                continue
            for entry in registry.live_entries():
                if registry.node.has_local(entry.local_name):
                    found.append(
                        LostCache(
                            node_id=node_id,
                            pid=entry.pid,
                            cache_type=entry.cache_type,
                            partition=entry.partition,
                        )
                    )
        return found

    # ------------------------------------------------------------------
    # cache failures
    # ------------------------------------------------------------------

    def destroy_cache(self, victim: LostCache) -> None:
        """Destroy one cache partition and roll back its metadata.

        Implements Sec. 5's rollback: the data is deleted, the local
        registry forgets the entry, the controller reverts the pane's
        ready bit (if no copies remain — notifying ready listeners so
        the runtime re-marks the pane map-eligible), and any scheduled
        reduce task that depended on the cache leaves the reduce task
        list ("the scheduled tasks, using this cache, must be removed
        from the ReduceTaskList immediately"). The rollback itself is
        :meth:`~repro.core.runtime.RedoopRuntime.discard_cache` — the
        same path corruption detection and degraded windows take.
        """
        self.runtime.discard_cache(
            victim.node_id, victim.pid, victim.cache_type, victim.partition
        )

    def corrupt_cache(self, victim: LostCache) -> None:
        """Silently tamper with one cache partition's content.

        Unlike :meth:`destroy_cache`, no metadata changes: the registry
        row, controller ready bit, and placement all still claim the
        cache is good. The tampering only surfaces when the runtime
        reads the entry and its checksum fails — which must then funnel
        through the same rollback as a lost cache instead of leaking a
        wrong window.
        """
        runtime = self.runtime
        registry = runtime.registries().get(victim.node_id)
        if registry is None:
            raise ValueError(f"node {victim.node_id} holds no caches")
        name = cache_file_name(victim.pid, victim.cache_type, victim.partition)
        node = registry.node
        if not node.has_local(name):
            raise ValueError(f"node {victim.node_id} holds no file {name!r}")
        lf = node.read_local(name)
        poisoned = self._tamper(lf.payload)
        node.store_local(name, lf.size, poisoned, created_at=lf.created_at)
        runtime.counters.increment("faults.caches_corrupted")
        runtime.tracer.instant(
            "chaos.cache_corrupted",
            "chaos",
            time=runtime.cluster.clock.now,
            node_id=victim.node_id,
            pid=victim.pid,
            cache_type=victim.cache_type,
            partition=victim.partition,
        )

    @staticmethod
    def _tamper(payload: object) -> object:
        """A minimal content mutation that defeats the repr checksum."""
        if isinstance(payload, list):
            return payload + [("__corrupt__", -1)]
        if isinstance(payload, tuple):
            return payload + (("__corrupt__", -1),)
        return ("__corrupt__", payload)

    def inject_pane_cache_failures(
        self, injector: FaultInjector
    ) -> List[LostCache]:
        """Destroy all caches of a random fraction of *panes* (Fig. 9).

        The paper's fault-tolerance experiment removes cached
        intermediate data at pane granularity: a victim pane loses its
        reduce-input and reduce-output caches on every partition, and
        the next recurrence reconstructs them by re-mapping the pane.
        Caches of surviving panes keep being reused — which is why
        Redoop-with-failures still beats plain Hadoop.
        """
        pool = self.live_caches()
        pids = sorted({c.pid for c in pool})
        victims = set(injector.pick_cache_victims(pids))
        destroyed = [c for c in pool if c.pid in victims]
        for victim in destroyed:
            self.destroy_cache(victim)
        return destroyed

    def inject_cache_failures(
        self,
        injector: FaultInjector,
        *,
        cache_type: Optional[int] = None,
        fraction: Optional[float] = None,
    ) -> List[LostCache]:
        """Destroy a random fraction of live caches (Fig. 9 experiment).

        Parameters
        ----------
        injector:
            Supplies ``cache_loss_fraction`` and the seeded RNG.
        cache_type:
            Restrict victims to one cache type (e.g. only reduce-output
            caches); ``None`` targets both types.
        fraction:
            Override the injector's ``cache_loss_fraction`` for this
            round (chaos events carry their own fractions).
        """
        pool = self.live_caches()
        if cache_type is not None:
            pool = [c for c in pool if c.cache_type == cache_type]
        by_key = {c.key: c for c in pool}
        victims = injector.pick_cache_victims(sorted(by_key), fraction=fraction)
        destroyed = [by_key[k] for k in victims]
        for victim in destroyed:
            self.destroy_cache(victim)
        return destroyed

    def inject_cache_corruption(
        self,
        injector: FaultInjector,
        *,
        cache_type: Optional[int] = None,
        fraction: Optional[float] = None,
    ) -> List[LostCache]:
        """Silently corrupt a random fraction of live caches.

        The complement of :meth:`inject_cache_failures`: nothing is
        rolled back here — detection is the runtime's job, via the
        content checksums, when (and only when) the poisoned entry is
        next read.
        """
        pool = self.live_caches()
        if cache_type is not None:
            pool = [c for c in pool if c.cache_type == cache_type]
        by_key = {c.key: c for c in pool}
        victims = injector.pick_corruption_victims(sorted(by_key), fraction=fraction)
        corrupted = [by_key[k] for k in victims]
        for victim in corrupted:
            self.corrupt_cache(victim)
        return corrupted

    # ------------------------------------------------------------------
    # node failures
    # ------------------------------------------------------------------

    def fail_node(self, node_id: int) -> List[Tuple[str, int, int]]:
        """Kill a slave node and roll back everything it hosted.

        Returns the ``(pid, cache_type, partition)`` triples of caches
        lost with the node. The next recurrence reconstructs them by
        re-executing the producing tasks on other nodes (the caches
        land wherever those re-executions run — Sec. 5, item 2).
        """
        runtime = self.runtime
        runtime.cluster.fail_node(node_id)
        registry = runtime.registries().get(node_id)
        if registry is not None:
            registry.forget_all()
        lost = runtime.controller.node_lost(node_id)
        for pid, _cache_type, _partition in lost:
            runtime.scheduler.drop_reduce_tasks_using(pid)
        runtime.counters.increment("faults.nodes_failed")
        runtime.tracer.instant(
            "node.lost",
            "fault",
            time=runtime.cluster.clock.now,
            node_id=node_id,
            caches_lost=len(lost),
        )
        return lost

    def recover_node(self, node_id: int) -> None:
        """Bring a failed node back with empty local state."""
        runtime = self.runtime
        runtime.cluster.recover_node(node_id)
        runtime.counters.increment("faults.nodes_recovered")
        runtime.tracer.instant(
            "node.rejoined",
            "fault",
            time=runtime.cluster.clock.now,
            node_id=node_id,
        )
