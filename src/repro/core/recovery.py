"""Failure recovery for Redoop caches and nodes (paper Sec. 5).

Redoop keeps Hadoop's fault-tolerance guarantees while adding one new
failure domain: the caches, which live on task nodes' *local* file
systems and are therefore not protected by HDFS replication. Recovery
is metadata rollback plus re-execution:

* a **lost cache** rolls the pane's ready bit back to HDFS-available
  (the controller's ready listeners make the pane map-eligible again),
  removes any scheduled reduce tasks that relied on it from the
  scheduler's ``reduceTaskList`` — matching job-namespaced pane pids
  and combination pids alike — and lets the next recurrence rebuild it
  by re-running the producing tasks — "without incurring any
  additional costs" beyond that re-execution;
* a **lost node** additionally loses its slots and HDFS replicas; HDFS
  re-replicates blocks immediately, and every cache the node hosted is
  rolled back as above.

:class:`RecoveryManager` drives both paths against a
:class:`~repro.core.runtime.RedoopRuntime`, and doubles as the
injection point for the paper's Fig. 9 experiment (cache removals at
the start of each window).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..hadoop.faults import FaultInjector
from .cache_registry import REDUCE_INPUT, REDUCE_OUTPUT, cache_file_name
from .runtime import RedoopRuntime

__all__ = ["LostCache", "RecoveryManager"]


@dataclass(frozen=True, slots=True)
class LostCache:
    """Identifies one destroyed cache partition."""

    node_id: int
    pid: str
    cache_type: int
    partition: int

    @property
    def key(self) -> str:
        return f"{self.node_id}:{self.pid}:{self.cache_type}:{self.partition}"


class RecoveryManager:
    """Cache/node failure handling and injection for a Redoop runtime."""

    def __init__(self, runtime: RedoopRuntime) -> None:
        self.runtime = runtime

    # ------------------------------------------------------------------
    # inventory
    # ------------------------------------------------------------------

    def live_caches(self) -> List[LostCache]:
        """Every live cache partition across the cluster."""
        found: List[LostCache] = []
        for node_id, registry in sorted(self.runtime.registries().items()):
            if not registry.node.alive:
                continue
            for entry in registry.live_entries():
                if registry.node.has_local(entry.local_name):
                    found.append(
                        LostCache(
                            node_id=node_id,
                            pid=entry.pid,
                            cache_type=entry.cache_type,
                            partition=entry.partition,
                        )
                    )
        return found

    # ------------------------------------------------------------------
    # cache failures
    # ------------------------------------------------------------------

    def destroy_cache(self, victim: LostCache) -> None:
        """Destroy one cache partition and roll back its metadata.

        Implements Sec. 5's rollback: the data is deleted, the local
        registry forgets the entry, the controller reverts the pane's
        ready bit (if no copies remain — notifying ready listeners so
        the runtime re-marks the pane map-eligible), and any scheduled
        reduce task that depended on the cache leaves the reduce task
        list ("the scheduled tasks, using this cache, must be removed
        from the ReduceTaskList immediately").
        """
        runtime = self.runtime
        registries = runtime.registries()
        registry = registries.get(victim.node_id)
        if registry is None:
            raise ValueError(f"node {victim.node_id} holds no caches")
        name = cache_file_name(victim.pid, victim.cache_type, victim.partition)
        if registry.node.has_local(name):
            registry.node.delete_local(name)
        registry.drop_lost(victim.pid, victim.cache_type, victim.partition)
        runtime.controller.cache_lost(
            victim.pid, victim.cache_type, victim.partition
        )
        runtime.scheduler.drop_reduce_tasks_using(victim.pid)
        runtime.counters.increment("faults.caches_destroyed")
        runtime.tracer.instant(
            "cache.lost",
            "fault",
            time=runtime.cluster.clock.now,
            node_id=victim.node_id,
            pid=victim.pid,
            cache_type=victim.cache_type,
            partition=victim.partition,
        )

    def inject_pane_cache_failures(
        self, injector: FaultInjector
    ) -> List[LostCache]:
        """Destroy all caches of a random fraction of *panes* (Fig. 9).

        The paper's fault-tolerance experiment removes cached
        intermediate data at pane granularity: a victim pane loses its
        reduce-input and reduce-output caches on every partition, and
        the next recurrence reconstructs them by re-mapping the pane.
        Caches of surviving panes keep being reused — which is why
        Redoop-with-failures still beats plain Hadoop.
        """
        pool = self.live_caches()
        pids = sorted({c.pid for c in pool})
        victims = set(injector.pick_cache_victims(pids))
        destroyed = [c for c in pool if c.pid in victims]
        for victim in destroyed:
            self.destroy_cache(victim)
        return destroyed

    def inject_cache_failures(
        self, injector: FaultInjector, *, cache_type: Optional[int] = None
    ) -> List[LostCache]:
        """Destroy a random fraction of live caches (Fig. 9 experiment).

        Parameters
        ----------
        injector:
            Supplies ``cache_loss_fraction`` and the seeded RNG.
        cache_type:
            Restrict victims to one cache type (e.g. only reduce-output
            caches); ``None`` targets both types.
        """
        pool = self.live_caches()
        if cache_type is not None:
            pool = [c for c in pool if c.cache_type == cache_type]
        by_key = {c.key: c for c in pool}
        victims = injector.pick_cache_victims(sorted(by_key))
        destroyed = [by_key[k] for k in victims]
        for victim in destroyed:
            self.destroy_cache(victim)
        return destroyed

    # ------------------------------------------------------------------
    # node failures
    # ------------------------------------------------------------------

    def fail_node(self, node_id: int) -> List[Tuple[str, int, int]]:
        """Kill a slave node and roll back everything it hosted.

        Returns the ``(pid, cache_type, partition)`` triples of caches
        lost with the node. The next recurrence reconstructs them by
        re-executing the producing tasks on other nodes (the caches
        land wherever those re-executions run — Sec. 5, item 2).
        """
        runtime = self.runtime
        runtime.cluster.fail_node(node_id)
        registry = runtime.registries().get(node_id)
        if registry is not None:
            registry.forget_all()
        lost = runtime.controller.node_lost(node_id)
        for pid, _cache_type, _partition in lost:
            runtime.scheduler.drop_reduce_tasks_using(pid)
        runtime.counters.increment("faults.nodes_failed")
        return lost

    def recover_node(self, node_id: int) -> None:
        """Bring a failed node back with empty local state."""
        self.runtime.cluster.recover_node(node_id)
