"""The per-query Cache Status Matrix (paper Sec. 4.2, Table 3, Fig. 4).

For each registered recurring query the window-aware cache controller
keeps one status matrix with a dimension per data source. Each cell
marks whether the query's reduce operation has processed the
corresponding combination of panes (for a binary join: the pane pair).
The matrix answers three questions:

* *update* — a reduce task finished for panes ``(i, j, ...)``;
* *expiration* — may pane ``i`` of source ``A`` be purged? Only when it
  has left the current window **and** every cell it co-occurs with
  (its lifespan partners) is done;
* *shift/purge* — leading expired panes are removed so the matrix does
  not grow without bound (Fig. 4(c)).

The implementation stores done cells in a set and tracks a per-source
``base`` index (the lowest pane still represented). Cells below the
base are implicitly done: the base advances only past expired panes,
and a pane can only expire after every one of its required cells is
done — so discarding them loses no information.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Mapping, Sequence, Set, Tuple

from .panes import WindowSpec

__all__ = ["CacheStatusMatrix"]

Coords = Tuple[int, ...]


class CacheStatusMatrix:
    """Tracks which pane combinations a query has finished reducing."""

    def __init__(self, specs: Mapping[str, WindowSpec]) -> None:
        if not specs:
            raise ValueError("a status matrix needs at least one source")
        slides = {round(spec.slide * 1000) for spec in specs.values()}
        if len(slides) > 1:
            raise ValueError(
                "all sources of one query must share the same slide"
            )
        self._sources: Tuple[str, ...] = tuple(sorted(specs))
        self._specs: Dict[str, WindowSpec] = dict(specs)
        self._done: Set[Coords] = set()
        self._base: Dict[str, int] = {src: 0 for src in self._sources}

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def sources(self) -> Tuple[str, ...]:
        """Dimension order of coordinate tuples."""
        return self._sources

    def base(self, source: str) -> int:
        """Lowest pane index of ``source`` still tracked by the matrix."""
        self._check_source(source)
        return self._base[source]

    def num_tracked_cells(self) -> int:
        """Explicitly stored done cells (monitoring/testing aid)."""
        return len(self._done)

    # ------------------------------------------------------------------
    # update (Fig. 4(b))
    # ------------------------------------------------------------------

    def _coords(self, panes: Mapping[str, int]) -> Coords:
        if set(panes) != set(self._sources):
            raise ValueError(
                f"expected panes for sources {self._sources}, got {sorted(panes)}"
            )
        for src, idx in panes.items():
            if idx < 0:
                raise ValueError(f"negative pane index for {src!r}")
        return tuple(panes[src] for src in self._sources)

    def mark_done(self, panes: Mapping[str, int]) -> None:
        """Record that the reduce over this pane combination completed."""
        coords = self._coords(panes)
        if self._below_base(coords):
            return  # already purged, hence already done
        self._done.add(coords)

    def is_done(self, panes: Mapping[str, int]) -> bool:
        """Has this pane combination been reduced already?"""
        coords = self._coords(panes)
        return self._below_base(coords) or coords in self._done

    def _below_base(self, coords: Coords) -> bool:
        return any(
            coords[d] < self._base[src] for d, src in enumerate(self._sources)
        )

    # ------------------------------------------------------------------
    # expiration (Sec. 4.2 "Expiration")
    # ------------------------------------------------------------------

    def required_cells(self, source: str, index: int) -> Set[Coords]:
        """Every cell pane ``index`` of ``source`` co-occurs with.

        The union, over windows containing the pane, of the cross
        product of the *other* sources' panes in that window — exactly
        the pairings the query will eventually reduce. (The pane's
        lifespan of Sec. 4.2 is the projection of this set onto each
        partner dimension.)
        """
        self._check_source(source)
        spec = self._specs[source]
        k_min, k_max = spec.recurrences_containing_pane(index)
        dim = self._sources.index(source)
        cells: Set[Coords] = set()
        for k in range(k_min, k_max + 1):
            per_dim: List[Sequence[int]] = []
            for d, src in enumerate(self._sources):
                if d == dim:
                    per_dim.append((index,))
                else:
                    per_dim.append(self._specs[src].panes_in_window(k))
            cells.update(product(*per_dim))
        return cells

    def remaining_uses(self, source: str, index: int) -> int:
        """How many of the pane's lifespan cells are still unreduced.

        The count drives the window-aware ``lifespan`` eviction policy
        (:mod:`repro.core.eviction`): a pane with zero remaining uses
        is about to expire anyway, while a high count means future
        windows will reduce it again and again. Cells below the base
        are implicitly done and never counted.
        """
        return sum(
            1
            for c in self.required_cells(source, index)
            if not (self._below_base(c) or c in self._done)
        )

    def pane_expired(
        self, source: str, index: int, current_recurrence: int
    ) -> bool:
        """May pane ``index`` of ``source`` be purged (paper's two tests)?

        1. The pane is no longer part of the source's current window.
        2. All cells within its lifespan are done.
        """
        self._check_source(source)
        spec = self._specs[source]
        current = spec.panes_in_window(current_recurrence)
        if index >= min(current):
            # Still in (or ahead of) the current window.
            return False
        return all(
            self._below_base(c) or c in self._done
            for c in self.required_cells(source, index)
        )

    def expired_panes(self, current_recurrence: int) -> Dict[str, List[int]]:
        """All currently purgeable panes, per source."""
        expired: Dict[str, List[int]] = {}
        for src in self._sources:
            spec = self._specs[src]
            upper = min(spec.panes_in_window(current_recurrence))
            hits = [
                idx
                for idx in range(self._base[src], upper)
                if self.pane_expired(src, idx, current_recurrence)
            ]
            if hits:
                expired[src] = hits
        return expired

    # ------------------------------------------------------------------
    # shift / purge (Fig. 4(c))
    # ------------------------------------------------------------------

    def shift(self, current_recurrence: int) -> Dict[str, List[int]]:
        """Purge leading expired panes in every dimension.

        Scans each dimension from the low-index side and removes the
        run of consecutive expired panes (the paper's shift); stops at
        the first pane that is still live, even if later panes happen
        to be done (Fig. 4's (S1P5, S2P5) example). Returns the purged
        pane indices per source.
        """
        purged: Dict[str, List[int]] = {}
        for src in self._sources:
            removed: List[int] = []
            while self.pane_expired(src, self._base[src], current_recurrence):
                removed.append(self._base[src])
                self._base[src] += 1
            if removed:
                purged[src] = removed
        if purged:
            self._done = {c for c in self._done if not self._below_base(c)}
        return purged

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _check_source(self, source: str) -> None:
        if source not in self._specs:
            raise ValueError(f"unknown source {source!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bases = ", ".join(f"{s}>={self._base[s]}" for s in self._sources)
        return f"CacheStatusMatrix({bases}, done={len(self._done)})"
