"""The master-side Window-Aware Cache Controller (paper Sec. 4.2).

Housed on the master node, the controller consolidates the local cache
registries of every task node into compact *cache signatures* —
``(pid, nid, type, ready, doneQueryMask)`` rows (Table 2) — and keeps
one :class:`~repro.core.status_matrix.CacheStatusMatrix` per registered
query. It drives three things:

* **readiness** — a pane progresses ``NOT_AVAILABLE -> HDFS_AVAILABLE
  -> CACHE_AVAILABLE``; the first transition makes its map task
  schedulable, the second makes cache-reusing reduce tasks schedulable
  (Sec. 4.3);
* **expiration** — when a query finishes with a pane (status-matrix
  expiration), the query's bit in the pane's ``doneQueryMask`` flips;
  once every bit is set, purge notifications go out to the nodes
  hosting the cache;
* **failure rollback** — lost caches revert the pane's ready bit to
  ``HDFS_AVAILABLE`` so the scheduler re-creates them (Sec. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple

from .panes import WindowSpec, pane_name, parse_pane_name
from .status_matrix import CacheStatusMatrix

__all__ = [
    "NOT_AVAILABLE",
    "HDFS_AVAILABLE",
    "CACHE_AVAILABLE",
    "CacheSignature",
    "PurgeNotification",
    "ReadyListener",
    "WindowAwareCacheController",
]

#: Ready-bit domain (Table 2).
NOT_AVAILABLE = 0
HDFS_AVAILABLE = 1
CACHE_AVAILABLE = 2


@dataclass(slots=True)
class CacheSignature:
    """One consolidated cache row: pid, type, placements, done mask."""

    pid: str
    cache_type: int
    #: partition -> node id hosting that partition's cache data.
    placements: Dict[int, int] = field(default_factory=dict)
    #: query name -> True once the query no longer needs this cache.
    done_query_mask: Dict[str, bool] = field(default_factory=dict)

    @property
    def nodes(self) -> Set[int]:
        return set(self.placements.values())

    def all_done(self) -> bool:
        """True when every registered query has finished with this cache."""
        return bool(self.done_query_mask) and all(self.done_query_mask.values())


@dataclass(frozen=True, slots=True)
class PurgeNotification:
    """Sent from the master to task nodes: purge this pid's caches."""

    pid: str
    node_ids: Tuple[int, ...]


@dataclass(slots=True)
class _QueryInfo:
    name: str
    specs: Dict[str, WindowSpec]
    matrix: CacheStatusMatrix


#: Callback signature for ready-bit transitions: ``(pid, old, new)``.
ReadyListener = Callable[[str, int, int], None]


class WindowAwareCacheController:
    """Global cache metadata and per-query status matrices.

    Ready-bit transitions drive the scheduler's task lists (Sec. 4.3):
    interested parties (the runtime) subscribe via
    :meth:`add_ready_listener` and are notified of every transition —
    a pane reaching ``HDFS_AVAILABLE`` makes its map task schedulable,
    reaching ``CACHE_AVAILABLE`` makes cache-reusing reduce tasks
    schedulable, and a failure rollback to ``HDFS_AVAILABLE`` makes the
    pane map-eligible again.
    """

    def __init__(self) -> None:
        self._queries: Dict[str, _QueryInfo] = {}
        self._signatures: Dict[Tuple[str, int], CacheSignature] = {}
        self._pane_ready: Dict[str, int] = {}
        self._ready_listeners: List[ReadyListener] = []

    # ------------------------------------------------------------------
    # query registration
    # ------------------------------------------------------------------

    def register_query(
        self, name: str, specs: Mapping[str, WindowSpec]
    ) -> CacheStatusMatrix:
        """Register a recurring query and initialise its status matrix.

        Existing signatures gain a mask bit for the new query: set for
        caches of sources the query does not read (the paper sets bits
        of unused caches to 1 at initialisation time).
        """
        if name in self._queries:
            raise ValueError(f"query {name!r} is already registered")
        info = _QueryInfo(
            name=name, specs=dict(specs), matrix=CacheStatusMatrix(specs)
        )
        self._queries[name] = info
        for signature in self._signatures.values():
            signature.done_query_mask[name] = not self._query_uses_pid(
                info, signature.pid
            )
        return info.matrix

    def unregister_query(self, name: str) -> List[PurgeNotification]:
        """Remove a query; caches it alone kept alive become purgeable."""
        if name not in self._queries:
            raise ValueError(f"query {name!r} is not registered")
        del self._queries[name]
        notifications: List[PurgeNotification] = []
        for signature in self._signatures.values():
            signature.done_query_mask.pop(name, None)
            if signature.all_done():
                notifications.append(
                    PurgeNotification(signature.pid, tuple(sorted(signature.nodes)))
                )
        return self._dedupe(notifications)

    def queries(self) -> List[str]:
        return sorted(self._queries)

    def matrix(self, query: str) -> CacheStatusMatrix:
        return self._info(query).matrix

    # ------------------------------------------------------------------
    # pane readiness
    # ------------------------------------------------------------------

    def add_ready_listener(self, listener: ReadyListener) -> None:
        """Subscribe to every pane ready-bit transition (Sec. 4.3)."""
        self._ready_listeners.append(listener)

    def _set_ready(self, pid: str, new: int) -> None:
        old = self._pane_ready.get(pid, NOT_AVAILABLE)
        if new == old:
            return
        self._pane_ready[pid] = new
        for listener in self._ready_listeners:
            listener(pid, old, new)

    def pane_ready(self, pid: str) -> int:
        """The pane's ready bit (0, 1, or 2)."""
        return self._pane_ready.get(pid, NOT_AVAILABLE)

    def ready_states(self) -> List[Tuple[str, int]]:
        """Snapshot of every pane's ready bit, sorted by pid.

        Used by the chaos invariant checker (ready bits vs. registry
        entries) and by degraded-window rollback to restore the
        runtime's map-eligible set.
        """
        return sorted(self._pane_ready.items())

    def pane_arrived(self, pid: str) -> None:
        """A pane file landed in HDFS: ready becomes HDFS_AVAILABLE."""
        if self._pane_ready.get(pid, NOT_AVAILABLE) < HDFS_AVAILABLE:
            self._set_ready(pid, HDFS_AVAILABLE)

    def cache_created(
        self, pid: str, cache_type: int, partition: int, node_id: int
    ) -> CacheSignature:
        """A task node reported a new cache via its heartbeat sync."""
        key = (pid, cache_type)
        signature = self._signatures.get(key)
        if signature is None:
            signature = CacheSignature(pid=pid, cache_type=cache_type)
            for name, info in self._queries.items():
                signature.done_query_mask[name] = not self._query_uses_pid(
                    info, pid
                )
            self._signatures[key] = signature
        signature.placements[partition] = node_id
        self._set_ready(pid, CACHE_AVAILABLE)
        return signature

    def signature(self, pid: str, cache_type: int) -> Optional[CacheSignature]:
        return self._signatures.get((pid, cache_type))

    def signatures(self) -> List[CacheSignature]:
        return [self._signatures[k] for k in sorted(self._signatures)]

    def placement(
        self, pid: str, cache_type: int, partition: int
    ) -> Optional[int]:
        """Node hosting one partition's cache, or None if absent."""
        signature = self._signatures.get((pid, cache_type))
        if signature is None:
            return None
        return signature.placements.get(partition)

    # ------------------------------------------------------------------
    # reduce-completion bookkeeping and expiration
    # ------------------------------------------------------------------

    def remaining_uses(self, pid: str) -> int:
        """Unreduced status-matrix cells this cache still serves.

        Aggregated over every registered query that reads the pid's
        source(s) — the residual lifespan behind the ``doneQueryMask``:
        once every query's cells are done the count hits zero and the
        cache is purge-bait. Pane caches sum
        :meth:`CacheStatusMatrix.remaining_uses` per query; combination
        caches (join reduce outputs, ``AxB`` pids) serve exactly one
        cell, so they count 1 per query that has not reduced it yet.
        The window-aware eviction policy ranks victims by
        ``bytes x remaining_uses`` (:mod:`repro.core.eviction`).
        """
        parts = pid.split("x") if "x" in pid else [pid]
        panes = []
        for part in parts:
            try:
                panes.append(parse_pane_name(part))
            except ValueError:
                return 0
        total = 0
        for info in self._queries.values():
            if not self._query_uses_pid(info, pid):
                continue
            if len(panes) == 1:
                total += info.matrix.remaining_uses(
                    panes[0].source, panes[0].index
                )
                continue
            coords = {pane.source: pane.index for pane in panes}
            if set(coords) != set(info.matrix.sources):
                continue
            if not info.matrix.is_done(coords):
                total += 1
        return total

    def record_reduce_done(self, query: str, panes: Mapping[str, int]) -> None:
        """A reduce task over this pane combination completed (Fig. 4(b))."""
        self._info(query).matrix.mark_done(panes)

    def advance_window(
        self, query: str, recurrence: int
    ) -> List[PurgeNotification]:
        """Shift the query's matrix and emit any purge notifications.

        Called once per recurrence (the paper's default ``PurgeCycle``
        is the slide). Panes expired for this query flip their mask
        bit; caches whose every bit is set are announced for purging.
        """
        info = self._info(query)
        purged = info.matrix.shift(recurrence)
        notifications: List[PurgeNotification] = []
        for source, indices in purged.items():
            for index in indices:
                pid = pane_name(source, index)
                notifications.extend(self._mark_query_done(query, pid))
        # Combination caches (join reduce outputs) expire with their panes.
        expired_pids = {
            pane_name(src, idx)
            for src, indices in purged.items()
            for idx in indices
        }
        for (pid, _type), signature in list(self._signatures.items()):
            if "x" in pid and any(part in expired_pids for part in pid.split("x")):
                notifications.extend(self._mark_query_done(query, pid))
        return self._dedupe(notifications)

    def _mark_query_done(self, query: str, pid: str) -> List[PurgeNotification]:
        notifications: List[PurgeNotification] = []
        for (sig_pid, _type), signature in self._signatures.items():
            if sig_pid != pid:
                continue
            signature.done_query_mask[query] = True
            if signature.all_done():
                notifications.append(
                    PurgeNotification(pid, tuple(sorted(signature.nodes)))
                )
        return notifications

    # ------------------------------------------------------------------
    # failure rollback (Sec. 5 "Failure Recovery", item 3)
    # ------------------------------------------------------------------

    def cache_lost(
        self, pid: str, cache_type: int, partition: int
    ) -> None:
        """Roll back metadata for one lost cache partition.

        The pane's ready bit reverts to HDFS_AVAILABLE so the scheduler
        re-creates the cache by re-running the producing task.
        """
        signature = self._signatures.get((pid, cache_type))
        if signature is not None:
            signature.placements.pop(partition, None)
            if not signature.placements:
                del self._signatures[(pid, cache_type)]
        if self.pane_ready(pid) == CACHE_AVAILABLE and not self._has_any_cache(pid):
            self._set_ready(pid, HDFS_AVAILABLE)

    def node_lost(self, node_id: int) -> List[Tuple[str, int, int]]:
        """Roll back every cache hosted on a failed node.

        Returns the ``(pid, cache_type, partition)`` triples lost, so
        the runtime can schedule their re-construction.
        """
        lost: List[Tuple[str, int, int]] = []
        for (pid, cache_type), signature in list(self._signatures.items()):
            for partition, nid in list(signature.placements.items()):
                if nid == node_id:
                    lost.append((pid, cache_type, partition))
        for pid, cache_type, partition in lost:
            self.cache_lost(pid, cache_type, partition)
        return lost

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _has_any_cache(self, pid: str) -> bool:
        return any(sig_pid == pid for (sig_pid, _t) in self._signatures)

    def _info(self, query: str) -> _QueryInfo:
        try:
            return self._queries[query]
        except KeyError:
            raise ValueError(f"query {query!r} is not registered") from None

    @staticmethod
    def _query_uses_pid(info: _QueryInfo, pid: str) -> bool:
        """Does the query read the source(s) this cache belongs to?"""
        parts = pid.split("x") if "x" in pid else [pid]
        for part in parts:
            try:
                pane = parse_pane_name(part)
            except ValueError:
                return False
            if pane.source not in info.specs:
                return False
        return True

    @staticmethod
    def _dedupe(
        notifications: List[PurgeNotification],
    ) -> List[PurgeNotification]:
        seen: Set[str] = set()
        unique: List[PurgeNotification] = []
        for n in notifications:
            if n.pid not in seen:
                seen.add(n.pid)
                unique.append(n)
        return unique
