"""A declarative builder for algebraic recurring queries.

Writing a correct Redoop query by hand requires keeping three functions
(mapper, reducer, finalizer) algebraically consistent — the classic
source of silent incremental-processing bugs. This builder generates
all three from a declarative description, guaranteeing consistency:

    query = (
        RecurringQueryBuilder("traffic", source="wcc", win=3600, slide=360)
        .key("region")
        .count("hits")
        .sum("bytes", "volume")
        .avg("bytes", "avg_bytes")
        .min("bytes", "smallest")
        .distinct("client", "unique_clients")
        .build(num_reducers=60)
    )

Each measure is a commutative monoid (count/sum: +, min/max: lattice
meet/join, distinct: set union, avg: componentwise (sum, count)), so
per-pane partial outputs merge exactly and the window answer equals a
from-scratch computation. Window outputs are ``(key, row_dict)`` pairs
with one entry per declared measure (``avg`` is finalised to the
quotient at the very end).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Tuple

from ..hadoop.job import MapReduceJob
from ..hadoop.types import KeyValue, Record
from .panes import WindowSpec
from .query import RecurringQuery

__all__ = ["RecurringQueryBuilder"]


@dataclass(frozen=True)
class _Measure:
    """One aggregate column: how to seed, fold, merge, and present it."""

    name: str
    #: record payload -> the measure's seed contribution.
    seed: Callable[[dict], Any]
    #: fold two partial states into one (commutative, associative).
    merge: Callable[[Any, Any], Any]
    #: partial state -> presented value (identity for most measures).
    present: Callable[[Any], Any]


def _fold(measure: _Measure, states: Iterable[Any]) -> Any:
    it = iter(states)
    acc = next(it)
    for state in it:
        acc = measure.merge(acc, state)
    return acc


class RecurringQueryBuilder:
    """Fluent construction of algebraic grouped-aggregation queries."""

    def __init__(
        self, name: str, *, source: str, win: float, slide: float
    ) -> None:
        self._name = name
        self._source = source
        self._spec = WindowSpec(win=win, slide=slide)
        self._key_field: Optional[str] = None
        self._measures: List[_Measure] = []
        self._filter: Optional[Callable[[dict], bool]] = None

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------

    def key(self, field: str) -> "RecurringQueryBuilder":
        """Group records by this payload field."""
        if self._key_field is not None:
            raise ValueError("the grouping key is already set")
        self._key_field = field
        return self

    def where(
        self, predicate: Callable[[dict], bool]
    ) -> "RecurringQueryBuilder":
        """Keep only records whose payload satisfies ``predicate``."""
        if self._filter is not None:
            raise ValueError("a filter is already set")
        self._filter = predicate
        return self

    # ------------------------------------------------------------------
    # measures
    # ------------------------------------------------------------------

    def _add(self, measure: _Measure) -> "RecurringQueryBuilder":
        if any(m.name == measure.name for m in self._measures):
            raise ValueError(f"duplicate measure name {measure.name!r}")
        self._measures.append(measure)
        return self

    def count(self, name: str = "count") -> "RecurringQueryBuilder":
        """Number of records per key."""
        return self._add(
            _Measure(name, lambda _v: 1, lambda a, b: a + b, lambda s: s)
        )

    def sum(self, field: str, name: Optional[str] = None) -> "RecurringQueryBuilder":
        """Sum of a numeric payload field."""
        return self._add(
            _Measure(
                name or f"sum_{field}",
                lambda v: v[field],
                lambda a, b: a + b,
                lambda s: s,
            )
        )

    def min(self, field: str, name: Optional[str] = None) -> "RecurringQueryBuilder":
        """Minimum of a payload field."""
        return self._add(
            _Measure(
                name or f"min_{field}",
                lambda v: v[field],
                lambda a, b: a if a <= b else b,
                lambda s: s,
            )
        )

    def max(self, field: str, name: Optional[str] = None) -> "RecurringQueryBuilder":
        """Maximum of a payload field."""
        return self._add(
            _Measure(
                name or f"max_{field}",
                lambda v: v[field],
                lambda a, b: a if a >= b else b,
                lambda s: s,
            )
        )

    def avg(self, field: str, name: Optional[str] = None) -> "RecurringQueryBuilder":
        """Arithmetic mean of a payload field.

        Internally carried as a ``(sum, count)`` pair — the standard
        trick that makes the mean mergeable — and presented as the
        quotient only in the final output.
        """
        return self._add(
            _Measure(
                name or f"avg_{field}",
                lambda v: (v[field], 1),
                lambda a, b: (a[0] + b[0], a[1] + b[1]),
                lambda s: s[0] / s[1],
            )
        )

    def distinct(
        self, field: str, name: Optional[str] = None
    ) -> "RecurringQueryBuilder":
        """Count of distinct values of a payload field."""
        return self._add(
            _Measure(
                name or f"distinct_{field}",
                lambda v: frozenset((v[field],)),
                lambda a, b: a | b,
                lambda s: len(s),
            )
        )

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------

    def build(
        self,
        *,
        num_reducers: int = 60,
        intermediate_pair_size: int = 64,
        output_pair_size: int = 96,
    ) -> RecurringQuery:
        """Materialise the consistent (mapper, reducer, finalizer) triple."""
        if self._key_field is None:
            raise ValueError("call .key(<field>) before building")
        if not self._measures:
            raise ValueError("declare at least one measure before building")
        key_field = self._key_field
        measures = tuple(self._measures)
        predicate = self._filter

        def mapper(record: Record) -> Iterable[KeyValue]:
            value = record.value
            if predicate is not None and not predicate(value):
                return
            yield value[key_field], tuple(m.seed(value) for m in measures)

        def reducer(key: Any, states: List[Tuple]) -> Iterable[KeyValue]:
            yield key, tuple(
                _fold(m, (s[i] for s in states))
                for i, m in enumerate(measures)
            )

        def finalize(key: Any, partials: List[Tuple]) -> Iterable[KeyValue]:
            folded = tuple(
                _fold(m, (p[i] for p in partials))
                for i, m in enumerate(measures)
            )
            yield key, {
                m.name: m.present(folded[i]) for i, m in enumerate(measures)
            }

        job = MapReduceJob(
            name=self._name,
            mapper=mapper,
            reducer=reducer,
            combiner=reducer,  # the fold is closed over partial states
            num_reducers=num_reducers,
            intermediate_pair_size=intermediate_pair_size,
            output_pair_size=output_pair_size,
        )
        return RecurringQuery(
            name=self._name,
            job=job,
            windows={self._source: self._spec},
            finalize=finalize,
        )
