"""The Cache-Aware Task Scheduler (paper Sec. 4.3, Algorithm 2, Eq. 4).

Redoop extends Hadoop's TaskScheduler with two ideas:

* **task lists** — separate ``mapTaskList`` and ``reduceTaskList``
  queues fed by ready-bit transitions in the window-aware cache
  controller: a pane becoming HDFS-available enqueues its map task; a
  pane's cache becoming available pairs it with its lifespan partners
  and enqueues reduce tasks;
* **Eq. 4 node choice** — ``node = argmin_i (Load_i + C_task,i)``,
  where ``Load_i`` is the node's pending work and ``C_task,i`` the
  SOPA-style I/O cost of running the task on node ``i`` (cheap where
  the task's cached input lives, expensive elsewhere). This trades off
  cache locality against load balance: a fully loaded node loses the
  task even if it holds the cache.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from ..hadoop.cluster import Cluster
from ..hadoop.node import MAP_SLOT, REDUCE_SLOT, TaskNode

__all__ = ["MapTaskRequest", "ReduceTaskRequest", "CacheAwareTaskScheduler"]


@dataclass(frozen=True, slots=True)
class MapTaskRequest:
    """A schedulable map task: process one newly arrived pane."""

    query: str
    pid: str
    input_bytes: int
    #: HDFS nodes holding replicas of the pane's blocks.
    locations: Tuple[int, ...] = ()


@dataclass(frozen=True, slots=True)
class ReduceTaskRequest:
    """A schedulable reduce task: one pane combination, one partition."""

    query: str
    #: source -> pane index of the combination to reduce.
    panes: Tuple[Tuple[str, int], ...]
    partition: int
    #: total bytes the task must read.
    input_bytes: int
    #: node id -> bytes of the task's input cached on that node.
    cached_bytes_by_node: Tuple[Tuple[int, int], ...] = ()


class CacheAwareTaskScheduler:
    """Eq. 4 node selection plus the Algorithm 2 task lists."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.map_task_list: Deque[MapTaskRequest] = deque()
        self.reduce_task_list: Deque[ReduceTaskRequest] = deque()

    # ------------------------------------------------------------------
    # task lists (Algorithm 2 bookkeeping)
    # ------------------------------------------------------------------

    def enqueue_map(self, request: MapTaskRequest) -> None:
        """A pane became HDFS-available: its map task is schedulable."""
        self.map_task_list.append(request)

    def enqueue_reduce(self, request: ReduceTaskRequest) -> None:
        """A cache pairing became complete: its reduce task is schedulable."""
        self.reduce_task_list.append(request)

    def next_map(self) -> Optional[MapTaskRequest]:
        """FIFO pop from the map task list (Algorithm 2 lines 6-12)."""
        return self.map_task_list.popleft() if self.map_task_list else None

    def next_reduce(self) -> Optional[ReduceTaskRequest]:
        """Pop the most cache-covered reduce task (Algorithm 2 lines 13-18).

        The scheduler prefers tasks whose every input partition is
        cached, then tasks with at least one cached partition, then the
        rest — in FIFO order within each class.
        """
        if not self.reduce_task_list:
            return None
        best_idx = 0
        best_rank = self._cache_rank(self.reduce_task_list[0])
        for idx, request in enumerate(self.reduce_task_list):
            rank = self._cache_rank(request)
            if rank < best_rank:
                best_idx, best_rank = idx, rank
                if rank == 0:
                    break
        self.reduce_task_list.rotate(-best_idx)
        request = self.reduce_task_list.popleft()
        self.reduce_task_list.rotate(best_idx)
        return request

    @staticmethod
    def _cache_rank(request: ReduceTaskRequest) -> int:
        cached = sum(b for _n, b in request.cached_bytes_by_node)
        if request.input_bytes <= 0 or cached >= request.input_bytes:
            return 0  # fully cached
        if cached > 0:
            return 1  # partially cached
        return 2  # nothing cached

    def drop_reduce_tasks_using(self, pid: str) -> List[ReduceTaskRequest]:
        """Remove scheduled reduce tasks that relied on a lost cache.

        Sec. 5 failure recovery: "the scheduled tasks, using this cache,
        must be removed from the ReduceTaskList immediately." Returns
        the removed tasks so map tasks re-creating the cache can be
        enqueued.
        """
        from .panes import pane_name

        removed = [
            r
            for r in self.reduce_task_list
            if any(pane_name(src, idx) == pid for src, idx in r.panes)
        ]
        if removed:
            kept = [r for r in self.reduce_task_list if r not in removed]
            self.reduce_task_list = deque(kept)
        return removed

    # ------------------------------------------------------------------
    # Eq. 4 node selection
    # ------------------------------------------------------------------

    def select_map_node(
        self, request: MapTaskRequest, now: float
    ) -> TaskNode:
        """Place a map task: Eq. 4 with HDFS replica locality as C_task."""
        locations = set(request.locations)

        def io_cost(node: TaskNode) -> float:
            local = request.input_bytes if node.node_id in locations else 0
            return self.cluster.cost_model.task_io_cost(
                request.input_bytes, bytes_local=local
            )

        return self._argmin_eq4(MAP_SLOT, now, io_cost)

    def select_reduce_node(
        self, request: ReduceTaskRequest, now: float
    ) -> TaskNode:
        """Place a reduce task: Eq. 4 with cache residency as C_task."""
        cached = dict(request.cached_bytes_by_node)

        def io_cost(node: TaskNode) -> float:
            local = min(cached.get(node.node_id, 0), request.input_bytes)
            return self.cluster.cost_model.task_io_cost(
                request.input_bytes, bytes_local=local
            )

        return self._argmin_eq4(REDUCE_SLOT, now, io_cost)

    def _argmin_eq4(self, kind: str, now: float, io_cost) -> TaskNode:
        live = self.cluster.live_nodes()
        if not live:
            raise RuntimeError("no live nodes to schedule on")

        def objective(node: TaskNode) -> Tuple[float, int]:
            load = node.load_at(now)
            return (load + io_cost(node), node.node_id)

        return min(live, key=objective)
