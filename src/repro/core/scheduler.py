"""The Cache-Aware Task Scheduler (paper Sec. 4.3, Algorithm 2, Eq. 4).

Redoop extends Hadoop's TaskScheduler with two ideas:

* **task lists** — separate ``mapTaskList`` and ``reduceTaskList``
  queues fed by ready-bit transitions in the window-aware cache
  controller: a pane becoming HDFS-available enqueues its map task; a
  pane's cache becoming available pairs it with its lifespan partners
  and enqueues reduce tasks;
* **Eq. 4 node choice** — ``node = argmin_i (Load_i + C_task,i)``,
  where ``Load_i`` is the node's pending work and ``C_task,i`` the
  SOPA-style I/O cost of running the task on node ``i`` (cheap where
  the task's cached input lives, expensive elsewhere). This trades off
  cache locality against load balance: a fully loaded node loses the
  task even if it holds the cache.

The task lists are the *only* path to execution: the runtime enqueues
every map and reduce task, then drains the lists through
:meth:`~CacheAwareTaskScheduler.next_map` /
:meth:`~CacheAwareTaskScheduler.next_reduce` and executes exactly the
request each pop returns. Every pop, Eq. 4 selection, and recovery drop
is recorded in an attached
:class:`~repro.hadoop.timeline.SchedulingTrace` so tests and benchmarks
can assert *why* a node was chosen.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..hadoop.cluster import Cluster
from ..hadoop.counters import Counters
from ..hadoop.node import MAP_SLOT, REDUCE_SLOT, TaskNode
from ..hadoop.timeline import SchedulingDecision, SchedulingTrace

__all__ = ["MapTaskRequest", "ReduceTaskRequest", "CacheAwareTaskScheduler"]


@dataclass(frozen=True, slots=True)
class MapTaskRequest:
    """A schedulable map task: process one newly arrived pane."""

    query: str
    pid: str
    input_bytes: int
    #: HDFS nodes holding replicas of the pane's blocks.
    locations: Tuple[int, ...] = ()

    @property
    def task_id(self) -> str:
        return f"{self.query}/{self.pid}"


@dataclass(frozen=True, slots=True)
class ReduceTaskRequest:
    """A schedulable reduce task: one pane combination, one partition."""

    query: str
    #: source -> pane index of the combination to reduce.
    panes: Tuple[Tuple[str, int], ...]
    partition: int
    #: total bytes the task must read.
    input_bytes: int
    #: node id -> bytes of the task's input cached on that node.
    cached_bytes_by_node: Tuple[Tuple[int, int], ...] = ()

    @property
    def task_id(self) -> str:
        return f"{self.query}/p{self.partition}"

    def pane_pids(self) -> Tuple[str, ...]:
        """The pane identifiers this task reads, as the registry names them."""
        from .panes import pane_name

        return tuple(pane_name(src, idx) for src, idx in self.panes)


class CacheAwareTaskScheduler:
    """Eq. 4 node selection plus the Algorithm 2 task lists.

    Parameters
    ----------
    cluster:
        The cluster whose live nodes Eq. 4 chooses among.
    trace:
        Optional :class:`~repro.hadoop.timeline.SchedulingTrace`; every
        pop/select/drop decision is recorded there.
    counters:
        Optional :class:`~repro.hadoop.counters.Counters` bag receiving
        the ``sched.*`` counters (see ``docs/counters.md``).
    """

    def __init__(
        self,
        cluster: Cluster,
        *,
        trace: Optional[SchedulingTrace] = None,
        counters: Optional[Counters] = None,
    ) -> None:
        self.cluster = cluster
        self.trace = trace
        self.counters = counters
        self.map_task_list: Deque[MapTaskRequest] = deque()
        self.reduce_task_list: Deque[ReduceTaskRequest] = deque()
        #: node id -> accumulated task-failure score.
        self._failure_scores: Dict[int, float] = {}
        #: node id -> virtual time the blacklist expires.
        self._blacklisted_until: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # task lists (Algorithm 2 bookkeeping)
    # ------------------------------------------------------------------

    def enqueue_map(self, request: MapTaskRequest) -> None:
        """A pane became HDFS-available: its map task is schedulable."""
        self.map_task_list.append(request)
        self._count("sched.map_enqueued")

    def enqueue_reduce(self, request: ReduceTaskRequest) -> None:
        """A cache pairing became complete: its reduce task is schedulable."""
        self.reduce_task_list.append(request)
        self._count("sched.reduce_enqueued")

    def next_map(self) -> Optional[MapTaskRequest]:
        """FIFO pop from the map task list (Algorithm 2 lines 6-12)."""
        if not self.map_task_list:
            return None
        request = self.map_task_list.popleft()
        self._count("sched.map_dispatched")
        if self.trace is not None:
            self.trace.record(
                SchedulingDecision(
                    event="pop",
                    kind=MAP_SLOT,
                    task=request.task_id,
                    request=request,
                    queue_depth=len(self.map_task_list),
                )
            )
        return request

    def next_reduce(self) -> Optional[ReduceTaskRequest]:
        """Pop the most cache-covered reduce task (Algorithm 2 lines 13-18).

        The scheduler prefers tasks whose every input partition is
        cached, then tasks with at least one cached partition, then the
        rest — in FIFO order within each class.
        """
        if not self.reduce_task_list:
            return None
        best_idx = 0
        best_rank = self._cache_rank(self.reduce_task_list[0])
        if best_rank != 0:
            for idx, request in enumerate(self.reduce_task_list):
                rank = self._cache_rank(request)
                if rank < best_rank:
                    best_idx, best_rank = idx, rank
                    if rank == 0:
                        break
        self.reduce_task_list.rotate(-best_idx)
        request = self.reduce_task_list.popleft()
        self.reduce_task_list.rotate(best_idx)
        self._count("sched.reduce_dispatched")
        self._count(f"sched.reduce_rank{best_rank}_dispatched")
        if self.trace is not None:
            self.trace.record(
                SchedulingDecision(
                    event="pop",
                    kind=REDUCE_SLOT,
                    task=request.task_id,
                    request=request,
                    rank=best_rank,
                    queue_depth=len(self.reduce_task_list),
                )
            )
        return request

    @staticmethod
    def _cache_rank(request: ReduceTaskRequest) -> int:
        """Cache-coverage class: 0 fully cached, 1 partial, 2 uncached.

        A task with no input to read gains nothing from cache-first
        ordering, so ``input_bytes <= 0`` ranks *uncached* — ranking it
        "fully cached" would let degenerate (or phantom) requests jump
        every queue.
        """
        if request.input_bytes <= 0:
            return 2
        cached = sum(b for _n, b in request.cached_bytes_by_node)
        if cached >= request.input_bytes:
            return 0  # fully cached
        if cached > 0:
            return 1  # partially cached
        return 2  # nothing cached

    def drop_reduce_tasks_using(self, pid: str) -> List[ReduceTaskRequest]:
        """Remove scheduled reduce tasks that relied on a lost cache.

        Sec. 5 failure recovery: "the scheduled tasks, using this cache,
        must be removed from the ReduceTaskList immediately." Returns
        the removed tasks so map tasks re-creating the cache can be
        enqueued.

        ``pid`` may be a pane cache id (job-namespaced, e.g.
        ``wc:S1P3``) or a combination cache id (``wc:S1P3xwc:S2P4``);
        a queued task is dropped when any pane it reads matches any
        part of the lost pid. The filter is a single identity-safe
        pass, so equal duplicate requests are judged independently.
        """
        parts = frozenset(pid.split("x"))
        removed: List[ReduceTaskRequest] = []
        kept: Deque[ReduceTaskRequest] = deque()
        for request in self.reduce_task_list:
            if any(p in parts for p in request.pane_pids()):
                removed.append(request)
            else:
                kept.append(request)
        if removed:
            self.reduce_task_list = kept
            self._count("sched.reduce_dropped", len(removed))
            if self.trace is not None:
                for request in removed:
                    self.trace.record(
                        SchedulingDecision(
                            event="drop",
                            kind=REDUCE_SLOT,
                            task=request.task_id,
                            request=request,
                            queue_depth=len(kept),
                        )
                    )
        return removed

    def abort_pending(self, query: Optional[str] = None) -> int:
        """Flush pending task requests (degraded-window rollback).

        When a window is abandoned after attempt exhaustion, any tasks
        it already enqueued must not leak into the next recurrence.
        With ``query`` set, only that query's requests are discarded —
        in multi-tenant serve mode other queries' enqueued work must
        survive one tenant's degradation. ``None`` flushes everything
        (full-runtime teardown). Returns the number discarded.
        """
        if query is None:
            aborted = len(self.map_task_list) + len(self.reduce_task_list)
            if aborted:
                self.map_task_list.clear()
                self.reduce_task_list.clear()
        else:
            kept_maps = deque(
                r for r in self.map_task_list if r.query != query
            )
            kept_reduces = deque(
                r for r in self.reduce_task_list if r.query != query
            )
            aborted = (
                len(self.map_task_list)
                - len(kept_maps)
                + len(self.reduce_task_list)
                - len(kept_reduces)
            )
            self.map_task_list = kept_maps
            self.reduce_task_list = kept_reduces
        if aborted:
            self._count("sched.tasks_aborted", aborted)
        return aborted

    # ------------------------------------------------------------------
    # per-node failure scoring and blacklisting
    # ------------------------------------------------------------------

    def record_task_failure(
        self, node_id: int, now: float, *, failures: float = 1.0
    ) -> None:
        """Charge ``failures`` task failures against a node.

        Crossing ``config.blacklist_threshold`` blacklists the node for
        ``config.blacklist_cooldown`` virtual seconds: Eq. 4 treats it
        as infinite-cost (it is filtered from the candidate set) until
        the cooldown expires, at which point its score resets.
        """
        score = self._failure_scores.get(node_id, 0.0) + failures
        self._failure_scores[node_id] = score
        if (
            score >= self.cluster.config.blacklist_threshold
            and node_id not in self._blacklisted_until
        ):
            until = now + self.cluster.config.blacklist_cooldown
            self._blacklisted_until[node_id] = until
            self._count("sched.nodes_blacklisted")
            if self.trace is not None and self.trace.spine is not None:
                self.trace.spine.instant(
                    "node.blacklisted",
                    "fault",
                    time=now,
                    node_id=node_id,
                    score=score,
                    until=until,
                )

    def is_blacklisted(self, node_id: int, now: float) -> bool:
        """Whether Eq. 4 currently excludes the node (lazily expiring)."""
        until = self._blacklisted_until.get(node_id)
        if until is None:
            return False
        if now < until:
            return True
        del self._blacklisted_until[node_id]
        self._failure_scores.pop(node_id, None)
        self._count("sched.nodes_unblacklisted")
        if self.trace is not None and self.trace.spine is not None:
            self.trace.spine.instant(
                "node.unblacklisted",
                "fault",
                time=now,
                node_id=node_id,
            )
        return False

    def blacklisted_nodes(self, now: float) -> List[int]:
        """Currently blacklisted node ids (for monitoring/invariants)."""
        return sorted(
            n for n in list(self._blacklisted_until) if self.is_blacklisted(n, now)
        )

    # ------------------------------------------------------------------
    # Eq. 4 node selection
    # ------------------------------------------------------------------

    def select_map_node(
        self, request: MapTaskRequest, now: float
    ) -> TaskNode:
        """Place a map task: Eq. 4 with HDFS replica locality as C_task."""
        locations = set(request.locations)

        def io_cost(node: TaskNode) -> float:
            local = request.input_bytes if node.node_id in locations else 0
            return self.cluster.cost_model.task_io_cost(
                request.input_bytes, bytes_local=local
            )

        node = self._argmin_eq4(MAP_SLOT, now, io_cost)
        if node.node_id in locations:
            self._count("sched.map_local_selects")
        if self.trace is not None:
            self.trace.record(
                SchedulingDecision(
                    event="select",
                    kind=MAP_SLOT,
                    task=request.task_id,
                    request=request,
                    node_id=node.node_id,
                    load=node.load_at(now),
                    c_task=io_cost(node),
                    time=now,
                )
            )
        return node

    def select_reduce_node(
        self, request: ReduceTaskRequest, now: float
    ) -> TaskNode:
        """Place a reduce task: Eq. 4 with cache residency as C_task."""
        cached = dict(request.cached_bytes_by_node)

        def io_cost(node: TaskNode) -> float:
            local = min(cached.get(node.node_id, 0), request.input_bytes)
            return self.cluster.cost_model.task_io_cost(
                request.input_bytes, bytes_local=local
            )

        node = self._argmin_eq4(REDUCE_SLOT, now, io_cost)
        if cached.get(node.node_id, 0) > 0:
            self._count("sched.reduce_cache_local_selects")
        if self.trace is not None:
            self.trace.record(
                SchedulingDecision(
                    event="select",
                    kind=REDUCE_SLOT,
                    task=request.task_id,
                    request=request,
                    node_id=node.node_id,
                    load=node.load_at(now),
                    c_task=io_cost(node),
                    rank=self._cache_rank(request),
                    time=now,
                )
            )
        return node

    def _argmin_eq4(
        self, kind: str, now: float, io_cost: Callable[[TaskNode], float]
    ) -> TaskNode:
        live = self.cluster.live_nodes()
        if not live:
            raise RuntimeError("no live nodes to schedule on")
        # Blacklisted nodes carry infinite Eq. 4 cost — equivalently,
        # they leave the candidate set. If *every* live node is
        # blacklisted the cluster must still make progress, so the
        # filter degrades to "pick among all live nodes".
        candidates = [n for n in live if not self.is_blacklisted(n.node_id, now)]
        if not candidates:
            candidates = live

        def objective(node: TaskNode) -> Tuple[float, int]:
            load = node.load_at(now)
            return (load + io_cost(node), node.node_id)

        return min(candidates, key=objective)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.counters is not None:
            self.counters.increment(name, amount)
