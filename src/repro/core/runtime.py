"""The Redoop runtime: incremental, cache-aware recurring-query execution.

This is the paper's advanced task execution manager (Sec. 2.3) tying
every component together. For each registered
:class:`~repro.core.query.RecurringQuery` it:

1. plans pane partitioning (Semantic Analyzer) and packs arriving
   batches into pane files (Dynamic Data Packer);
2. on each recurrence, *maps and shuffles only the new panes* — panes
   already holding reduce-input caches are reused in place;
3. caches, on the task nodes' local file systems, both the reduce input
   of every pane and the reduce output of every pane (aggregation) or
   pane combination (join), and merges cached partial outputs into the
   window answer with the query's finalize function;
4. schedules all tasks through the cache-aware scheduler (Eq. 4);
5. feeds execution statistics to the profiler and — in adaptive mode —
   switches to *proactive* processing, mapping panes as soon as their
   data arrives instead of waiting for the window to close (Sec. 3.3);
6. maintains all cache metadata (registries, controller, status
   matrices) including expiration, purging, and failure rollback.

Execution stages per recurrence (all on virtual time):

* **map** — one map task per new pane (header-optimised pane reads);
* **pane-reduce** — per (pane, partition): shuffle transfer, sort, and
  reduce-input cache write; aggregation queries additionally reduce the
  pane and write its reduce-output cache;
* **combine** — per partition: joins compute the outstanding pane
  combinations from reduce-input caches; the finalize step then merges
  the window's cached partial outputs into the final answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..hadoop.catalog import BatchFile
from ..hadoop.cluster import Cluster
from ..hadoop.counters import Counters, PhaseTimes
from ..hadoop.faults import FaultInjector, TaskAttemptsExhaustedError
from ..hadoop.node import MAP_SLOT, REDUCE_SLOT, TaskNode
from ..exec import ExecBackend, SerialBackend, WorkerFaultError
from ..hadoop.shuffle import group_sorted, sort_pairs
from ..hadoop.task import execute_finalize, execute_map, execute_pane_reduce
from ..hadoop.timeline import SchedulingDecision, SchedulingTrace
from ..hadoop.types import KeyValue, Record
from repro.trace import (
    CAT_FAULT,
    CAT_PHASE,
    CAT_RECURRENCE,
    CAT_RUN,
    CAT_TASK,
    PHASE_NAMES,
    Span,
    Tracer,
)
from .cache_controller import (
    CACHE_AVAILABLE,
    HDFS_AVAILABLE,
    WindowAwareCacheController,
)
from .cache_registry import (
    REDUCE_INPUT,
    REDUCE_OUTPUT,
    CacheCorruptionError,
    LocalCacheRegistry,
    cache_file_name,
)
from .data_packer import DynamicDataPacker
from .eviction import make_policy, select_victims
from .panes import WindowSpec, pane_name
from .profiler import ExecutionProfiler
from .query import RecurringQuery
from .scheduler import CacheAwareTaskScheduler, MapTaskRequest, ReduceTaskRequest
from .semantic_analyzer import PartitionPlan, SemanticAnalyzer, SourceStats

__all__ = ["RecurrenceResult", "RedoopRuntime"]


def pair_pid(panes: Mapping[str, int]) -> str:
    """Cache pid for a pane combination, e.g. ``S1P3xS2P4``.

    Single-source combinations collapse to the plain pane id.
    """
    parts = [pane_name(src, panes[src]) for src in sorted(panes)]
    return "x".join(parts)


@dataclass(slots=True)
class RecurrenceResult:
    """Everything measured about one executed recurrence."""

    query: str
    recurrence: int
    #: per-source half-open data ranges.
    window_bounds: Dict[str, Tuple[float, float]]
    #: when the window's data was complete and the execution became due.
    due_time: float
    start_time: float
    finish_time: float
    phase_times: PhaseTimes
    output: List[KeyValue]
    counters: Counters
    #: The window was abandoned after attempt exhaustion: its caches
    #: were rolled back, its output is empty, later windows proceed.
    degraded: bool = False

    @property
    def response_time(self) -> float:
        """Virtual seconds from the execution being due to final output.

        This is the paper's per-window processing time: proactive work
        done before the window closed does not count, queueing behind
        an overrunning previous recurrence does.
        """
        return self.finish_time - self.due_time


@dataclass
class _PaneWork:
    """Timing/state of one pane's map + pane-reduce pipeline."""

    map_finish: float = 0.0
    #: partition -> pane-reduce finish time.
    reduce_finish: Dict[int, float] = field(default_factory=dict)


@dataclass
class _PartialMap:
    """Accumulated proactive map output for a still-filling pane.

    In proactive mode (Sec. 3.3) the runtime maps each arriving batch's
    slice of a pane — a *sub-pane* — as soon as it lands, instead of
    waiting for the window to close. The partial map outputs accumulate
    here until the pane seals.
    """

    partitioned: Dict[int, List[KeyValue]] = field(default_factory=dict)
    records_mapped: int = 0
    bytes_mapped: int = 0
    map_finish: float = 0.0
    chunks: int = 0

    def absorb(self, partitioned: Mapping[int, List[KeyValue]]) -> None:
        for partition, pairs in partitioned.items():
            self.partitioned.setdefault(partition, []).extend(pairs)


@dataclass
class _QueryState:
    query: RecurringQuery
    plans: Dict[str, PartitionPlan]
    #: source -> packer; shared across queries reading the same source.
    packers: Dict[str, DynamicDataPacker]
    #: source -> window spec re-expressed over the source's shared pane.
    eff_specs: Dict[str, WindowSpec]
    profiler: ExecutionProfiler
    #: sticky partition -> preferred reduce node; shared per job so
    #: queries sharing a job co-locate their caches.
    partition_nodes: Dict[int, int] = field(default_factory=dict)
    #: (source, index) -> in-flight/finished pane work this window.
    pane_work: Dict[Tuple[str, int], _PaneWork] = field(default_factory=dict)
    #: (source, index) -> proactive sub-pane map output, pre-seal.
    partials: Dict[Tuple[str, int], _PartialMap] = field(default_factory=dict)
    proactive: bool = False
    next_recurrence: int = 1
    #: cumulative bytes ingested for this query (all sources).
    bytes_ingested: float = 0.0
    #: snapshot of bytes_ingested at the previous recurrence.
    last_ingest_snapshot: float = 0.0
    #: cross-query reuse fingerprints (None when the plan is
    #: unfingerprintable or no reuse store is configured).
    reuse_plan_fp: Optional[str] = None
    #: source -> pane-level sub-fingerprint.
    reuse_pane_fps: Dict[str, str] = field(default_factory=dict)
    #: stored artifacts matching this plan at registration time.
    reuse_match_count: int = 0
    #: the query's logical-plan IR (:class:`repro.plan.LogicalPlan`),
    #: built once at registration — what the analyzer planned against.
    ir: Optional[object] = None
    #: source -> Scan→Map→Shuffle prefix fingerprint for shared-scan
    #: matching (empty when sharing is off or the plan has no stable
    #: fingerprint).
    share_prefix_fps: Dict[str, str] = field(default_factory=dict)

    def spec(self, source: str) -> WindowSpec:
        """The source's window constraints over the *shared* pane size."""
        return self.eff_specs[source]

    def qsource(self, source: str) -> str:
        """Cache namespace for a source: ``<job-name>:<source>``.

        Caches hold map/reduce *output*, so they are only shareable
        between queries running the same job. Namespacing pane pids by
        job name makes that sharing explicit: two queries with the same
        job object reuse each other's caches; different jobs never
        collide (Sec. 4.2's doneQueryMask coordinates the purge).
        """
        return f"{self.query.job.name}:{source}"

    def qpid(self, source: str, index: int) -> str:
        """Cache pid of a pane within this query's job namespace."""
        return pane_name(self.qsource(source), index)


class RedoopRuntime:
    """Executes recurring queries with window-aware optimisations.

    Parameters
    ----------
    cluster:
        The simulated cluster to run on. One runtime owns the cluster's
        scheduling state; do not mix it with a concurrently used
        :class:`~repro.hadoop.jobtracker.JobTracker` on the same cluster.
    enable_caching:
        Master switch; with ``False`` every recurrence re-maps every
        pane (for baselines/ablations).
    enable_output_cache:
        Keep reduce-output caches (pane partials / join pair results).
        Disabling falls back to re-reducing from reduce-input caches.
    adaptive:
        Enable profiler-driven adaptive/proactive processing (Sec. 3.3).
    purge_cycle:
        Local registries' periodic purge period; defaults to each
        query's slide at registration (the paper's default).
    fault_injector:
        Optional deterministic fault source for task retries.
    cache_capacity_bytes:
        Per-node cache budget; defaults to the cluster config's
        ``cache_capacity_bytes`` (``None`` = unbounded). When set,
        writes that would exceed it evict live entries via the
        eviction policy, or are refused outright when nothing
        evictable can make room.
    eviction_policy:
        ``"lru"``, ``"lifespan"`` or ``"cost-benefit"``; defaults to
        the cluster config's ``cache_eviction_policy``.
    reuse_store:
        Optional :class:`~repro.reuse.ReuseStore` for cross-query
        result reuse (see ``docs/reuse.md``). The runtime attaches the
        store to this cluster's HDFS and its own counter bag; pane and
        window outputs are published into it, and matching stored
        artifacts seed the cache status matrix (skipping map/shuffle
        work) or short-circuit whole recurrences.
    scan_sharing:
        Optional :class:`~repro.plan.SharedScanRegistry` enabling the
        multi-query shared-scan/shared-map optimizer (see
        ``docs/plan.md``). Queries whose plan prefixes (Scan → Map →
        Shuffle over a source) are IR-equal execute each pane's map
        phase once; later consumers absorb the memoized partitioned
        output and run only their own shuffle/pane-reduce. Off by
        default — the unshared path stays byte-identical to a build
        without the registry.
    """

    def __init__(
        self,
        cluster: Cluster,
        *,
        enable_caching: bool = True,
        enable_output_cache: bool = True,
        adaptive: bool = False,
        purge_cycle: Optional[float] = None,
        fault_injector: Optional[FaultInjector] = None,
        use_pane_headers: bool = True,
        tracer: Optional[Tracer] = None,
        cache_capacity_bytes: Optional[int] = None,
        eviction_policy: Optional[str] = None,
        backend: Optional[ExecBackend] = None,
        reuse_store=None,
        scan_sharing=None,
    ) -> None:
        self.cluster = cluster
        self.counters = Counters()
        #: Execution backend for task user-code (map bodies, pane
        #: sorts/reduces, merge finalizers). Only the pure task bodies
        #: run through it; every scheduling loop stays sequential and
        #: owns virtual time, so digests and spans are backend-
        #: independent (see docs/parallelism.md).
        self.backend = backend if backend is not None else SerialBackend()
        self.controller = WindowAwareCacheController()
        #: The span spine this run writes to: every recurrence, phase,
        #: task, scheduler decision, and fault lands here (see
        #: ``docs/observability.md``). Shared with the cluster so node
        #: fail/recover events interleave with the spans.
        self.tracer = tracer if tracer is not None else Tracer()
        if getattr(cluster, "tracer", None) is None:
            cluster.tracer = self.tracer
        self._run_span = self.tracer.begin(
            "redoop-run", CAT_RUN, cluster.clock.now
        )
        #: recurrence-scoped phase spans (``None`` outside a recurrence;
        #: proactive work emitted then parents to the run span).
        self._phase_spans: Optional[Dict[str, Span]] = None
        #: Decision log of every task-list pop, Eq. 4 selection, and
        #: execution — the audit trail proving the scheduler is real.
        #: A facade over ``self.tracer``: one store, two views.
        self.sched_trace = SchedulingTrace(spine=self.tracer)
        self.scheduler = CacheAwareTaskScheduler(
            cluster, trace=self.sched_trace, counters=self.counters
        )
        self.analyzer = SemanticAnalyzer(cluster.config)
        self.enable_caching = enable_caching
        self.enable_output_cache = enable_output_cache and enable_caching
        self.adaptive = adaptive
        self.faults = fault_injector
        self.use_pane_headers = use_pane_headers
        self._purge_cycle = purge_cycle
        if cache_capacity_bytes is not None and cache_capacity_bytes <= 0:
            raise ValueError("cache_capacity_bytes must be positive when set")
        self.cache_capacity_bytes = (
            cache_capacity_bytes
            if cache_capacity_bytes is not None
            else cluster.config.cache_capacity_bytes
        )
        self.eviction_policy = make_policy(
            eviction_policy or cluster.config.cache_eviction_policy
        )
        self._states: Dict[str, _QueryState] = {}
        self._registries: Dict[int, LocalCacheRegistry] = {}
        #: source -> the one packer shared by every query reading it.
        self._source_packers: Dict[str, DynamicDataPacker] = {}
        #: source -> {query name -> original WindowSpec} (for shared GCD).
        self._source_specs: Dict[str, Dict[str, WindowSpec]] = {}
        #: source -> best known arrival rate.
        self._source_rates: Dict[str, float] = {}
        #: job name -> job object (cache namespaces must be unambiguous).
        self._jobs_by_name: Dict[str, object] = {}
        #: job name -> sticky partition placements (shared across queries).
        self._job_partition_nodes: Dict[str, Dict[int, int]] = {}
        #: pids whose ready bit says HDFS_AVAILABLE: their map task is
        #: schedulable (Sec. 4.3 — fed by controller transitions).
        self._map_eligible: Set[str] = set()
        #: Caches published by the recurrence currently executing, as
        #: ``(node_id, pid, cache_type, partition)`` — ``None`` outside
        #: a recurrence. A degraded window rolls these back so partial
        #: results never leak into later recurrences.
        self._recurrence_cache_log: Optional[
            List[Tuple[int, str, int, int]]
        ] = None
        #: Cross-query reuse store (None = tier disabled). Attached to
        #: this cluster's HDFS and this runtime's counters so its
        #: ``reuse.*`` activity lands beside the cache counters.
        self.reuse = reuse_store
        if reuse_store is not None:
            reuse_store.attach(cluster.hdfs, counters=self.counters)
        #: Shared-scan registry (None = optimizer disabled). Memoizes
        #: per-pane partitioned map output across IR-equal plan
        #: prefixes; probed/published in ``_process_pane`` and retired
        #: by watermark after every recurrence.
        self.scan_sharing = scan_sharing
        #: pane publications buffered during a recurrence; flushed only
        #: when the window completes un-degraded (a rolled-back window
        #: must never leave artifacts other queries could match).
        self._pending_publishes: List[Tuple] = []
        self.controller.add_ready_listener(self._on_ready_transition)

    def _on_ready_transition(self, pid: str, old: int, new: int) -> None:
        """Track the scheduler-facing consequence of a ready-bit change.

        ``-> HDFS_AVAILABLE`` (arrival, or cache-loss rollback) makes
        the pane's map task schedulable; ``-> CACHE_AVAILABLE`` retires
        it — reduce tasks reusing the cache become schedulable instead.
        """
        if new == HDFS_AVAILABLE:
            self._map_eligible.add(pid)
            self.counters.increment("sched.map_eligible_transitions")
        elif new == CACHE_AVAILABLE:
            self._map_eligible.discard(pid)

    def map_eligible(self) -> Set[str]:
        """Pids currently awaiting a map task (monitoring/testing)."""
        return set(self._map_eligible)

    # ==================================================================
    # registration and ingest
    # ==================================================================

    def register_query(
        self, query: RecurringQuery, rates: Mapping[str, float]
    ) -> None:
        """Register a recurring query with per-source arrival rates (B/s).

        Multiple queries may read the same source: the Semantic
        Analyzer re-plans the source's partitioning at the GCD of *all*
        registered window constraints (Sec. 3.1), so one set of pane
        files serves every query. Register all queries of a source
        before its data starts arriving — refining the pane size after
        ingest would invalidate existing pane files.
        """
        if query.name in self._states:
            raise ValueError(f"query {query.name!r} is already registered")
        missing = set(query.sources) - set(rates)
        if missing:
            raise ValueError(f"missing arrival rates for sources: {sorted(missing)}")
        known_job = self._jobs_by_name.get(query.job.name)
        if known_job is not None and known_job is not query.job:
            raise ValueError(
                f"a different job named {query.job.name!r} is already "
                "registered; share the job object to share caches, or "
                "rename the job"
            )

        # The logical-plan IR is the structural truth from here on: the
        # analyzer plans off its Scan nodes, the reuse fingerprinter
        # digests it, and the shared-scan optimizer matches its prefixes.
        ir = query.plan()
        for src in ir.sources:
            self._source_specs.setdefault(src, {})[query.name] = ir.window(src)
            self._source_rates[src] = max(
                self._source_rates.get(src, 0.0), rates[src]
            )
            self._refresh_source_packer(src)

        self._jobs_by_name[query.job.name] = query.job
        state = _QueryState(
            query=query,
            plans={
                src: self.analyzer.plan_pipeline(
                    ir.pipeline(src).with_window(
                        self._effective_spec(src, query)
                    ),
                    SourceStats(source=src, rate=self._source_rates[src]),
                )
                for src in ir.sources
            },
            packers={src: self._source_packers[src] for src in ir.sources},
            eff_specs={
                src: self._effective_spec(src, query) for src in ir.sources
            },
            profiler=ExecutionProfiler(),
            partition_nodes=self._job_partition_nodes.setdefault(
                query.job.name, {}
            ),
            ir=ir,
        )
        self._states[query.name] = state
        self.controller.register_query(
            query.name,
            {state.qsource(src): state.eff_specs[src] for src in query.sources},
        )
        # A finer shared pane may have invalidated the effective specs of
        # earlier queries on the same sources: refresh them.
        self._refresh_effective_specs(query.sources, except_query=query.name)
        # The default purge cycle is the minimum registered slide, which
        # this registration may have just lowered.
        self._refresh_purge_cycles()
        self._reuse_register(state)
        self._share_register(state)

    def _reuse_register(self, state: _QueryState) -> None:
        """Fingerprint a newly registered plan and probe the reuse store.

        Unfingerprintable plans (lambdas, closures) opt out silently —
        the query runs exactly as without a store. A plan whose
        fingerprints already have stored artifacts is recorded so the
        service layer can report the rewrite on submit.
        """
        if self.reuse is None:
            return
        from ..reuse.fingerprint import (
            FingerprintError,
            pane_fingerprint,
            plan_fingerprint,
        )

        query = state.query
        try:
            state.reuse_plan_fp = plan_fingerprint(query)
            state.reuse_pane_fps = {
                src: pane_fingerprint(query, src) for src in query.sources
            }
        except FingerprintError:
            state.reuse_plan_fp = None
            state.reuse_pane_fps = {}
            self.counters.increment("reuse.unfingerprintable")
            return
        fps = {state.reuse_plan_fp, *state.reuse_pane_fps.values()}
        state.reuse_match_count = self.reuse.count_matches(fps)
        if state.reuse_match_count:
            self.counters.increment("reuse.plans_matched")
            self.tracer.instant(
                "reuse.match",
                CAT_RUN,
                self.cluster.clock.now,
                parent=self._run_span,
                query=query.name,
                matches=state.reuse_match_count,
            )

    def reuse_matches(self, name: str) -> int:
        """Stored reuse artifacts that matched ``name`` at registration."""
        return self._state(name).reuse_match_count

    def _share_register(self, state: _QueryState) -> None:
        """Fingerprint a plan's map prefixes for shared-scan matching.

        Like reuse registration, unfingerprintable plans opt out
        silently — the query maps every pane itself, exactly as with
        the optimizer disabled.
        """
        if self.scan_sharing is None:
            return
        from ..plan import FingerprintError, prefix_fingerprint_ir

        ir = state.ir if state.ir is not None else state.query.plan()
        try:
            state.share_prefix_fps = {
                pipeline.source: prefix_fingerprint_ir(pipeline)
                for pipeline in ir.pipelines
            }
        except FingerprintError:
            state.share_prefix_fps = {}
            self.counters.increment("plan.unshareable")

    def shared_prefix_peers(self, name: str) -> Dict[str, List[str]]:
        """source -> other registered queries sharing ``name``'s prefix.

        Empty when sharing is disabled, the plan is unfingerprintable,
        or no co-registered tenant's Scan → Map → Shuffle prefix is
        IR-equal over a common source.
        """
        state = self._state(name)
        peers: Dict[str, List[str]] = {}
        for src, fp in state.share_prefix_fps.items():
            for other in self._states.values():
                if other is state:
                    continue
                if other.share_prefix_fps.get(src) == fp:
                    peers.setdefault(src, []).append(other.query.name)
        return {src: sorted(names) for src, names in peers.items()}

    def _shared_pane(self, source: str) -> float:
        from .semantic_analyzer import shared_pane_seconds

        return shared_pane_seconds(list(self._source_specs[source].values()))

    def _effective_spec(self, source: str, query: RecurringQuery) -> WindowSpec:
        return query.spec(source).with_pane(self._shared_pane(source))

    def _refresh_source_packer(self, source: str) -> None:
        """(Re)build the source's shared packer at the current GCD pane."""
        shared = self._shared_pane(source)
        packer = self._source_packers.get(source)
        if packer is not None:
            if abs(packer.pane_seconds - shared) < 1e-9:
                return
            if packer.covered_until > 0:
                raise ValueError(
                    f"source {source!r} already ingested data at pane size "
                    f"{packer.pane_seconds}s; registering a query that needs "
                    f"{shared}s panes would invalidate its pane files — "
                    "register all queries before ingest starts"
                )
        # Use any registered spec re-expressed over the shared pane: the
        # packer only needs the pane size.
        any_spec = next(iter(self._source_specs[source].values()))
        eff = any_spec.with_pane(shared)
        plan = self.analyzer.plan(
            eff, SourceStats(source=source, rate=self._source_rates[source])
        )
        self._source_packers[source] = DynamicDataPacker(
            self.cluster.hdfs,
            eff,
            plan,
            base_path="/panes",
            use_header=self.use_pane_headers,
        )

    def _refresh_effective_specs(
        self, sources: Sequence[str], *, except_query: str
    ) -> None:
        """Update earlier queries after a shared pane size changed."""
        for state in self._states.values():
            if state.query.name == except_query:
                continue
            changed = False
            for src in state.query.sources:
                if src not in sources:
                    continue
                eff = self._effective_spec(src, state.query)
                if eff is not state.eff_specs[src]:
                    state.eff_specs[src] = eff
                    state.packers[src] = self._source_packers[src]
                    changed = True
            if changed:
                # No data has been ingested (the packer refresh would
                # have failed otherwise), so the matrix is still empty
                # and can simply be rebuilt over the new pane size.
                self.controller.unregister_query(state.query.name)
                self.controller.register_query(
                    state.query.name,
                    {
                        state.qsource(src): state.eff_specs[src]
                        for src in state.query.sources
                    },
                )

    def deregister_query(self, name: str) -> None:
        """Remove a registered query and release everything it held.

        The reverse of :meth:`register_query`, safe between recurrences
        (a recurrence is atomic, so the scheduler's task lists are
        empty here). Four things happen:

        1. the controller drops the query's status matrix and flips its
           ``doneQueryMask`` bits; caches the query alone kept alive
           become purgeable and are reclaimed immediately;
        2. map-eligible panes of the query's job namespace are retired
           when no surviving query shares that job;
        3. each source the query read either resets completely (last
           reader gone: packer, specs, and rates are dropped so a later
           registration re-derives the pane size from scratch) or
           re-derives its shared GCD pane over the surviving queries —
           rebuilding the packer at the new (possibly coarser) pane
           when no data has been ingested yet, and keeping the existing
           finer pane otherwise (finer panes remain valid for every
           surviving window constraint);
        4. job-level bookkeeping (name registry, sticky partition
           placements) is dropped with the job's last query.
        """
        state = self._state(name)
        query = state.query
        del self._states[name]

        notifications = self.controller.unregister_query(name)
        self._apply_purge_notifications(notifications, purge_now=True)

        surviving_jobs = {s.query.job.name for s in self._states.values()}
        if query.job.name not in surviving_jobs:
            self._jobs_by_name.pop(query.job.name, None)
            self._job_partition_nodes.pop(query.job.name, None)
            prefix = f"{query.job.name}:"
            self._map_eligible = {
                pid for pid in self._map_eligible if not pid.startswith(prefix)
            }

        rebuilt_sources: List[str] = []
        for src in query.sources:
            specs = self._source_specs.get(src)
            if specs is None:
                continue
            specs.pop(name, None)
            if not specs:
                # Last reader gone: the source resets completely.
                del self._source_specs[src]
                self._source_packers.pop(src, None)
                self._source_rates.pop(src, None)
                continue
            packer = self._source_packers.get(src)
            shared = self._shared_pane(src)
            if packer is not None and abs(packer.pane_seconds - shared) > 1e-9:
                if packer.covered_until <= 0 and not packer.packed_panes():
                    self._refresh_source_packer(src)
                    rebuilt_sources.append(src)
                # else: data already packed at the finer pane — keep it;
                # it divides every surviving window constraint.
        if rebuilt_sources:
            self._refresh_effective_specs(rebuilt_sources, except_query=name)
        self._refresh_purge_cycles()
        if self.scan_sharing is not None:
            # Sources the departed tenant alone read lose their memoized
            # map output; shared sources re-derive their floors.
            self._retire_shared_maps()
        self.counters.increment("runtime.queries_deregistered")

    def catch_up_query(self, name: str) -> int:
        """Mark panes packed before ``name`` registered as arrived for it.

        :meth:`ingest` flips each reader's ready bit as panes seal, so a
        query registered *after* data started arriving never hears about
        the earlier panes — its status matrix would claim their data is
        absent even though the pane files sit in HDFS. Calling this
        right after a late registration replays those arrivals into the
        controller (the serving layer does this on every submit).
        Returns the number of pane arrivals replayed.
        """
        state = self._state(name)
        caught = 0
        for src in state.query.sources:
            packer = state.packers[src]
            for pane in packer.packed_panes():
                self.controller.pane_arrived(state.qpid(src, pane.index))
                caught += 1
        if caught:
            self.counters.increment("runtime.panes_caught_up", caught)
        return caught

    def _apply_purge_notifications(
        self, notifications: Sequence[Any], *, purge_now: bool = False
    ) -> None:
        """Expire cache entries named by the controller's notifications.

        With ``purge_now`` the registries sweep immediately (deregistration
        reclaims space right away) instead of waiting for the next
        periodic purge cycle.
        """
        for notification in notifications:
            for node_id in notification.node_ids:
                registry = self._registries.get(node_id)
                if registry is not None:
                    registry.mark_expired([notification.pid])
        if purge_now and notifications:
            purged_total = 0
            for registry in self._registries.values():
                purged_total += len(registry.on_demand_purge())
            if purged_total:
                self.counters.increment("cache.entries_purged", purged_total)

    def shared_pane(self, source: str) -> float:
        """The pane size (seconds) the source's data is materialised at.

        This is the GCD pane of all registered window constraints —
        except after query churn with already-ingested data, where the
        materialised pane may be finer than the surviving queries'
        ideal GCD (refining would invalidate existing pane files).
        """
        if source not in self._source_specs:
            raise ValueError(f"no registered query reads source {source!r}")
        packer = self._source_packers.get(source)
        if packer is not None:
            return packer.pane_seconds
        return self._shared_pane(source)

    def queries(self) -> List[str]:
        return sorted(self._states)

    def query(self, name: str) -> RecurringQuery:
        """The registered query object behind ``name``."""
        return self._state(name).query

    def next_recurrence(self, name: str) -> int:
        """The recurrence number ``name`` will execute next."""
        return self._state(name).next_recurrence

    def next_due(self, name: str) -> float:
        """When ``name``'s next recurrence becomes due (virtual seconds)."""
        state = self._state(name)
        return state.query.execution_time(state.next_recurrence)

    def data_complete(self, name: str) -> bool:
        """Has all data for ``name``'s next recurrence been ingested?"""
        return self._data_complete(self._state(name))

    def profiler(self, query: str) -> ExecutionProfiler:
        return self._state(query).profiler

    def is_proactive(self, query: str) -> bool:
        return self._state(query).proactive

    def run_due_recurrences(self, now: float) -> List[RecurrenceResult]:
        """Run every registered query's recurrences due by time ``now``.

        Executions are interleaved in due-time order across queries
        (ties by query name), which is how a deployed scheduler would
        fire them — and what keeps one query's long execution from
        unfairly inflating another's measured response time. Recurrences
        whose data has not fully arrived are skipped (they stay due).
        """
        results: List[RecurrenceResult] = []
        while True:
            candidates = []
            for name in sorted(self._states):
                state = self._states[name]
                due = state.query.execution_time(state.next_recurrence)
                if due <= now + 1e-9 and self._data_complete(state):
                    candidates.append((due, name))
            if not candidates:
                return results
            _due, name = min(candidates)
            results.append(self.run_recurrence(name))

    def _data_complete(self, state: _QueryState) -> bool:
        for src in state.query.sources:
            needed = state.query.spec(src).execution_time(state.next_recurrence)
            if state.packers[src].covered_until + 1e-9 < needed:
                return False
        return True

    def input_paths(
        self, query_name: str, recurrence: int
    ) -> Dict[str, List[str]]:
        """The recurrence's per-source pane files (Sec. 5 GetInputPaths).

        Returns the HDFS paths covering each source's window for the
        given recurrence — both newly arrived panes and panes whose
        data will actually be served from caches; panes not yet packed
        (data still arriving) are omitted. Several panes may share one
        physical file in the undersized case, hence the de-duplication.
        """
        state = self._state(query_name)
        paths: Dict[str, List[str]] = {}
        for src in state.query.sources:
            packer = state.packers[src]
            seen: List[str] = []
            for idx in state.spec(src).panes_in_window(recurrence):
                if packer.is_packed(idx):
                    path = packer.pane(idx).path
                    if path not in seen:
                        seen.append(path)
            paths[src] = seen
        return paths

    def partition_plan(self, query: str, source: str) -> PartitionPlan:
        return self._state(query).plans[source]

    def ingest(self, batch: BatchFile, records: Sequence[Record]) -> None:
        """Load a batch: pack into panes for every query reading the source.

        In proactive mode, each batch's slice of a pane (a *sub-pane*)
        is mapped the moment it lands, and a pane's reduce-input caches
        are built the moment it seals — the best-effort early processing
        of Sec. 3.3. By window close, only the final sub-pane's work
        remains.
        """
        packer = self._source_packers.get(batch.source)
        readers = [
            state
            for state in self._states.values()
            if batch.source in state.query.windows
        ]
        if packer is None or not readers:
            raise ValueError(
                f"no registered query reads source {batch.source!r}"
            )
        # The source is packed exactly once, no matter how many queries
        # read it — that is the point of shared pane planning.
        packed = packer.ingest_batch(batch, records)
        batch_bytes = sum(r.size for r in records)
        for pane in packed:
            self.counters.increment("ingest.panes")
        for state in readers:
            state.bytes_ingested += batch_bytes
            proactive = state.proactive and self.enable_caching
            if proactive:
                self._proactive_map_chunks(state, batch, records)
            for pane in packed:
                self.controller.pane_arrived(
                    state.qpid(batch.source, pane.index)
                )
                if proactive:
                    self._proactive_seal_pane(state, batch.source, pane)

    def _proactive_map_chunks(
        self, state: _QueryState, batch: BatchFile, records: Sequence[Record]
    ) -> None:
        """Map a batch's per-pane record slices as they arrive."""
        spec = state.spec(batch.source)
        by_pane: Dict[int, List[Record]] = {}
        for record in records:
            by_pane.setdefault(spec.pane_of_time(record.ts), []).append(record)
        for idx in sorted(by_pane):
            pid = state.qpid(batch.source, idx)
            if self._pane_caches_intact(state, pid):
                continue  # pane already processed (recovery re-ingest)
            self._map_chunk(
                state,
                batch.source,
                idx,
                by_pane[idx],
                start=max(self.cluster.clock.now, batch.t_end),
            )

    def _map_chunk(
        self,
        state: _QueryState,
        source: str,
        idx: int,
        records: Sequence[Record],
        start: float,
    ) -> None:
        """Proactive map tasks over a sub-pane's records.

        The chunk is carved into block-sized map tasks (like any other
        input). The data is read off the arriving batch (not yet a
        replicated pane file), so reads are charged at remote rate —
        conservative, since the packer is still writing the pane.
        """
        job = state.query.job
        block = self.cluster.config.block_size
        partial = state.partials.setdefault((source, idx), _PartialMap())
        splits: List[List[Record]] = [[]]
        split_bytes = 0
        for record in records:
            if split_bytes >= block:
                splits.append([])
                split_bytes = 0
            splits[-1].append(record)
            split_bytes += record.size
        requests: List[MapTaskRequest] = []
        chunk_splits: List[List[Record]] = []
        for split in splits:
            if not split:
                continue
            request = MapTaskRequest(
                query=state.query.name,
                pid=state.qpid(source, idx),
                input_bytes=sum(r.size for r in split),
                locations=(),
            )
            requests.append(request)
            chunk_splits.append(split)
            self.scheduler.enqueue_map(request)
        # Run the pure map bodies through the execution backend in
        # construction order; the drain loop below still decides the
        # virtual-time schedule from the precomputed results.
        execs = self._run_backend(
            execute_map,
            [
                ((job, split), {"input_bytes": req.input_bytes})
                for req, split in zip(requests, chunk_splits)
            ],
            phase="map",
            now=start,
            task_key=f"{state.query.name}/exec-map",
        )
        contexts = {id(req): ex for req, ex in zip(requests, execs)}
        for request, ex in self._drain_maps(contexts):
            nbytes = request.input_bytes
            node = self.scheduler.select_map_node(request, start)
            duration = self.cluster.cost_model.map_task_duration(
                nbytes, ex.input_records, ex.output_bytes, data_local=False
            )
            finish = node.occupy_slot(MAP_SLOT, start, duration)
            self._record_execute(MAP_SLOT, request, node, start)
            self._emit_task(
                "map",
                f"map/{request.pid}#c{partial.chunks}",
                finish - duration / node.speed,
                finish,
                node.node_id,
                slot="map",
                bytes=nbytes,
                proactive=True,
            )
            partial.absorb(ex.partitioned)
            partial.records_mapped += ex.input_records
            partial.bytes_mapped += nbytes
            partial.map_finish = max(partial.map_finish, finish)
            partial.chunks += 1
            self.counters.increment("proactive.chunk_maps")
            self.counters.increment("map.input_bytes", nbytes)

    def _proactive_seal_pane(self, state: _QueryState, source: str, pane) -> None:
        """A pane sealed during proactive mode: build its caches now."""
        partial = state.partials.get((source, pane.index))
        start = max(self.cluster.clock.now, pane.available_at)
        if partial is not None and partial.records_mapped >= pane.num_records:
            # Every record was chunk-mapped; go straight to pane-reduce.
            state.partials.pop((source, pane.index))
            self._pane_reduce(
                state,
                source,
                pane.index,
                partial.partitioned,
                partial.map_finish,
                self.counters,
            )
        else:
            # Mode switched on mid-pane: map the whole pane file instead.
            state.partials.pop((source, pane.index), None)
            self._process_pane(state, source, pane.index, start, self.counters)

    # ==================================================================
    # recurrence execution
    # ==================================================================

    def run_recurrence(
        self, query_name: str, recurrence: Optional[int] = None
    ) -> RecurrenceResult:
        """Execute one recurrence of ``query_name`` and advance the clock."""
        state = self._state(query_name)
        query = state.query
        if recurrence is None:
            recurrence = state.next_recurrence
        if recurrence != state.next_recurrence:
            raise ValueError(
                f"recurrence {recurrence} out of order; expected "
                f"{state.next_recurrence}"
            )
        counters = Counters()
        due = query.execution_time(recurrence)
        self._require_data(state, recurrence)
        for packer in state.packers.values():
            packer.flush()
        start = max(self.cluster.clock.now, due)
        t0 = start + self.cluster.config.job_overhead

        rec_span = self.tracer.begin(
            f"{query.name}@w{recurrence}",
            CAT_RECURRENCE,
            due,
            parent=self._run_span,
            window=recurrence,
            query=query.name,
            due=due,
        )
        self._phase_spans = {
            name: self.tracer.begin(name, CAT_PHASE, t0, parent=rec_span)
            for name in PHASE_NAMES
        }
        degraded = False
        self._recurrence_cache_log = []
        try:
            # ----- cross-query window short-circuit ---------------------
            reused = (
                self._try_reuse_window(state, recurrence, t0, counters)
                if self.reuse is not None and self.enable_caching
                else None
            )
            if reused is not None:
                outputs, finish = reused
                self.cluster.clock.advance_to(finish)
                phases = PhaseTimes(
                    map=0.0, shuffle=0.0, reduce=max(0.0, finish - t0)
                )
                self._close_phase_spans(t0, t0, t0, t0, finish)
            else:
                # ----- map + pane-reduce for panes lacking caches ------
                map_finishes: List[float] = []
                for source in query.sources:
                    for idx in state.spec(source).panes_in_window(recurrence):
                        work = self._ensure_pane_processed(
                            state, source, idx, t0, counters
                        )
                        if work is not None and work.map_finish > t0:
                            map_finishes.append(work.map_finish)

                maps_done = max(map_finishes, default=t0)
                first_map_done = min(map_finishes, default=t0)

                # ----- combine phase (joins + finalize merge) -----------
                if query.num_sources == 1:
                    outputs, finish = self._combine_aggregation(
                        state, recurrence, t0, counters
                    )
                else:
                    outputs, finish = self._combine_join(
                        state, recurrence, t0, counters
                    )

                finish = max(finish, maps_done, t0)
                self.cluster.clock.advance_to(finish)

                # pane-reduce finish spans double as the shuffle boundary.
                shuffle_done = max(
                    (
                        f
                        for work in state.pane_work.values()
                        for f in work.reduce_finish.values()
                        if f > t0
                    ),
                    default=maps_done,
                )
                shuffle_done = min(max(shuffle_done, maps_done), finish)
                phases = PhaseTimes(
                    map=max(0.0, maps_done - t0),
                    shuffle=max(0.0, shuffle_done - max(first_map_done, t0)),
                    reduce=max(0.0, finish - shuffle_done),
                )

                self._close_phase_spans(
                    t0, maps_done, first_map_done, shuffle_done, finish
                )
        except TaskAttemptsExhaustedError as exc:
            # Graceful degradation: a task burned every attempt. Plain
            # Hadoop fails the job; Redoop abandons only this window —
            # roll back its published caches, flush its pending tasks,
            # record the degradation, and let later recurrences proceed.
            degraded = True
            finish = max(self.cluster.clock.now, t0)
            outputs = {}
            phases = PhaseTimes(map=0.0, shuffle=0.0, reduce=0.0)
            self._degrade_recurrence(state, recurrence, exc, counters, finish)
        finally:
            self._phase_spans = None
            self._recurrence_cache_log = None
        if self.reuse is not None:
            self._flush_pane_publishes(degraded)
        self.tracer.end(
            rec_span,
            finish,
            response_time=finish - due,
            phases={
                "map": phases.map,
                "shuffle": phases.shuffle,
                "reduce": phases.reduce,
            },
            counters=counters.as_dict(),
            degraded=degraded,
        )
        self.tracer.extend(self._run_span, finish)

        output_pairs = [pair for _p, pairs in sorted(outputs.items()) for pair in pairs]
        self._write_output(query, recurrence, output_pairs, finish)
        if self.reuse is not None and not degraded:
            self._reuse_publish_window(state, recurrence, output_pairs, finish)

        # ----- post-execution bookkeeping -------------------------------
        result = RecurrenceResult(
            query=query.name,
            recurrence=recurrence,
            window_bounds=query.window_bounds(recurrence),
            due_time=due,
            start_time=start,
            finish_time=finish,
            phase_times=phases,
            output=output_pairs,
            counters=counters,
            degraded=degraded,
        )
        self._after_recurrence(state, result)
        state.next_recurrence = recurrence + 1
        return result

    def _degrade_recurrence(
        self,
        state: _QueryState,
        recurrence: int,
        exc: TaskAttemptsExhaustedError,
        counters: Counters,
        finish: float,
    ) -> None:
        """Abandon the current window after attempt exhaustion.

        Sec. 5's rollback, applied to a *window* instead of a cache:
        every cache the doomed recurrence published is discarded (their
        pids roll back to HDFS-available, so the next window re-maps
        them from the pane files that still sit safely in HDFS), the
        scheduler's task lists are flushed, and the pane bookkeeping is
        reset so nothing half-finished is mistaken for done.
        """
        logged = self._recurrence_cache_log or []
        for node_id, pid, ctype, part in dict.fromkeys(logged):
            self.discard_cache(
                node_id, pid, ctype, part, reason="degraded", at=finish
            )
        aborted = self.scheduler.abort_pending(query=state.query.name)
        # Half-processed panes must be re-examined from scratch next
        # window; their HDFS pane files are intact.
        state.pane_work.clear()
        # _process_pane retires a pid from the map-eligible set before
        # mapping it; if the exhaustion struck before the pane's caches
        # were published, the ready bit still says HDFS_AVAILABLE and
        # the pid must become eligible again.
        for pid, ready in self.controller.ready_states():
            if ready == HDFS_AVAILABLE:
                self._map_eligible.add(pid)
        counters.increment("faults.windows_degraded")
        self.counters.increment("faults.windows_degraded")
        self.tracer.instant(
            "window.degraded",
            CAT_FAULT,
            time=finish,
            query=state.query.name,
            window=recurrence,
            task=exc.task_key,
            node_id=exc.node_id,
            caches_rolled_back=len(set(logged)),
            tasks_aborted=aborted,
        )
        if self._phase_spans is not None:
            for span in self._phase_spans.values():
                self.tracer.end(span, max(finish, span.start), degraded=True)

    # ------------------------------------------------------------------
    # task-list draining: the only path from a request to a slot
    # ------------------------------------------------------------------
    #
    # Each execution phase enqueues *all* of its task requests, then
    # drains the scheduler's list and executes exactly the request each
    # pop returns — map tasks FIFO, reduce tasks in Algorithm 2's
    # cache-coverage order. Contexts are keyed by request identity, so
    # the executed object is provably the popped one (the trace records
    # both sides).

    def _drain_maps(
        self, contexts: Dict[int, Any]
    ) -> Iterator[Tuple[MapTaskRequest, Any]]:
        while contexts:
            request = self.scheduler.next_map()
            if request is None or id(request) not in contexts:
                raise RuntimeError(
                    "map task list out of sync: popped "
                    f"{request!r} without an execution context — tasks "
                    "must be executed exactly as dequeued"
                )
            yield request, contexts.pop(id(request))

    def _drain_reduces(
        self, contexts: Dict[int, Any]
    ) -> Iterator[Tuple[ReduceTaskRequest, Any]]:
        while contexts:
            request = self.scheduler.next_reduce()
            if request is None or id(request) not in contexts:
                raise RuntimeError(
                    "reduce task list out of sync: popped "
                    f"{request!r} without an execution context — tasks "
                    "must be executed exactly as dequeued"
                )
            yield request, contexts.pop(id(request))

    def _emit_task(
        self,
        phase: str,
        name: str,
        start: float,
        finish: float,
        node_id: int,
        **attrs: Any,
    ) -> None:
        """Record one task span under the current recurrence's ``phase``.

        Outside a recurrence (proactive chunk maps, pane seals during
        ingest) the span parents to the run span directly.
        """
        parent: Span = self._run_span
        if self._phase_spans is not None and phase in self._phase_spans:
            parent = self._phase_spans[phase]
        self.tracer.span(
            name,
            CAT_TASK,
            start,
            max(finish, start),
            parent=parent,
            node_id=node_id,
            **attrs,
        )

    def _close_phase_spans(
        self,
        t0: float,
        maps_done: float,
        first_map_done: float,
        shuffle_done: float,
        finish: float,
    ) -> None:
        """Pin the recurrence's phase spans to their computed boundaries.

        Map and shuffle take the same boundaries ``PhaseTimes`` reports;
        pane-reduce and combine tighten to the envelope of their task
        children (zero-length at their nominal boundary when the window
        was fully served from cache and no task ran).
        """
        spans = self._phase_spans
        assert spans is not None
        spans["map"].start = t0
        self.tracer.end(spans["map"], max(maps_done, t0))
        shuffle_start = max(first_map_done, t0)
        spans["shuffle"].start = shuffle_start
        self.tracer.end(spans["shuffle"], max(shuffle_done, shuffle_start))
        for name, fallback in (
            ("pane-reduce", maps_done),
            ("combine", shuffle_done),
        ):
            span = spans[name]
            env = self.tracer.envelope(self.tracer.children(span))
            lo, hi = env if env is not None else (fallback, fallback)
            span.start = lo
            self.tracer.end(span, max(hi, lo))
        spans["post"].start = finish
        self.tracer.end(spans["post"], finish)

    def _record_execute(
        self, kind: str, request: Any, node: TaskNode, start: float
    ) -> None:
        self.sched_trace.record(
            SchedulingDecision(
                event="execute",
                kind=kind,
                task=request.task_id,
                request=request,
                node_id=node.node_id,
                time=start,
            )
        )

    # ------------------------------------------------------------------
    # pane processing: map + shuffle + reduce-input cache (+ agg rout)
    # ------------------------------------------------------------------

    def _ensure_pane_processed(
        self,
        state: _QueryState,
        source: str,
        idx: int,
        start: float,
        counters: Counters,
    ) -> Optional[_PaneWork]:
        """Process a pane unless valid caches already exist.

        Returns the pane's work record when (re)processed during this
        call window, or ``None`` when fully served from cache. Complete
        proactive partials (all sub-panes chunk-mapped before the
        window closed) skip the map and go straight to pane-reduce.
        """
        pid = state.qpid(source, idx)
        if self.enable_caching and self._pane_caches_intact(state, pid):
            counters.increment("cache.pane_hits")
            return None
        if (
            self.enable_caching
            and self.reuse is not None
            and self._try_seed_pane(state, source, idx, start, counters)
        ):
            return None
        partial = state.partials.pop((source, idx), None)
        if partial is not None:
            packer = state.packers[source]
            if (
                packer.is_packed(idx)
                and partial.records_mapped >= packer.pane(idx).num_records
            ):
                counters.increment("proactive.panes_prebuilt")
                return self._pane_reduce(
                    state,
                    source,
                    idx,
                    partial.partitioned,
                    max(partial.map_finish, start),
                    counters,
                )
            # Incomplete partial (mode flapped mid-pane): discard and
            # reprocess the whole pane file below.
        return self._process_pane(state, source, idx, start, counters)

    def _pane_caches_intact(self, state: _QueryState, pid: str) -> bool:
        """Are the pane's reduce-input caches live — and uncorrupted —
        on every partition?

        The integrity probe means a pane whose cache was tampered with
        between windows simply reads as uncached: the planner re-maps
        it from HDFS instead of feeding poisoned input to the window.
        """
        if self.controller.pane_ready(pid) != CACHE_AVAILABLE:
            return False
        for partition in range(state.query.job.num_reducers):
            node_id = self.controller.placement(pid, REDUCE_INPUT, partition)
            if node_id is None:
                return False
            registry = self._registries.get(node_id)
            if registry is None or not registry.verify(
                pid, REDUCE_INPUT, partition
            ):
                return False
        return True

    def _process_pane(
        self,
        state: _QueryState,
        source: str,
        idx: int,
        start: float,
        counters: Counters,
    ) -> _PaneWork:
        """Map one pane and build its per-partition reduce-input caches.

        Oversize panes (one pane per file, possibly many HDFS blocks)
        split into one map task per block, exactly like a plain Hadoop
        job. Undersized panes (several panes per shared file) are read
        through the pane header as a single map task.
        """
        query = state.query
        job = query.job
        packer = state.packers[source]
        pid = state.qpid(source, idx)
        path = packer.pane(idx).path

        # Shared-scan fast path: an IR-equal prefix already mapped this
        # pane — absorb its partitioned output instead of re-scanning.
        prefix_fp = (
            state.share_prefix_fps.get(source)
            if self.scan_sharing is not None
            else None
        )
        if prefix_fp is not None:
            entry = self.scan_sharing.lookup(prefix_fp, source, idx)
            if entry is not None:
                return self._absorb_shared_map(
                    state, source, idx, entry, start, counters
                )

        # Build the pane's map sub-tasks: (records, bytes, locations).
        if packer.is_shared(idx):
            records, charged_bytes = packer.read_pane(idx)
            locations = tuple(sorted(self.cluster.hdfs.nodes_for(path)))
            subtasks = [(records, charged_bytes, locations)]
        else:
            subtasks = [
                (split.records, split.size, split.locations)
                for split in self.cluster.hdfs.splits(path)
            ]

        # The pane's ready bit said HDFS_AVAILABLE (arrival, or a cache-
        # loss rollback): enqueue every map sub-task, then drain the
        # list FIFO (Algorithm 2 lines 6-12) and execute the popped
        # requests — the queue, not the construction order, decides.
        self._map_eligible.discard(pid)
        requests: List[MapTaskRequest] = []
        for records, charged_bytes, locations in subtasks:
            request = MapTaskRequest(
                query=query.name,
                pid=pid,
                input_bytes=charged_bytes,
                locations=tuple(locations),
            )
            requests.append(request)
            self.scheduler.enqueue_map(request)
        # Pure map bodies run through the backend first (construction
        # order); the FIFO drain then schedules the precomputed results.
        execs = self._run_backend(
            execute_map,
            [
                ((job, records), {"input_bytes": charged_bytes})
                for records, charged_bytes, _locs in subtasks
            ],
            phase="map",
            now=start,
            task_key=f"{query.name}/exec-map",
        )
        contexts: Dict[int, Tuple[int, object]] = {
            id(req): (task_no, ex)
            for task_no, (req, ex) in enumerate(zip(requests, execs))
        }

        map_finish = start
        partitioned: Dict[int, List[KeyValue]] = {}
        pane_records = 0
        pane_input_bytes = 0
        pane_output_bytes = 0
        for request, (task_no, ex) in self._drain_maps(contexts):
            node = self.scheduler.select_map_node(request, start)
            data_local = node.node_id in request.locations
            duration = self.cluster.cost_model.map_task_duration(
                request.input_bytes,
                ex.input_records,
                ex.output_bytes,
                data_local=data_local,
            )
            duration = self._with_faults(
                f"{query.name}/map/{pid}#{task_no}",
                duration,
                counters,
                at=start,
                node_id=node.node_id,
            )
            task_finish = node.occupy_slot(MAP_SLOT, start, duration)
            map_finish = max(map_finish, task_finish)
            self._record_execute(MAP_SLOT, request, node, start)
            self._emit_task(
                "map",
                f"map/{pid}#{task_no}",
                task_finish - duration / node.speed,
                task_finish,
                node.node_id,
                slot="map",
                bytes=request.input_bytes,
                data_local=data_local,
            )
            for partition, pairs in ex.partitioned.items():
                partitioned.setdefault(partition, []).extend(pairs)
            pane_records += ex.input_records
            pane_input_bytes += request.input_bytes
            pane_output_bytes += ex.output_bytes
            counters.increment("map.tasks")
            counters.increment("map.input_bytes", request.input_bytes)
            counters.increment("map.output_bytes", ex.output_bytes)

        if prefix_fp is not None:
            # Publish the pane's partitioned map output so IR-equal
            # consumers can skip their map phase. Map output is a pure
            # function of the shared pane files, so the entry needs no
            # rollback even if this window later degrades.
            self.scan_sharing.publish(
                prefix_fp,
                source,
                idx,
                partitioned,
                input_records=pane_records,
                input_bytes=pane_input_bytes,
                output_bytes=pane_output_bytes,
                producer=query.name,
            )
            for bag in (
                (counters,)
                if counters is self.counters
                else (counters, self.counters)
            ):
                bag.increment("plan.map_outputs_published")

        counters.increment("panes.processed")
        return self._pane_reduce(
            state, source, idx, partitioned, map_finish, counters
        )

    def _absorb_shared_map(
        self,
        state: _QueryState,
        source: str,
        idx: int,
        entry,
        start: float,
        counters: Counters,
    ) -> _PaneWork:
        """Fan a memoized IR-equal map output into this query's shuffle.

        The map phase is skipped entirely: the entry was produced from
        the same shared GCD pane files by a prefix-equal pipeline, so
        its partitioned pairs are byte-identical to what a local map
        would emit (the shared-scan differential oracle pins this). The
        hand-off is an in-memory fan-out — no map slot is occupied and
        the pane's shuffle starts at ``start``; the consumer still runs
        its own pane-reduce and builds its own caches.
        """
        query = state.query
        pid = state.qpid(source, idx)
        self._map_eligible.discard(pid)
        partitioned = entry.copy_partitioned()
        for bag in (
            (counters,)
            if counters is self.counters
            else (counters, self.counters)
        ):
            bag.increment("plan.shared_scans")
            bag.increment("plan.shared_map_bytes_saved", entry.input_bytes)
        self.tracer.instant(
            "plan.shared-map",
            CAT_RUN,
            start,
            parent=self._run_span,
            query=query.name,
            source=source,
            pane=idx,
            producer=entry.producer,
            bytes_saved=entry.input_bytes,
        )
        counters.increment("panes.processed")
        return self._pane_reduce(
            state, source, idx, partitioned, start, counters
        )

    def _pane_reduce(
        self,
        state: _QueryState,
        source: str,
        idx: int,
        partitioned: Mapping[int, List[KeyValue]],
        map_finish: float,
        counters: Counters,
    ) -> _PaneWork:
        """Shuffle, sort, and cache one pane's reduce input per partition.

        For aggregation queries this additionally reduces the pane and
        writes its reduce-output cache (the pane partial the combine
        phase merges).
        """
        query = state.query
        job = query.job
        pid = state.qpid(source, idx)
        work = _PaneWork(map_finish=map_finish)
        state.pane_work[(source, idx)] = work

        aggregation = query.num_sources == 1
        pane_inputs = [
            partitioned.get(partition, [])
            for partition in range(job.num_reducers)
        ]
        # Sort (and, for aggregations, pane-reduce) every partition's
        # pairs through the execution backend up front; the drained
        # requests below consume the precomputed results in whatever
        # order Algorithm 2 dictates.
        prepared = self._run_backend(
            execute_pane_reduce,
            [((job, pairs), {"aggregate": aggregation}) for pairs in pane_inputs],
            phase="pane-reduce",
            now=map_finish,
            task_key=f"{query.name}/exec-pane-reduce",
        )
        contexts: Dict[int, Tuple[List[KeyValue], Optional[List[KeyValue]]]] = {}
        for partition in range(job.num_reducers):
            pairs = pane_inputs[partition]
            request = ReduceTaskRequest(
                query=query.name,
                panes=((state.qsource(source), idx),),
                partition=partition,
                input_bytes=len(pairs) * job.intermediate_pair_size,
            )
            contexts[id(request)] = prepared[partition]
            self.scheduler.enqueue_reduce(request)
        for request, (sorted_pairs, rout_pairs) in self._drain_reduces(contexts):
            partition = request.partition
            fetch_bytes = request.input_bytes
            target = self._reduce_target(state, request, map_finish)
            transfer = self.cluster.cost_model.shuffle_fetch_duration(fetch_bytes)
            rin_bytes = fetch_bytes
            duration = (
                self.cluster.config.task_overhead
                + self.cluster.cost_model.sort_time(len(sorted_pairs))
            )
            if self.enable_caching:
                duration += self.cluster.cost_model.cache_write_time(rin_bytes)
            if aggregation and rout_pairs is not None:
                rout_bytes = len(rout_pairs) * job.output_pair_size
                duration += self.cluster.cost_model.reduce_compute_time(
                    len(sorted_pairs)
                )
                if self.enable_output_cache:
                    duration += self.cluster.cost_model.cache_write_time(rout_bytes)
            duration = self._with_faults(
                f"{query.name}/pane-reduce/{pid}/{partition}",
                duration,
                counters,
                at=map_finish + transfer,
                node_id=target.node_id,
            )
            finish = target.occupy_slot(
                REDUCE_SLOT, map_finish + transfer, duration
            )
            self._record_execute(REDUCE_SLOT, request, target, map_finish + transfer)
            if transfer > 0:
                self._emit_task(
                    "shuffle",
                    f"shuffle/{pid}/p{partition}",
                    map_finish,
                    map_finish + transfer,
                    target.node_id,
                    slot="net",
                    bytes=fetch_bytes,
                )
            self._emit_task(
                "pane-reduce",
                f"pane-reduce/{pid}/p{partition}",
                finish - duration / target.speed,
                finish,
                target.node_id,
                slot="reduce",
                bytes=fetch_bytes,
            )
            work.reduce_finish[partition] = finish
            counters.increment("shuffle.bytes", fetch_bytes)
            if self.enable_caching:
                self._store_cache(
                    state, target.node_id, pid, REDUCE_INPUT, partition,
                    sorted_pairs, rin_bytes, finish,
                )
            else:
                # Without caching the shuffled run lives only for this
                # recurrence; stash it unregistered so the combine phase
                # can read it, then drop it afterwards.
                target.store_local(
                    f"tmp/{query.name}/{pid}/p{partition}",
                    rin_bytes,
                    sorted_pairs,
                    created_at=finish,
                )
            if aggregation and rout_pairs is not None and self.enable_output_cache:
                self._store_cache(
                    state, target.node_id, pid, REDUCE_OUTPUT, partition,
                    rout_pairs,
                    len(rout_pairs) * job.output_pair_size,
                    finish,
                )
        if self.reuse is not None:
            routs_payload = None
            if aggregation and all(p[1] is not None for p in prepared):
                routs_payload = [list(p[1]) for p in prepared]
            record = (
                query.name,
                source,
                idx,
                [list(p[0]) for p in prepared],
                routs_payload,
                max([map_finish, *work.reduce_finish.values()]),
            )
            if self._recurrence_cache_log is not None:
                # Publication waits for the window to finish un-degraded.
                self._pending_publishes.append(record)
            else:
                # Proactive seal outside a recurrence: publish now.
                self._reuse_publish_pane(*record)
        return work

    @staticmethod
    def _reduce_group(job, sorted_pairs: Sequence[KeyValue]) -> List[KeyValue]:
        out: List[KeyValue] = []
        for key, values in group_sorted(sorted_pairs):
            out.extend(job.reducer(key, values))
        return out

    def _reduce_target(
        self, state: _QueryState, request: ReduceTaskRequest, now: float
    ) -> TaskNode:
        """Sticky reduce-node choice for a partition (Eq. 4 on first use).

        The selection runs on the *actual* dequeued pane-reduce request
        — no phantom placeholder requests, which would be invisible to
        ``drop_reduce_tasks_using`` during failure recovery and would
        rank as "fully cached" despite carrying no input. Later
        requests of the same partition reuse the chosen node while it
        lives, co-locating the partition's caches.
        """
        node_id = state.partition_nodes.get(request.partition)
        if node_id is not None:
            node = self.cluster.node(node_id)
            if node.alive and not self.scheduler.is_blacklisted(node_id, now):
                self.counters.increment("sched.sticky_reuses")
                return node
        node = self.scheduler.select_reduce_node(request, now)
        state.partition_nodes[request.partition] = node.node_id
        return node

    # ------------------------------------------------------------------
    # combine phase: aggregation
    # ------------------------------------------------------------------

    def _combine_aggregation(
        self,
        state: _QueryState,
        recurrence: int,
        t0: float,
        counters: Counters,
    ) -> Tuple[Dict[int, List[KeyValue]], float]:
        query = state.query
        job = query.job
        source = query.sources[0]
        spec = state.spec(source)
        window_panes = spec.panes_in_window(recurrence)
        matrix = self.controller.matrix(query.name)
        finish_all = t0

        # Gather every partition's cached pane partials, enqueue one
        # merge task per partition, then drain the reduce task list:
        # Algorithm 2 dictates the order (fully cached partitions run
        # before partially cached before uncached) and the dequeued
        # request is the one executed.
        outputs: Dict[int, List[KeyValue]] = {}
        contexts: Dict[int, Tuple[List[Tuple[int, List[KeyValue]]], Dict[int, int], float]] = {}
        finalize_inputs: List[List[List[KeyValue]]] = []
        for partition in range(job.num_reducers):
            partials: List[Tuple[int, List[KeyValue]]] = []
            cached_by_node: Dict[int, int] = {}
            ready_at = t0
            total_bytes = 0
            for idx in window_panes:
                pairs, nbytes, node_id = self._pane_partial_output(
                    state, source, idx, partition, counters
                )
                partials.append((idx, pairs))
                total_bytes += nbytes
                if node_id is not None:
                    cached_by_node[node_id] = cached_by_node.get(node_id, 0) + nbytes
                work = state.pane_work.get((source, idx))
                if work is not None and partition in work.reduce_finish:
                    ready_at = max(ready_at, work.reduce_finish[partition])
            request = ReduceTaskRequest(
                query=query.name,
                panes=tuple((state.qsource(source), i) for i in window_panes),
                partition=partition,
                input_bytes=total_bytes,
                cached_bytes_by_node=tuple(sorted(cached_by_node.items())),
            )
            contexts[id(request)] = (partials, cached_by_node, ready_at)
            finalize_inputs.append([p for _i, p in partials])
            self.scheduler.enqueue_reduce(request)

        # The gather loop above touches caches (hits, rebuilds, stores)
        # and must stay sequential; the pure merge-finalize bodies batch
        # through the backend here, one task per partition.
        merged_by_partition = dict(
            enumerate(
                self._run_backend(
                    execute_finalize,
                    [
                        ((query.finalize, partials), {})
                        for partials in finalize_inputs
                    ],
                    phase="merge",
                    now=t0,
                    task_key=f"{query.name}/exec-merge",
                )
            )
        )

        for request, (partials, cached_by_node, ready_at) in self._drain_reduces(
            contexts
        ):
            partition = request.partition
            total_bytes = request.input_bytes
            node = self.scheduler.select_reduce_node(request, ready_at)
            local_bytes = min(cached_by_node.get(node.node_id, 0), total_bytes)
            merged = merged_by_partition[partition]
            out_bytes = len(merged) * job.output_pair_size
            total_partial_records = sum(len(p) for _i, p in partials)
            duration = (
                self.cluster.config.task_overhead
                + self.cluster.cost_model.task_io_cost(
                    total_bytes, bytes_local=local_bytes
                )
                + self.cluster.cost_model.reduce_compute_time(total_partial_records)
                + self.cluster.cost_model.hdfs_write_time(out_bytes)
            )
            duration = self._with_faults(
                f"{query.name}/merge/w{recurrence}/{partition}",
                duration,
                counters,
                at=ready_at,
                node_id=node.node_id,
            )
            finish = node.occupy_slot(REDUCE_SLOT, ready_at, duration)
            self._record_execute(REDUCE_SLOT, request, node, ready_at)
            self._emit_task(
                "combine",
                f"merge/w{recurrence}/p{partition}",
                finish - duration / node.speed,
                finish,
                node.node_id,
                slot="reduce",
                bytes=total_bytes,
                cached_local_bytes=local_bytes,
                cache_rank=CacheAwareTaskScheduler._cache_rank(request),
            )
            finish_all = max(finish_all, finish)
            outputs[partition] = merged
            counters.increment("merge.tasks")
            counters.increment("merge.cached_bytes_read", total_bytes)
            counters.increment("reduce.output_bytes", out_bytes)
        for idx in window_panes:
            matrix.mark_done({state.qsource(source): idx})
        return outputs, finish_all

    def _pane_partial_output(
        self,
        state: _QueryState,
        source: str,
        idx: int,
        partition: int,
        counters: Counters,
    ) -> Tuple[List[KeyValue], int, Optional[int]]:
        """Fetch (or rebuild) one pane's partial reduce output.

        Returns ``(pairs, bytes, hosting_node_or_None)``. Falls back to
        re-reducing from the reduce-input cache when the output cache is
        missing (cache-failure recovery) and to the unregistered
        temporary run when caching is disabled.
        """
        query = state.query
        job = query.job
        pid = state.qpid(source, idx)
        if self.enable_output_cache:
            cached = self._read_cache_verified(pid, REDUCE_OUTPUT, partition)
            if cached is not None:
                payload, nbytes, node_id = cached
                counters.increment("cache.rout_hits")
                return payload, nbytes, node_id
        # Rebuild from the reduce-input cache.
        cached = self._read_cache_verified(pid, REDUCE_INPUT, partition)
        if cached is not None:
            payload, nbytes, node_id = cached
            counters.increment("cache.rin_rebuilds")
            pairs = self._reduce_group(job, payload)
            if self.enable_output_cache:
                self._store_cache(
                    state, node_id, pid, REDUCE_OUTPUT, partition, pairs,
                    len(pairs) * job.output_pair_size,
                    self.cluster.clock.now,
                )
            return pairs, nbytes, node_id
        # Caching disabled: read the temporary shuffled run.
        for node in self.cluster.live_nodes():
            name = f"tmp/{query.name}/{pid}/p{partition}"
            if node.has_local(name):
                lf = node.read_local(name)
                pairs = self._reduce_group(job, lf.payload)
                return pairs, lf.size, node.node_id
        raise RuntimeError(
            f"pane {pid} partition {partition} has neither cache nor fresh "
            "data; was the pane processed?"
        )

    def _finalize_merge(
        self, query: RecurringQuery, partials: Sequence[List[KeyValue]]
    ) -> List[KeyValue]:
        """Pane-based merge: group partial outputs by key, finalize.

        Kept as a convenience wrapper over the pure task body; the
        combine phase batches :func:`execute_finalize` through the
        execution backend directly.
        """
        return execute_finalize(query.finalize, list(partials))

    # ------------------------------------------------------------------
    # combine phase: multi-source join
    # ------------------------------------------------------------------

    def _combine_join(
        self,
        state: _QueryState,
        recurrence: int,
        t0: float,
        counters: Counters,
    ) -> Tuple[Dict[int, List[KeyValue]], float]:
        query = state.query
        job = query.job
        matrix = self.controller.matrix(query.name)
        sources = query.sources
        window_panes = {
            src: state.spec(src).panes_in_window(recurrence) for src in sources
        }
        combos = self._window_combinations(window_panes)
        finish_all = t0

        # Enqueue one join-reduce task per partition, then drain the
        # reduce task list so Algorithm 2's cache-coverage ordering and
        # Eq. 4's node choice act on the request actually executed.
        outputs: Dict[int, List[KeyValue]] = {}
        contexts: Dict[int, float] = {}
        for partition in range(job.num_reducers):
            ready_at = t0
            for src in sources:
                for idx in window_panes[src]:
                    work = state.pane_work.get((src, idx))
                    if work is not None and partition in work.reduce_finish:
                        ready_at = max(ready_at, work.reduce_finish[partition])
            # Weight Eq. 4 by the reduce-input bytes the task would read.
            rin_by_node: Dict[int, int] = {}
            total_rin = 0
            for src in sources:
                for idx in window_panes[src]:
                    pid = state.qpid(src, idx)
                    nbytes, node_id = self._cache_size(pid, REDUCE_INPUT, partition)
                    total_rin += nbytes
                    if node_id is not None:
                        rin_by_node[node_id] = rin_by_node.get(node_id, 0) + nbytes
            request = ReduceTaskRequest(
                query=query.name,
                panes=tuple(
                    (state.qsource(src), idx)
                    for src in sources
                    for idx in window_panes[src]
                ),
                partition=partition,
                input_bytes=total_rin,
                cached_bytes_by_node=tuple(sorted(rin_by_node.items())),
            )
            contexts[id(request)] = ready_at
            self.scheduler.enqueue_reduce(request)

        for request, ready_at in self._drain_reduces(contexts):
            partition = request.partition
            partition_output: List[KeyValue] = []
            cached_read = 0
            fresh_bytes = 0
            node = self.scheduler.select_reduce_node(request, ready_at)

            duration = self.cluster.config.task_overhead
            for combo in combos:
                pairs, nbytes, src_node = self._combo_output(
                    state, combo, partition, node.node_id, counters
                )
                partition_output.extend(pairs)
                if src_node == "fresh":
                    fresh_bytes += nbytes
                else:
                    cached_read += nbytes
                duration += self._combo_cost(
                    state, combo, partition, node.node_id, nbytes, src_node
                )
            out_bytes = len(partition_output) * job.output_pair_size
            duration += self.cluster.cost_model.hdfs_write_time(out_bytes)
            duration = self._with_faults(
                f"{query.name}/join/w{recurrence}/{partition}",
                duration,
                counters,
                at=ready_at,
                node_id=node.node_id,
            )
            finish = node.occupy_slot(REDUCE_SLOT, ready_at, duration)
            self._record_execute(REDUCE_SLOT, request, node, ready_at)
            self._emit_task(
                "combine",
                f"join/w{recurrence}/p{partition}",
                finish - duration / node.speed,
                finish,
                node.node_id,
                slot="reduce",
                bytes=request.input_bytes,
                cached_bytes=cached_read,
                fresh_bytes=fresh_bytes,
                cache_rank=CacheAwareTaskScheduler._cache_rank(request),
            )
            finish_all = max(finish_all, finish)
            outputs[partition] = partition_output
            counters.increment("join.tasks")
            counters.increment("join.cached_bytes_read", cached_read)
            counters.increment("reduce.output_bytes", out_bytes)
        for combo in combos:
            matrix.mark_done(
                {state.qsource(src): idx for src, idx in combo.items()}
            )
        return outputs, finish_all

    def _window_combinations(
        self, window_panes: Mapping[str, List[int]]
    ) -> List[Dict[str, int]]:
        from itertools import product

        sources = sorted(window_panes)
        combos = []
        for coords in product(*(window_panes[src] for src in sources)):
            combos.append(dict(zip(sources, coords)))
        return combos

    def _combo_output(
        self,
        state: _QueryState,
        combo: Mapping[str, int],
        partition: int,
        target_node: int,
        counters: Counters,
    ) -> Tuple[List[KeyValue], int, Any]:
        """One pane combination's join output for a partition.

        Returns ``(pairs, bytes_read, origin)`` where origin is the
        hosting node id of the output cache, or ``"fresh"`` when the
        combination had to be computed from reduce-input data.
        """
        query = state.query
        job = query.job
        pid = pair_pid(
            {state.qsource(src): idx for src, idx in combo.items()}
        )
        if self.enable_output_cache:
            cached = self._read_cache_verified(pid, REDUCE_OUTPUT, partition)
            if cached is not None:
                payload, nbytes, node_id = cached
                counters.increment("cache.rout_hits")
                return payload, nbytes, node_id
        # Compute the combination from the panes' reduce-input runs.
        merged: List[KeyValue] = []
        read_bytes = 0
        for src in sorted(combo):
            pane_id = state.qpid(src, combo[src])
            payload, nbytes = self._read_rin(state, pane_id, partition)
            merged.extend(payload)
            read_bytes += nbytes
        joined = self._reduce_group(job, sort_pairs(merged))
        if self.enable_output_cache:
            self._store_cache(
                state, target_node, pid, REDUCE_OUTPUT, partition, joined,
                len(joined) * job.output_pair_size,
                self.cluster.clock.now,
            )
        counters.increment("join.combos_computed")
        return joined, read_bytes, "fresh"

    def _combo_cost(
        self,
        state: _QueryState,
        combo: Mapping[str, int],
        partition: int,
        node_id: int,
        nbytes: int,
        origin: Any,
    ) -> float:
        cost = self.cluster.cost_model
        if origin == "fresh":
            # rin reads (locality per pane), merge + reduce CPU, cache write.
            local = 0
            for src in sorted(combo):
                pane_id = state.qpid(src, combo[src])
                size, host = self._cache_size(pane_id, REDUCE_INPUT, partition)
                if host == node_id:
                    local += size
            records = max(1, nbytes // state.query.job.intermediate_pair_size)
            seconds = cost.task_io_cost(nbytes, bytes_local=min(local, nbytes))
            seconds += cost.reduce_compute_time(records)
            if self.enable_output_cache:
                seconds += cost.cache_write_time(nbytes)
            return seconds
        # Cached combination output: local or remote read.
        if origin == node_id:
            return cost.local_read_time(nbytes)
        return cost.remote_read_time(nbytes)

    def _read_rin(
        self, state: _QueryState, pid: str, partition: int
    ) -> Tuple[List[KeyValue], int]:
        cached = self._read_cache_verified(pid, REDUCE_INPUT, partition)
        if cached is not None:
            payload, nbytes, _node_id = cached
            return payload, nbytes
        name = f"tmp/{state.query.name}/{pid}/p{partition}"
        for node in self.cluster.live_nodes():
            if node.has_local(name):
                lf = node.read_local(name)
                return lf.payload, lf.size
        raise RuntimeError(
            f"reduce input for {pid} partition {partition} is unavailable"
        )

    def _cache_size(
        self, pid: str, cache_type: int, partition: int
    ) -> Tuple[int, Optional[int]]:
        cached = self._read_cache_verified(pid, cache_type, partition)
        if cached is None:
            return 0, None
        _payload, nbytes, node_id = cached
        return nbytes, node_id

    # ------------------------------------------------------------------
    # cross-query reuse: seeding, window short-circuit, publication
    # ------------------------------------------------------------------

    def _pane_records(
        self, state: _QueryState, source: str, idx: int
    ) -> Optional[Tuple[Record, ...]]:
        """A packed pane's input records, or None when not yet sealed."""
        packer = state.packers[source]
        if not packer.is_packed(idx):
            return None
        records, _charged = packer.read_pane(idx)
        return tuple(records)

    @staticmethod
    def _slice_records_ms(
        records: Sequence[Record], t0_ms: int, t1_ms: int
    ) -> List[Record]:
        """Records whose millisecond pane-time falls in ``[t0, t1)``.

        Uses the same ``+1e-9`` fudge as ``pane_of_time`` so a record
        sitting exactly on a boundary slices into the same sub-range
        the producer's finer-grained packer assigned it to.
        """
        import math

        out = []
        for r in records:
            ts_ms = math.floor((r.ts + 1e-9) * 1000)
            if t0_ms <= ts_ms < t1_ms:
                out.append(r)
        return out

    def _try_seed_pane(
        self,
        state: _QueryState,
        source: str,
        idx: int,
        start: float,
        counters: Counters,
    ) -> bool:
        """Seed one pane's caches from the reuse store, all-or-nothing.

        A stored artifact (exact range match, or a subsumption chain of
        finer panes tiling the range) replaces the pane's map + shuffle
        + sort work with a remote read + cache write per partition. The
        fingerprint guarantees the *plan* matches; the lineage sha over
        the producer's input records is checked against this query's
        own pane data, so a matching plan over different data is a
        silent miss, never a wrong answer. If any partition is refused
        admission mid-seed, the already-seeded partitions roll back —
        a half-seeded pane must read as uncached.
        """
        from ..reuse.store import records_sha

        fp = state.reuse_pane_fps.get(source)
        if fp is None:
            return False
        spec = state.spec(source)
        t0, t1 = spec.pane_bounds(idx)
        chain = self.reuse.match_pane(fp, t0, t1, source)
        if chain is None:
            return False
        records = self._pane_records(state, source, idx)
        if records is None:
            return False
        t0_ms, t1_ms = round(t0 * 1000), round(t1 * 1000)
        reads = []
        for entry in chain:
            if (entry.t_start_ms, entry.t_end_ms) == (t0_ms, t1_ms):
                sliced: Sequence[Record] = records
            else:
                sliced = self._slice_records_ms(
                    records, entry.t_start_ms, entry.t_end_ms
                )
            if records_sha(sliced) != entry.lineage.input_sha:
                self.counters.increment("reuse.lineage_mismatches")
                return False
            payload = self.reuse.read_pane(entry)
            if payload is None:
                return False
            reads.append(payload)

        query = state.query
        job = query.job
        if len(reads) == 1:
            rins = [list(run) for run in reads[0][0]]
            routs = reads[0][1]
            routs = None if routs is None else [list(r) for r in routs]
        else:
            # Compose the chain: concatenate each partition's runs in
            # time order and re-sort. sort_pairs is stable and key-only,
            # so the composition is digest-equivalent to the full-pane
            # run (same contract the adaptive sub-pane path relies on).
            rins = []
            for partition in range(job.num_reducers):
                merged: List[KeyValue] = []
                for chain_rins, _chain_routs in reads:
                    merged.extend(chain_rins[partition])
                rins.append(sort_pairs(merged))
            routs = None

        pid = state.qpid(source, idx)
        aggregation = query.num_sources == 1
        cost = self.cluster.cost_model
        self._map_eligible.discard(pid)
        work = _PaneWork(map_finish=start)
        seeded: List[Tuple[int, int, int]] = []

        def rollback() -> None:
            for node_id, ctype, partition in reversed(seeded):
                self.discard_cache(
                    node_id, pid, ctype, partition,
                    reason="reuse-aborted", drop_tasks=False,
                )
                if self._recurrence_cache_log is not None:
                    try:
                        self._recurrence_cache_log.remove(
                            (node_id, pid, ctype, partition)
                        )
                    except ValueError:
                        pass
            state.pane_work.pop((source, idx), None)
            self.counters.increment("reuse.seed_rejected")

        total_bytes = 0
        for partition in range(job.num_reducers):
            run = rins[partition]
            rin_bytes = len(run) * job.intermediate_pair_size
            target = self._seed_target(state, partition, start)
            duration = (
                self.cluster.config.task_overhead
                + cost.remote_read_time(rin_bytes)
                + cost.cache_write_time(rin_bytes)
            )
            rout_pairs = None
            rout_bytes = 0
            if aggregation and self.enable_output_cache:
                rout_pairs = (
                    routs[partition]
                    if routs is not None
                    else self._reduce_group(job, run)
                )
                rout_bytes = len(rout_pairs) * job.output_pair_size
                duration += cost.cache_write_time(rout_bytes)
            finish = target.occupy_slot(REDUCE_SLOT, start, duration)
            self._emit_task(
                "pane-reduce",
                f"reuse-seed/{pid}/p{partition}",
                finish - duration / target.speed,
                finish,
                target.node_id,
                slot="reduce",
                bytes=rin_bytes,
                reused=True,
            )
            if not self._store_cache(
                state, target.node_id, pid, REDUCE_INPUT, partition,
                run, rin_bytes, finish,
            ):
                rollback()
                return False
            seeded.append((target.node_id, REDUCE_INPUT, partition))
            total_bytes += rin_bytes
            if rout_pairs is not None:
                # A refused rout is tolerable — the combine phase
                # rebuilds it from the seeded reduce input.
                if self._store_cache(
                    state, target.node_id, pid, REDUCE_OUTPUT, partition,
                    rout_pairs, rout_bytes, finish,
                ):
                    seeded.append((target.node_id, REDUCE_OUTPUT, partition))
                    total_bytes += rout_bytes
            work.reduce_finish[partition] = finish

        state.pane_work[(source, idx)] = work
        state.partials.pop((source, idx), None)
        for bag in (counters, self.counters):
            bag.increment("reuse.panes_seeded")
            bag.increment("reuse.bytes_saved", total_bytes)
        return True

    def _seed_target(
        self, state: _QueryState, partition: int, now: float
    ) -> TaskNode:
        """Node hosting a seeded partition: sticky placement, like Eq. 4."""
        node_id = state.partition_nodes.get(partition)
        if node_id is not None:
            node = self.cluster.node(node_id)
            if node.alive and not self.scheduler.is_blacklisted(node_id, now):
                return node
        live = sorted(n.node_id for n in self.cluster.live_nodes())
        if not live:
            raise RuntimeError("no live nodes to seed reuse caches onto")
        node = self.cluster.node(live[partition % len(live)])
        state.partition_nodes[partition] = node.node_id
        return node

    def _window_input_sha(
        self, state: _QueryState, recurrence: int
    ) -> Optional[Tuple[str, int, int]]:
        """Identity of a window's full input: ``(sha, records, bytes)``.

        Hashed per source over the concatenated pane records in time
        order, so the digest is independent of pane granularity — a
        producer whose shared GCD pane was finer still verifies.
        Returns None while any pane of the window is unpacked.
        """
        from ..reuse.store import content_sha, records_sha

        per_source = []
        n_records = 0
        n_bytes = 0
        for source in state.query.sources:
            recs: List[Record] = []
            for idx in state.spec(source).panes_in_window(recurrence):
                pane_records = self._pane_records(state, source, idx)
                if pane_records is None:
                    return None
                recs.extend(pane_records)
            per_source.append(records_sha(recs))
            n_records += len(recs)
            n_bytes += int(sum(r.size for r in recs))
        return content_sha(per_source), n_records, n_bytes

    def _try_reuse_window(
        self,
        state: _QueryState,
        recurrence: int,
        t0: float,
        counters: Counters,
    ) -> Optional[Tuple[Dict[int, List[KeyValue]], float]]:
        """Serve a whole recurrence from a stored window artifact.

        On a fingerprint + bounds + input-lineage match the recurrence
        collapses to one remote read + HDFS write of the stored output;
        the status matrix is marked done exactly as the combine phase
        would have, so purge accounting and ``remaining_uses`` are
        indistinguishable from a locally computed window.
        """
        fp = state.reuse_plan_fp
        if fp is None:
            return None
        query = state.query
        bounds = query.window_bounds(recurrence)
        entry = self.reuse.match_window(fp, bounds)
        if entry is None:
            return None
        identity = self._window_input_sha(state, recurrence)
        if identity is None:
            return None
        if identity[0] != entry.lineage.input_sha:
            self.counters.increment("reuse.lineage_mismatches")
            return None
        pairs = self.reuse.read_window(entry)
        if pairs is None:
            return None
        cost = self.cluster.cost_model
        out_bytes = entry.size
        duration = (
            self.cluster.config.task_overhead
            + cost.remote_read_time(out_bytes)
            + cost.hdfs_write_time(out_bytes)
        )
        live = sorted(self.cluster.live_nodes(), key=lambda n: n.node_id)
        if not live:
            return None
        node = live[0]
        finish = node.occupy_slot(REDUCE_SLOT, t0, duration)
        self._emit_task(
            "combine",
            f"reuse-window/w{recurrence}",
            finish - duration / node.speed,
            finish,
            node.node_id,
            slot="reduce",
            bytes=out_bytes,
            reused=True,
        )
        matrix = self.controller.matrix(query.name)
        if query.num_sources == 1:
            source = query.sources[0]
            for idx in state.spec(source).panes_in_window(recurrence):
                matrix.mark_done({state.qsource(source): idx})
        else:
            window_panes = {
                src: state.spec(src).panes_in_window(recurrence)
                for src in query.sources
            }
            for combo in self._window_combinations(window_panes):
                matrix.mark_done(
                    {state.qsource(src): idx for src, idx in combo.items()}
                )
        for bag in (counters, self.counters):
            bag.increment("reuse.window_hits")
            bag.increment("reuse.bytes_saved", out_bytes)
        return {0: list(pairs)}, finish

    def _reuse_publish_pane(
        self,
        query_name: str,
        source: str,
        idx: int,
        rins: List[List[KeyValue]],
        routs: Optional[List[List[KeyValue]]],
        created_at: float,
    ) -> None:
        from ..reuse.store import ReuseLineage, records_sha

        state = self._states.get(query_name)
        if state is None:
            return
        fp = state.reuse_pane_fps.get(source)
        if fp is None:
            return
        t0, t1 = state.spec(source).pane_bounds(idx)
        if self.reuse.has_pane(fp, t0, t1, source):
            return
        records = self._pane_records(state, source, idx)
        if records is None:
            return
        job = state.query.job
        input_bytes = int(sum(r.size for r in records))
        lineage = ReuseLineage(
            producer=query_name,
            job=job.name,
            created_at=created_at,
            input_records=len(records),
            input_bytes=input_bytes,
            input_sha=records_sha(records),
            recompute_cost=float(max(1, input_bytes)),
        )
        self.reuse.publish_pane(
            fp, source, t0, t1, rins, routs,
            pair_size=job.intermediate_pair_size,
            out_pair_size=job.output_pair_size,
            lineage=lineage,
        )

    def _flush_pane_publishes(self, degraded: bool) -> None:
        """Publish panes buffered during the finished recurrence.

        A degraded window drops its buffer: its caches were rolled
        back, and artifacts from an abandoned window must never be
        matchable by other queries.
        """
        pending, self._pending_publishes = self._pending_publishes, []
        if degraded or self.reuse is None:
            return
        for record in pending:
            self._reuse_publish_pane(*record)

    def _reuse_publish_window(
        self,
        state: _QueryState,
        recurrence: int,
        output_pairs: List[KeyValue],
        finish: float,
    ) -> None:
        from ..reuse.store import ReuseLineage

        fp = state.reuse_plan_fp
        if fp is None:
            return
        query = state.query
        bounds = query.window_bounds(recurrence)
        if self.reuse.has_window(fp, bounds):
            return
        identity = self._window_input_sha(state, recurrence)
        if identity is None:
            return
        input_sha, n_records, n_bytes = identity
        lineage = ReuseLineage(
            producer=query.name,
            job=query.job.name,
            created_at=finish,
            input_records=n_records,
            input_bytes=n_bytes,
            input_sha=input_sha,
            recompute_cost=float(max(1, n_bytes)),
        )
        self.reuse.publish_window(
            fp, bounds, output_pairs,
            out_pair_size=query.job.output_pair_size,
            lineage=lineage,
        )

    # ------------------------------------------------------------------
    # cache plumbing
    # ------------------------------------------------------------------

    def _registry(self, node_id: int) -> LocalCacheRegistry:
        registry = self._registries.get(node_id)
        if registry is None:
            registry = LocalCacheRegistry(
                self.cluster.node(node_id),
                purge_cycle=self._purge_cycle or self._default_purge_cycle(),
                capacity_bytes=self.cache_capacity_bytes,
                counters=self.counters,
            )
            self._registries[node_id] = registry
        return registry

    def _default_purge_cycle(self) -> float:
        slides = [s.query.slide for s in self._states.values()]
        return min(slides) if slides else 3600.0

    def _refresh_purge_cycles(self) -> None:
        """Re-derive registry purge cycles after query churn.

        The default cycle is the minimum registered slide, but it is
        copied into each registry at first touch — without this hook,
        serve-mode churn (queries registered or removed later) would
        leave existing registries sweeping on the stale frozen cycle.
        An explicit ``purge_cycle`` constructor override stays fixed.
        """
        if self._purge_cycle is not None:
            return
        cycle = self._default_purge_cycle()
        for registry in self._registries.values():
            registry.purge_cycle = cycle

    def _pinned_pids(self) -> Set[str]:
        """Pane pids whose reduce-input caches eviction must not touch.

        Every registered query's *upcoming* window (``next_recurrence``
        — the one currently executing, between recurrences the next
        due) relies on those rin caches: once ``_pane_caches_intact``
        said a pane is served from cache, the combine phase has no
        other way to rebuild its input mid-window. Everything else —
        reduce-output caches, combination caches, panes of past or
        far-future windows — can always be recomputed from HDFS.
        """
        pinned: Set[str] = set()
        for state in self._states.values():
            for src in state.query.sources:
                for idx in state.spec(src).panes_in_window(
                    state.next_recurrence
                ):
                    pinned.add(state.qpid(src, idx))
        return pinned

    def _make_room(
        self,
        registry: LocalCacheRegistry,
        pid: str,
        cache_type: int,
        partition: int,
        nbytes: int,
        now: float,
    ) -> bool:
        """Admission control: can ``nbytes`` fit under the node budget?

        Reclaims space in escalating order — expired entries first
        (the paper's on-demand purge), then live entries chosen by the
        eviction policy — and answers ``False`` only when even evicting
        every unpinned entry would not make room.
        """
        cap = registry.capacity_bytes
        if cap is None:
            return True
        if nbytes > cap:
            return False
        # Overwriting an existing key (cache re-construction) frees its
        # current bytes, so they count against the incoming size.
        credit = registry.entry_size(pid, cache_type, partition)

        def overflow() -> int:
            return registry.cached_bytes - credit + nbytes - cap

        if overflow() <= 0:
            return True
        purged = registry.on_demand_purge()
        if purged:
            self.counters.increment("cache.entries_purged", len(purged))
        need = overflow()
        if need <= 0:
            return True
        pinned = self._pinned_pids()
        candidates = [
            e
            for e in registry.eviction_candidates()
            if (e.pid, e.cache_type, e.partition) != (pid, cache_type, partition)
            and not (e.cache_type == REDUCE_INPUT and e.pid in pinned)
        ]
        victims = select_victims(
            self.eviction_policy, candidates, need, self.controller.remaining_uses
        )
        if sum(v.size for v in victims) < need:
            return False
        for victim in victims:
            self.counters.increment("cache.bytes_evicted", victim.size)
            # drop_tasks=False: eviction fires inside reduce drains; any
            # queued request touching the victim re-verifies and falls
            # back (same contract as the corruption path). The pin set
            # guarantees no current-window rin disappears.
            self.discard_cache(
                registry.node.node_id,
                victim.pid,
                victim.cache_type,
                victim.partition,
                reason="evicted",
                at=now,
                drop_tasks=False,
            )
        return True

    def _store_cache(
        self,
        state: _QueryState,
        node_id: int,
        pid: str,
        cache_type: int,
        partition: int,
        payload: Any,
        nbytes: int,
        now: float,
    ) -> bool:
        registry = self._registry(node_id)
        if not self._make_room(registry, pid, cache_type, partition, nbytes, now):
            # Budget refusal: the write is dropped, not the window. A
            # reduce-input run is spilled unregistered (same tmp path
            # as no-cache mode) so this window's combine phase can
            # still read it; the ready bit stays HDFS_AVAILABLE and
            # later windows recompute from the pane files.
            self.counters.increment("cache.admission_rejected")
            if cache_type == REDUCE_INPUT:
                registry.node.store_local(
                    f"tmp/{state.query.name}/{pid}/p{partition}",
                    nbytes,
                    payload,
                    created_at=now,
                )
            return False
        registry.add_entry(pid, cache_type, partition, nbytes, payload, now=now)
        self.controller.cache_created(pid, cache_type, partition, node_id)
        self.counters.increment("cache.bytes_written", nbytes)
        if self._recurrence_cache_log is not None:
            self._recurrence_cache_log.append(
                (node_id, pid, cache_type, partition)
            )
        return True

    def discard_cache(
        self,
        node_id: int,
        pid: str,
        cache_type: int,
        partition: int,
        *,
        reason: str = "lost",
        at: Optional[float] = None,
        drop_tasks: bool = True,
    ) -> None:
        """Destroy one cache partition and roll back its metadata.

        The single Sec. 5 rollback path shared by injected cache loss
        (:class:`~repro.core.recovery.RecoveryManager`), corruption
        detected on read, and degraded-window cleanup: delete the data,
        forget the registry row, revert the controller's ready bit when
        no copies remain (ready listeners re-mark the pane
        map-eligible), and drop scheduled reduce tasks that relied on
        the cache.

        ``drop_tasks=False`` skips the task-list purge. Required when
        the discard fires *during* a recurrence's reduce drain (a
        checksum failure surfaces on read, mid-execution): the queued
        requests are that recurrence's own plan — each re-verifies the
        caches it touches and recomputes from reduce input, so removing
        them would desync the drain, not protect it.
        """
        registry = self._registries.get(node_id)
        if registry is None:
            raise ValueError(f"node {node_id} holds no caches")
        name = cache_file_name(pid, cache_type, partition)
        if registry.node.has_local(name):
            registry.node.delete_local(name)
        registry.drop_lost(pid, cache_type, partition)
        self.controller.cache_lost(pid, cache_type, partition)
        if drop_tasks:
            self.scheduler.drop_reduce_tasks_using(pid)
        if reason == "degraded":
            self.counters.increment("faults.caches_rolled_back")
        elif reason == "evicted":
            # Planned invalidation under the byte budget, not a fault.
            self.counters.increment("cache.evicted")
        elif reason == "reuse-aborted":
            # All-or-nothing seeding rollback: a later partition of a
            # store-seeded pane was refused admission, so the earlier
            # ones retract (a half-seeded pane must read as uncached).
            self.counters.increment("reuse.seed_rollbacks")
        else:
            self.counters.increment("faults.caches_destroyed")
        self.tracer.instant(
            "cache.lost",
            CAT_FAULT,
            time=self.cluster.clock.now if at is None else at,
            node_id=node_id,
            pid=pid,
            cache_type=cache_type,
            partition=partition,
            reason=reason,
        )

    def _read_cache_verified(
        self, pid: str, cache_type: int, partition: int
    ) -> Optional[Tuple[Any, int, int]]:
        """Read a cache through its checksum; quarantine on corruption.

        Returns ``(payload, nbytes, node_id)``, or ``None`` when the
        cache is absent *or* failed its integrity check — in the latter
        case the entry is discarded through the Sec. 5 rollback first,
        so callers' fallback paths (rebuild from reduce input, re-map
        from HDFS) see a consistent world.
        """
        node_id = self.controller.placement(pid, cache_type, partition)
        if node_id is None:
            self.counters.increment("cache.misses")
            return None
        registry = self._registries.get(node_id)
        if registry is None or not registry.has(pid, cache_type, partition):
            self.counters.increment("cache.misses")
            return None
        try:
            payload, nbytes = registry.read(pid, cache_type, partition)
        except CacheCorruptionError:
            self.counters.increment("cache.corruptions_detected")
            self.counters.increment("cache.misses")
            self.discard_cache(
                node_id, pid, cache_type, partition,
                reason="corrupt", drop_tasks=False,
            )
            return None
        self.counters.increment("cache.hits")
        return payload, nbytes, node_id

    def registries(self) -> Dict[int, LocalCacheRegistry]:
        """Per-node cache registries created so far (testing/monitoring)."""
        return dict(self._registries)

    # ------------------------------------------------------------------
    # post-execution: profiler, purging, adaptivity
    # ------------------------------------------------------------------

    def _after_recurrence(
        self, state: _QueryState, result: RecurrenceResult
    ) -> None:
        query = state.query
        # Volume observed since the previous recurrence: a processing-
        # mode-independent signal for the fluctuation detector.
        ingested = state.bytes_ingested - state.last_ingest_snapshot
        state.last_ingest_snapshot = state.bytes_ingested
        state.profiler.observe(result.response_time, ingested)

        # Drop pane-work timing for panes that have left the window so
        # long-lived queries do not accumulate state without bound.
        current = {
            (src, idx)
            for src in query.sources
            for idx in state.spec(src).panes_in_window(result.recurrence)
        }
        state.pane_work = {
            key: work for key, work in state.pane_work.items() if key in current
        }
        # Drop proactive partials for panes that have left the window —
        # they can never seal into a future window. Without this, panes
        # skipped wholesale (cache hit, reuse seed, window-level reuse)
        # would leak their partial map state forever.
        first_next = {
            src: min(
                state.spec(src).panes_in_window(result.recurrence + 1),
                default=0,
            )
            for src in query.sources
        }
        state.partials = {
            (src, idx): partial
            for (src, idx), partial in state.partials.items()
            if idx >= first_next.get(src, 0)
        }

        # Expiration + purge notifications (PurgeCycle = slide).
        notifications = self.controller.advance_window(
            query.name, result.recurrence
        )
        self._apply_purge_notifications(notifications)
        now = self.cluster.clock.now
        for registry in self._registries.values():
            purged = registry.maybe_purge(now)
            if purged:
                self.counters.increment("cache.entries_purged", len(purged))

        # Drop unregistered temporary runs — no-cache mode's shuffled
        # runs, and admission-rejected spills under a byte budget.
        prefix = f"tmp/{query.name}/"
        for node in self.cluster.live_nodes():
            for name in node.local_files():
                if name.startswith(prefix):
                    node.delete_local(name)

        # Shared-map entries below every reader's next-window floor can
        # never be absorbed again; retire them (watermark GC).
        if self.scan_sharing is not None:
            self._retire_shared_maps()

        # Adaptive mode switch (Sec. 3.3): triggered by a forecast
        # execution-time change or by recent fluctuation, per the paper's
        # scale-factor mechanism.
        if self.adaptive:
            was = state.proactive
            state.proactive = state.profiler.fluctuation_detected()
            if state.proactive != was:
                self.counters.increment("adaptive.mode_switches")
                if state.proactive:
                    factor = max(
                        state.profiler.change_factor(),
                        state.profiler.volatility(),
                    )
                    for src, plan in state.plans.items():
                        state.plans[src] = self.analyzer.replan_adaptive(
                            plan, factor
                        )

    def _retire_shared_maps(self) -> None:
        """Watermark GC over the shared-scan registry.

        A source's floor is the lowest pane index any registered
        reader's *next* window can still cover (paused tenants count —
        their backlog fires on resume); entries below the floor, and
        entries of sources nobody reads anymore, are dropped.
        """
        floors: Dict[str, int] = {}
        for st in self._states.values():
            for src in st.query.sources:
                first = min(
                    st.spec(src).panes_in_window(st.next_recurrence),
                    default=0,
                )
                floors[src] = min(floors.get(src, first), first)
        retired = 0
        for src in self.scan_sharing.sources():
            if src not in floors:
                retired += self.scan_sharing.drop_source(src)
            else:
                retired += self.scan_sharing.retire(src, floors[src])
        if retired:
            self.counters.increment("plan.map_outputs_retired", retired)

    def _write_output(
        self,
        query: RecurringQuery,
        recurrence: int,
        pairs: List[KeyValue],
        finish: float,
    ) -> None:
        records = [
            Record(ts=finish, value=pair, size=query.job.output_pair_size)
            for pair in pairs
        ]
        path = query.output_path(recurrence)
        if self.cluster.hdfs.exists(path):
            self.cluster.hdfs.delete(path)
        self.cluster.hdfs.create(path, records, created_at=finish)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _require_data(self, state: _QueryState, recurrence: int) -> None:
        for src in state.query.sources:
            needed = state.query.spec(src).execution_time(recurrence)
            covered = state.packers[src].covered_until
            if covered + 1e-9 < needed:
                raise RuntimeError(
                    f"source {src!r} has data only until {covered}, but "
                    f"recurrence {recurrence} needs it through {needed}; "
                    "ingest the missing batches first"
                )

    def _run_backend(
        self,
        fn,
        calls,
        *,
        phase: str,
        now: float,
        task_key: str,
        counters: Optional[Counters] = None,
    ):
        """Run a task batch through the execution backend.

        The supervision layer recovers worker crashes and hangs
        invisibly (retry/rebuild/quarantine); its *terminal* failure —
        a dead pool past the rebuild budget — funnels here into the
        same ``TaskAttemptsExhaustedError`` path simulated attempt
        exhaustion takes, so the window degrades and rolls back its
        caches instead of corrupting digests or reuse artifacts.
        """
        bag = counters if counters is not None else self.counters
        try:
            return self.backend.run_tasks(
                fn,
                calls,
                phase=phase,
                counters=bag,
                tracer=self.tracer,
                now=now,
            )
        except WorkerFaultError as exc:
            bag.increment("task.exhausted")
            self.tracer.instant(
                "task.exhausted",
                CAT_FAULT,
                time=now,
                node_id=None,
                task=task_key,
                attempts=exc.attempts,
            )
            raise TaskAttemptsExhaustedError(task_key, exc.attempts) from exc

    def _with_faults(
        self,
        task_key: str,
        duration: float,
        counters: Counters,
        *,
        at: Optional[float] = None,
        node_id: Optional[int] = None,
    ) -> float:
        if self.faults is None:
            return duration
        when = self.cluster.clock.now if at is None else at
        try:
            effective, retries = self.faults.attempt_duration(task_key, duration)
        except TaskAttemptsExhaustedError as exc:
            exc.node_id = node_id
            counters.increment("task.exhausted")
            if node_id is not None:
                # An exhausted task charges all of its attempts against
                # the node — enough to trip the blacklist on its own
                # when the threshold allows.
                self.scheduler.record_task_failure(
                    node_id, when, failures=float(exc.attempts)
                )
            self.tracer.instant(
                "task.exhausted",
                CAT_FAULT,
                time=when,
                node_id=node_id,
                task=task_key,
                attempts=exc.attempts,
            )
            raise
        if retries:
            counters.increment("task.retries", retries)
            if node_id is not None:
                self.scheduler.record_task_failure(
                    node_id, when, failures=float(retries)
                )
            self.tracer.instant(
                "task.retry",
                CAT_FAULT,
                time=at,
                node_id=node_id,
                task=task_key,
                retries=retries,
            )
        return effective

    def _state(self, query_name: str) -> _QueryState:
        try:
            return self._states[query_name]
        except KeyError:
            raise ValueError(f"query {query_name!r} is not registered") from None
