"""The per-node Local Cache Registry (paper Sec. 4.1, Table 1).

Each task node runs a Local Cache Manager that tracks the caches on the
node's local file system in a registry of ``(pid, type, expiration)``
entries. Two cache types exist (Sec. 4):

* ``REDUCE_INPUT`` (type 1) — a pane's shuffled-and-sorted reduce input
  for one partition, reusable by later windows without re-mapping or
  re-shuffling;
* ``REDUCE_OUTPUT`` (type 2) — a pane's (or pane combination's)
  reduce output, reusable by the finalize step of later windows.

Expired entries are removed by one of two purge policies (Sec. 4.1):
*periodic* purging sweeps the registry every ``PurgeCycle`` seconds;
*on-demand* purging fires immediately when the local file system is
about to run out of space.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..hadoop.node import TaskNode

__all__ = [
    "REDUCE_INPUT",
    "REDUCE_OUTPUT",
    "CacheCorruptionError",
    "CacheEntry",
    "LocalCacheRegistry",
    "payload_checksum",
]

#: Cache type codes, matching the paper's Table 1 domain.
REDUCE_INPUT = 1
REDUCE_OUTPUT = 2

_VALID_TYPES = (REDUCE_INPUT, REDUCE_OUTPUT)


class CacheCorruptionError(Exception):
    """A cache file's content no longer matches its recorded checksum.

    Caches live on node-local disks outside HDFS's protection (paper
    Sec. 5), so bit rot or partial writes would otherwise flow silently
    into window outputs. The registry detects the mismatch on read; the
    runtime funnels it through the same rollback path as cache loss.
    """

    def __init__(self, node_id: int, pid: str, cache_type: int, partition: int):
        super().__init__(
            f"cache pid={pid!r} type={cache_type} partition={partition} "
            f"on node {node_id} failed its checksum"
        )
        self.node_id = node_id
        self.pid = pid
        self.cache_type = cache_type
        self.partition = partition


def payload_checksum(payload: Any) -> str:
    """Content digest of a cache payload (truncated sha256 over repr).

    The simulation stores payloads as Python objects rather than bytes,
    so the digest covers the canonical ``repr`` — deterministic for the
    list/tuple/scalar data that flows through reduce caches.
    """
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()[:16]


@dataclass(slots=True)
class CacheEntry:
    """One row of the local cache registry: pid, type, expiration flag."""

    pid: str
    cache_type: int
    partition: int
    size: int
    expiration: bool = False
    #: Content digest recorded at write time; ``None`` on legacy entries.
    checksum: Optional[str] = None
    #: Registry use-sequence number of the last write or read. A
    #: monotonic counter rather than virtual time: several cache
    #: operations can share one clock instant, and LRU victim order
    #: must stay deterministic regardless.
    last_used: int = 0

    @property
    def local_name(self) -> str:
        """The entry's file name on the node's local file system."""
        return cache_file_name(self.pid, self.cache_type, self.partition)


def cache_file_name(pid: str, cache_type: int, partition: int) -> str:
    """Local-FS naming convention for cache files (Sec. 5 "Caching")."""
    kind = "rin" if cache_type == REDUCE_INPUT else "rout"
    return f"cache/{kind}/{pid}/part-{partition:05d}"


class LocalCacheRegistry:
    """Cache manager for one task node.

    Parameters
    ----------
    node:
        The node whose local file system holds the cached data.
    purge_cycle:
        Seconds between periodic purge sweeps (paper's ``PurgeCycle``).
    capacity_bytes:
        Cache byte budget; exceeding it triggers on-demand purging,
        and the runtime's admission/eviction machinery keeps
        ``cached_bytes`` at or below it. ``None`` means unbounded
        (the default for experiments).
    counters:
        Optional counter bag (typically the runtime's) the registry
        reports purge outcomes into.
    """

    def __init__(
        self,
        node: TaskNode,
        *,
        purge_cycle: float = 3600.0,
        capacity_bytes: Optional[int] = None,
        counters: Optional[Any] = None,
    ) -> None:
        if purge_cycle <= 0:
            raise ValueError("purge_cycle must be positive")
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive when set")
        self.node = node
        self.purge_cycle = purge_cycle
        self.capacity_bytes = capacity_bytes
        self.counters = counters
        self._entries: Dict[Tuple[str, int, int], CacheEntry] = {}
        self._last_periodic_purge = 0.0
        self._use_clock = 0
        #: High-water mark of ``cached_bytes`` (the registry's working
        #: set); lets a bench size budgets as a fraction of the peak.
        self.peak_cached_bytes = 0

    def _count(self, name: str, amount: float = 1) -> None:
        if self.counters is not None:
            self.counters.increment(name, amount)

    def _next_use(self) -> int:
        self._use_clock += 1
        return self._use_clock

    # ------------------------------------------------------------------
    # adding entries (Sec. 4.1 "Adding New Entry")
    # ------------------------------------------------------------------

    def add_entry(
        self,
        pid: str,
        cache_type: int,
        partition: int,
        size: int,
        payload: Any,
        *,
        now: float = 0.0,
    ) -> CacheEntry:
        """Register a new cache and store its data on the local FS.

        New entries start unexpired; existing entries are untouched
        (the paper: "records for existing caches do not need to be
        changed"). Re-adding an existing key overwrites its data — this
        happens during cache re-construction after failures.
        """
        if cache_type not in _VALID_TYPES:
            raise ValueError(f"unknown cache type {cache_type!r}")
        if partition < 0:
            raise ValueError("partition indices are non-negative")
        entry = CacheEntry(
            pid=pid,
            cache_type=cache_type,
            partition=partition,
            size=size,
            checksum=payload_checksum(payload),
            last_used=self._next_use(),
        )
        self.node.store_local(entry.local_name, size, payload, created_at=now)
        self._entries[(pid, cache_type, partition)] = entry
        self.peak_cached_bytes = max(self.peak_cached_bytes, self.cached_bytes)
        return entry

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def has(self, pid: str, cache_type: int, partition: int) -> bool:
        key = (pid, cache_type, partition)
        entry = self._entries.get(key)
        if entry is None or entry.expiration:
            return False
        return self.node.has_local(entry.local_name)

    def read(self, pid: str, cache_type: int, partition: int) -> Tuple[Any, int]:
        """Return ``(payload, size)`` of a live cache entry.

        Raises
        ------
        KeyError
            If the entry does not exist or has expired.
        """
        if not self.has(pid, cache_type, partition):
            raise KeyError(
                f"no live cache for pid={pid!r} type={cache_type} "
                f"partition={partition} on node {self.node.node_id}"
            )
        entry = self._entries[(pid, cache_type, partition)]
        lf = self.node.read_local(entry.local_name)
        if (
            entry.checksum is not None
            and payload_checksum(lf.payload) != entry.checksum
        ):
            raise CacheCorruptionError(
                self.node.node_id, pid, cache_type, partition
            )
        entry.last_used = self._next_use()
        return lf.payload, lf.size

    def verify(self, pid: str, cache_type: int, partition: int) -> bool:
        """``True`` iff the entry is live *and* its content checks out.

        Non-raising companion to :meth:`read` for pre-window integrity
        probes (``_pane_caches_intact``): a corrupt entry simply reads
        as absent so planning falls back to re-execution.
        """
        if not self.has(pid, cache_type, partition):
            return False
        entry = self._entries[(pid, cache_type, partition)]
        lf = self.node.read_local(entry.local_name)
        return (
            entry.checksum is None
            or payload_checksum(lf.payload) == entry.checksum
        )

    def entries(self) -> List[CacheEntry]:
        """Snapshot of all registry rows (live and expired)."""
        return [self._entries[k] for k in sorted(self._entries)]

    def live_entries(self) -> List[CacheEntry]:
        return [e for e in self.entries() if not e.expiration]

    @property
    def cached_bytes(self) -> int:
        """Bytes attributable to registered cache entries.

        Deliberately *not* ``node.local_bytes``: the local FS also
        holds spills and unregistered tmp runs that are no business of
        the cache budget.
        """
        return sum(
            e.size
            for e in self._entries.values()
            if self.node.has_local(e.local_name)
        )

    def entry_size(self, pid: str, cache_type: int, partition: int) -> int:
        """Bytes an existing backed entry holds (0 when absent).

        Admission control credits this back when a write overwrites an
        existing key (cache re-construction after failures).
        """
        entry = self._entries.get((pid, cache_type, partition))
        if entry is None or not self.node.has_local(entry.local_name):
            return 0
        return entry.size

    def eviction_candidates(self) -> List[CacheEntry]:
        """Live, backed entries a replacement policy may evict."""
        return [
            e
            for e in self.live_entries()
            if self.node.has_local(e.local_name)
        ]

    # ------------------------------------------------------------------
    # expiration (Sec. 4.1 "Updating Existing Entry")
    # ------------------------------------------------------------------

    def mark_expired(self, pids: Iterable[str]) -> int:
        """Process a purge notification from the cache controller.

        Flips the expiration flag of every entry whose pid is in
        ``pids``; the data stays on disk until the next purge sweep.
        Returns the number of entries flagged.
        """
        wanted = set(pids)
        count = 0
        for entry in self._entries.values():
            if entry.pid in wanted and not entry.expiration:
                entry.expiration = True
                count += 1
        return count

    def drop_lost(self, pid: str, cache_type: int, partition: int) -> None:
        """Forget an entry whose backing file was destroyed (cache failure)."""
        self._entries.pop((pid, cache_type, partition), None)

    def forget_all(self) -> None:
        """Forget every entry (node failure: the local FS is gone)."""
        self._entries.clear()

    # ------------------------------------------------------------------
    # purging (Sec. 4.1 "periodic and on-demand purging")
    # ------------------------------------------------------------------

    def periodic_purge(self, now: float) -> List[CacheEntry]:
        """Sweep expired entries if a full purge cycle has elapsed."""
        if now - self._last_periodic_purge < self.purge_cycle:
            return []
        self._last_periodic_purge = now
        return self._purge_expired()

    def on_demand_purge(self) -> List[CacheEntry]:
        """Emergency sweep when local space runs short.

        Purges all expired entries immediately, regardless of the
        periodic schedule.
        """
        return self._purge_expired()

    def maybe_purge(self, now: float) -> List[CacheEntry]:
        """Apply the appropriate policy: on-demand if over budget, else periodic.

        The budget is compared against ``cached_bytes`` — measuring
        ``node.local_bytes`` would let unrelated local files (spills,
        tmp runs) trigger emergency sweeps of perfectly healthy caches.
        An over-budget sweep that reclaims nothing (no expired entries
        left) is reported via the ``cache.purge_noop`` counter instead
        of silently returning empty.
        """
        if (
            self.capacity_bytes is not None
            and self.cached_bytes > self.capacity_bytes
        ):
            purged = self.on_demand_purge()
            if not purged:
                self._count("cache.purge_noop")
            return purged
        return self.periodic_purge(now)

    def _purge_expired(self) -> List[CacheEntry]:
        purged: List[CacheEntry] = []
        for key in sorted(self._entries):
            entry = self._entries[key]
            if not entry.expiration:
                continue
            if self.node.has_local(entry.local_name):
                self.node.delete_local(entry.local_name)
            purged.append(entry)
            del self._entries[key]
        return purged
