"""Cross-query result reuse: fingerprints, store, and rewrite support.

Redoop's intra-query caches (paper Sec. 4) share pane work only among
queries co-registered at the same instant. This package adds the
ReStore-style tier above them: pane and window outputs are fingerprinted
by plan semantics, materialized into the simulated HDFS with lineage and
checksums, and offered to *later* queries — other tenants, later
submissions, restarted servers — whose plans match exactly or by pane
subsumption. See ``docs/reuse.md``.
"""

from .fingerprint import (
    FINGERPRINT_SCHEMA,
    FingerprintError,
    callable_fingerprint,
    map_prefix_fingerprint,
    pane_fingerprint,
    plan_fingerprint,
)
from .store import (
    REUSE_CACHE_TYPE,
    ReuseEntry,
    ReuseLineage,
    ReuseStore,
    content_sha,
    records_sha,
)

__all__ = [
    "FINGERPRINT_SCHEMA",
    "FingerprintError",
    "REUSE_CACHE_TYPE",
    "ReuseEntry",
    "ReuseLineage",
    "ReuseStore",
    "callable_fingerprint",
    "content_sha",
    "map_prefix_fingerprint",
    "pane_fingerprint",
    "plan_fingerprint",
    "records_sha",
]
