"""Plan fingerprinting: stable content digests over query semantics.

Cross-query reuse (ReStore, VLDB 2012) is only sound when "the same
computation" is decided by *semantics*, not identity: a tenant who
resubmits an overlapping query five minutes later — possibly in a new
process, after a pickle round-trip, under a different query name — must
hash to the same digest, while any change to a mapper, reducer,
combiner, partitioner, window parameter, or operator config must hash
to a different one.

Canonicalization rules:

* plain functions (and builtins) are identified by
  ``module:qualname`` — the same durable reference
  :class:`~repro.service.spec.QuerySpec` factories use;
* callable-class instances (the repo's picklable mapper/finalizer
  idiom) are identified by their type's ``module:qualname`` plus a
  recursively canonicalized config captured from ``__slots__`` and
  ``__dict__`` — two separately constructed ``_AggMapper("object")``
  instances fingerprint identically;
* lambdas, closures, and locally defined classes have no stable
  cross-process name and raise :class:`FingerprintError`; the runtime
  treats such queries as non-reusable rather than guessing.

Two digest scopes are exposed. :func:`pane_fingerprint` covers exactly
what determines a pane-level subcomputation's reduce input/output
(source, map side, reduce side, partitioning) and deliberately excludes
pane size — artifacts are keyed by their *time range*, so a store pane
at a finer granularity can be composed into a coarser pane (subsumption
matching). :func:`plan_fingerprint` additionally covers the window
finalizer across all sources and identifies a whole window's final
output. Both exclude query and job *names* (identity, not semantics)
and ingestion rates (they affect physical packing, never answers).
"""

from __future__ import annotations

import hashlib
import inspect
import json
from typing import Any, Dict

from ..core.query import RecurringQuery

__all__ = [
    "FINGERPRINT_SCHEMA",
    "FingerprintError",
    "callable_fingerprint",
    "pane_fingerprint",
    "plan_fingerprint",
]

#: Bump when the canonical form changes; part of every digest, so old
#: stored artifacts can never be matched by a newer incompatible layout.
FINGERPRINT_SCHEMA = 1


class FingerprintError(ValueError):
    """The object has no stable cross-process canonical form."""


def _require_named(module: Any, qualname: Any, what: str) -> str:
    if not module or not qualname:
        raise FingerprintError(f"{what} has no module-qualified name")
    if "<lambda>" in qualname or "<locals>" in qualname:
        raise FingerprintError(
            f"{what} ({module}:{qualname}) is a lambda or local definition; "
            "only module-level callables have a stable identity across "
            "processes"
        )
    return f"{module}:{qualname}"


def callable_fingerprint(obj: Any) -> Dict[str, Any]:
    """Canonical JSON-able identity of a map/reduce/finalize callable."""
    if inspect.isfunction(obj) or inspect.isbuiltin(obj) or inspect.isclass(obj):
        ref = _require_named(
            getattr(obj, "__module__", None),
            getattr(obj, "__qualname__", None),
            "callable",
        )
        return {"kind": "function", "ref": ref}
    if inspect.ismethod(obj):
        raise FingerprintError(
            "bound methods carry instance state invisible to fingerprinting"
        )
    if callable(obj):
        cls = type(obj)
        ref = _require_named(cls.__module__, cls.__qualname__, "callable class")
        config: Dict[str, Any] = {}
        slots: set = set()
        for klass in cls.__mro__:
            declared = getattr(klass, "__slots__", ())
            if isinstance(declared, str):
                declared = (declared,)
            slots.update(declared)
        for name in sorted(slots):
            if hasattr(obj, name):
                config[name] = _canonical(getattr(obj, name))
        for name in sorted(getattr(obj, "__dict__", {})):
            config[name] = _canonical(obj.__dict__[name])
        return {"kind": "instance", "ref": ref, "config": config}
    raise FingerprintError(f"{obj!r} is not callable")


def _canonical(value: Any) -> Any:
    """Recursively reduce ``value`` to a JSON-able canonical form."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr is the shortest round-trippable form — stable across
        # platforms and pickle round-trips, unlike formatted output.
        return {"float": repr(value)}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return {"set": sorted(repr(v) for v in value)}
    if isinstance(value, dict):
        return {
            "dict": [
                [_canonical(k), _canonical(v)]
                for k, v in sorted(value.items(), key=lambda kv: repr(kv[0]))
            ]
        }
    if callable(value):
        return callable_fingerprint(value)
    raise FingerprintError(
        f"config value {value!r} ({type(value).__name__}) has no canonical "
        "form; use primitives, containers, or named callables"
    )


def _digest(payload: Dict[str, Any]) -> str:
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _pane_payload(query: RecurringQuery, source: str) -> Dict[str, Any]:
    job = query.job
    return {
        "schema": FINGERPRINT_SCHEMA,
        "scope": "pane",
        "source": source,
        "mapper": callable_fingerprint(job.mapper),
        "combiner": (
            callable_fingerprint(job.combiner)
            if job.combiner is not None
            else None
        ),
        "reducer": callable_fingerprint(job.reducer),
        "partitioner": callable_fingerprint(job.partitioner),
        "num_reducers": job.num_reducers,
        "intermediate_pair_size": job.intermediate_pair_size,
        "output_pair_size": job.output_pair_size,
    }


def pane_fingerprint(query: RecurringQuery, source: str) -> str:
    """Digest of one source's pane-level subcomputation.

    Everything that determines a pane's reduce-input/-output content
    for a given time range of ``source``'s data — and nothing that
    doesn't: names, rates, and window parameters are excluded (the
    artifact's time range carries the temporal coordinate instead, so
    queries with different win/slide still share pane artifacts).
    """
    if source not in query.windows:
        raise KeyError(f"query {query.name!r} does not read source {source!r}")
    return _digest(_pane_payload(query, source))


def plan_fingerprint(query: RecurringQuery) -> str:
    """Digest of the query's full window-level operator chain.

    Covers every source's pane semantics plus the finalizer — the
    complete recipe from input records to a window's final output
    pairs. Window *outputs* are additionally keyed by their per-source
    time bounds at match time, so win/slide themselves stay out of the
    digest: two queries with the same chain whose windows happen to
    cover identical data ranges may share results.
    """
    return _digest(
        {
            "schema": FINGERPRINT_SCHEMA,
            "scope": "window",
            "panes": {
                src: _pane_payload(query, src) for src in query.sources
            },
            "finalize": callable_fingerprint(query.finalize),
        }
    )
