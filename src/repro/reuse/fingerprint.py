"""Plan fingerprinting: stable content digests over query semantics.

Cross-query reuse (ReStore, VLDB 2012) is only sound when "the same
computation" is decided by *semantics*, not identity: a tenant who
resubmits an overlapping query five minutes later — possibly in a new
process, after a pickle round-trip, under a different query name — must
hash to the same digest, while any change to a mapper, reducer,
combiner, partitioner, window parameter, or operator config must hash
to a different one.

Since the logical-plan IR landed, this module no longer traverses the
query itself: every digest is taken over the canonical serialization of
:meth:`RecurringQuery.plan() <repro.core.query.RecurringQuery.plan>`
(see :mod:`repro.plan.ir`). The canonical payload layout is
byte-identical to the pre-IR traversal — pinned by the golden-digest
fixture in ``tests/reuse/fixtures/golden_fingerprints.json`` — so
:class:`~repro.reuse.ReuseStore` artifacts written before the refactor
keep matching. The canonicalization rules themselves (named callables,
callable-class config from ``__slots__``/``__dict__``, lambdas raising
:class:`FingerprintError`) live in :mod:`repro.plan.canonical`.

Three digest scopes are exposed. :func:`pane_fingerprint` covers exactly
what determines a pane-level subcomputation's reduce input/output
(source, map side, reduce side, partitioning) and deliberately excludes
pane size — artifacts are keyed by their *time range*, so a store pane
at a finer granularity can be composed into a coarser pane (subsumption
matching). :func:`plan_fingerprint` additionally covers the window
finalizer across all sources and identifies a whole window's final
output. :func:`map_prefix_fingerprint` covers only the Scan → Map →
Shuffle prefix — what the shared-scan optimizer matches on. All exclude
query and job *names* (identity, not semantics) and ingestion rates
(they affect physical packing, never answers).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..plan.canonical import (
    FINGERPRINT_SCHEMA,
    FingerprintError,
    callable_fingerprint,
)
from ..plan.ir import (
    pane_fingerprint_ir,
    plan_fingerprint_ir,
    prefix_fingerprint_ir,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.query import RecurringQuery

__all__ = [
    "FINGERPRINT_SCHEMA",
    "FingerprintError",
    "callable_fingerprint",
    "map_prefix_fingerprint",
    "pane_fingerprint",
    "plan_fingerprint",
]


def pane_fingerprint(query: "RecurringQuery", source: str) -> str:
    """Digest of one source's pane-level subcomputation.

    Everything that determines a pane's reduce-input/-output content
    for a given time range of ``source``'s data — and nothing that
    doesn't: names, rates, and window parameters are excluded (the
    artifact's time range carries the temporal coordinate instead, so
    queries with different win/slide still share pane artifacts).
    """
    if source not in query.windows:
        raise KeyError(f"query {query.name!r} does not read source {source!r}")
    return pane_fingerprint_ir(query.plan().pipeline(source))


def plan_fingerprint(query: "RecurringQuery") -> str:
    """Digest of the query's full window-level operator chain.

    Covers every source's pane semantics plus the finalizer — the
    complete recipe from input records to a window's final output
    pairs. Window *outputs* are additionally keyed by their per-source
    time bounds at match time, so win/slide themselves stay out of the
    digest: two queries with the same chain whose windows happen to
    cover identical data ranges may share results.
    """
    return plan_fingerprint_ir(query.plan())


def map_prefix_fingerprint(query: "RecurringQuery", source: str) -> str:
    """Digest of the shareable Scan → Map → Shuffle prefix over a source.

    Two queries with equal prefix digests produce byte-identical
    partitioned map output for any shared pane of ``source`` — the
    matching key of the shared-scan optimizer (``docs/plan.md``).
    """
    if source not in query.windows:
        raise KeyError(f"query {query.name!r} does not read source {source!r}")
    return prefix_fingerprint_ir(query.plan().pipeline(source))
