"""The cross-query result-reuse store (ReStore for recurring queries).

A :class:`ReuseStore` materializes pane- and window-level outputs into
the simulated HDFS so that *later* queries — submitted minutes later,
by another tenant, or after a server restart — can skip map/shuffle
work Redoop's intra-query caches can no longer help with. Three layers:

**Artifacts.** A pane artifact holds one time range's per-partition
reduce-input runs (and, for aggregations, the pane's reduce-output
partials); a window artifact holds a recurrence's final output pairs.
Every artifact is addressed by a semantic fingerprint (see
:mod:`repro.reuse.fingerprint`) plus its millisecond-exact time range,
carries a full-content sha256 per file, and records lineage — who
produced it, from how much input, and a sha over that *input* so a
match is honored only when the consumer's pane files hold byte-for-byte
the same records (same plan + same range is not enough: a different
workload seed must never be served another seed's answers).

**Matching.** Exact lookups key on ``(fingerprint, range)``. Pane
lookups additionally try *subsumption*: when stored artifacts at a
finer pane granularity exactly tile the requested range (their
granularity divides the new query's GCD pane —
:func:`~repro.core.semantic_analyzer.pane_divides`), the chain is
returned for the runtime to compose.

**Retention.** The store is budget-bounded. Admission and eviction run
through the shared :mod:`repro.core.eviction` machinery with the
ReStore-style :class:`~repro.core.eviction.CostBenefitPolicy`: benefit
is ``bytes x recompute-cost / staleness`` on the store's monotonic use
clock. Corrupt-on-read artifacts (checksum mismatch, missing file) are
discarded immediately, mirroring the runtime's cache discard path.

The store is picklable and travels inside service checkpoints; it can
also be re-attached to a *new* cluster's HDFS (:meth:`attach`
re-materializes every artifact), and saved/loaded standalone
(:meth:`save` / :meth:`load`) for warm-start benchmarks across
processes.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.eviction import CostBenefitPolicy, select_victims
from ..core.semantic_analyzer import pane_divides
from ..hadoop.counters import Counters
from ..hadoop.types import Record

__all__ = [
    "REUSE_CACHE_TYPE",
    "ReuseEntry",
    "ReuseLineage",
    "ReuseStore",
    "content_sha",
    "records_sha",
]

#: Cache-type tag reuse entries expose to the shared eviction machinery
#: (the node registries use 1=reduce-input, 2=reduce-output).
REUSE_CACHE_TYPE = 3


def _ms(seconds: float) -> int:
    return int(round(seconds * 1000))


def content_sha(payload: Sequence[Any]) -> str:
    """Full sha256 over a payload's canonical (repr) form."""
    joined = "\n".join(map(repr, payload))
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()


def records_sha(records: Sequence[Record]) -> str:
    """Input-lineage digest: sha256 over the records themselves."""
    return content_sha(records)


@dataclass(slots=True)
class ReuseLineage:
    """Provenance of one artifact, for audit and input verification."""

    producer: str  #: query name that published the artifact
    job: str  #: job name it ran under
    created_at: float  #: virtual time of publication
    input_records: int  #: records in the producing input range
    input_bytes: int  #: bytes of that input range
    input_sha: str  #: sha256 over the input records (identity guard)
    #: Estimated cost of recomputing the artifact from HDFS, in input
    #: bytes — the cost term of the ReStore benefit score.
    recompute_cost: float = 0.0


@dataclass
class ReuseEntry:
    """One stored artifact: a pane's runs or a window's output."""

    key: str  #: canonical store key (also the HDFS path stem)
    fingerprint: str
    kind: str  #: ``"pane"`` or ``"window"``
    source: str  #: source name; ``""`` for window artifacts
    t_start_ms: int
    t_end_ms: int
    partitions: int  #: reduce partitions (1 for window artifacts)
    has_rout: bool
    size: int  #: total payload bytes across all files
    checksums: Dict[str, str]  #: file suffix -> sha256 of its payload
    lineage: ReuseLineage
    hits: int = 0
    last_used: int = 0  #: store use-clock value of the last read

    # Duck-typed CacheEntry surface for repro.core.eviction.
    @property
    def pid(self) -> str:
        return self.key

    @property
    def cache_type(self) -> int:
        return REUSE_CACHE_TYPE

    @property
    def partition(self) -> int:
        return 0

    @property
    def recompute_cost(self) -> float:
        return max(1.0, self.lineage.recompute_cost)

    @property
    def pane_ms(self) -> int:
        return self.t_end_ms - self.t_start_ms

    def paths(self) -> List[str]:
        return [f"/reuse/{self.key}/{suffix}" for suffix in sorted(self.checksums)]


def _pane_key(fingerprint: str, source: str, t0_ms: int, t1_ms: int) -> str:
    return f"pane/{fingerprint}/{source}/{t0_ms}-{t1_ms}"


def _bounds_token(bounds: Mapping[str, Tuple[float, float]]) -> str:
    return ";".join(
        f"{src}:{_ms(bounds[src][0])}-{_ms(bounds[src][1])}"
        for src in sorted(bounds)
    )


def _window_key(fingerprint: str, bounds: Mapping[str, Tuple[float, float]]) -> str:
    return f"window/{fingerprint}/{_bounds_token(bounds)}"


class ReuseStore:
    """Budget-bounded, checksummed cross-query artifact store.

    Parameters
    ----------
    capacity_bytes:
        Byte budget for all stored artifacts; ``None`` = unbounded.
        Publications that would overflow it evict lowest-benefit
        entries first (cost-benefit policy) and are rejected when even
        that cannot make room.
    hdfs:
        The simulated HDFS to materialize into. May be attached later
        (and re-attached to a different cluster) via :meth:`attach`.
    counters:
        Counter bag for the ``reuse.*`` family; the owning runtime
        injects its own bag on attach so store activity lands next to
        cache and scheduler counters.
    """

    def __init__(
        self,
        *,
        capacity_bytes: Optional[int] = None,
        hdfs=None,
        counters: Optional[Counters] = None,
    ) -> None:
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive when set")
        self.capacity_bytes = capacity_bytes
        self.counters = counters if counters is not None else Counters()
        self._entries: Dict[str, ReuseEntry] = {}
        self._hdfs = None
        #: path -> (records, created_at) staged while detached from HDFS.
        self._staged: Dict[str, Tuple[Tuple[Record, ...], float]] = {}
        self._use_clock = 0
        if hdfs is not None:
            self.attach(hdfs)

    # ------------------------------------------------------------------
    # attachment and persistence
    # ------------------------------------------------------------------

    def attach(self, hdfs, *, counters: Optional[Counters] = None) -> None:
        """(Re-)materialize every artifact into ``hdfs``.

        Idempotent for the currently attached filesystem. Attaching to
        a *different* cluster's HDFS (warm start, server restart on a
        fresh cluster) copies every artifact's records across; entries
        whose bytes cannot be recovered are dropped through the corrupt
        path rather than left dangling.
        """
        if counters is not None:
            self.counters = counters
        if hdfs is self._hdfs:
            return
        payloads: Dict[str, Tuple[Tuple[Record, ...], float]] = {}
        lost: List[ReuseEntry] = []
        for key in sorted(self._entries):
            entry = self._entries[key]
            ok = True
            for path in entry.paths():
                if self._hdfs is not None and self._hdfs.exists(path):
                    f = self._hdfs.open(path)
                    payloads[path] = (f.records, f.created_at)
                elif path in self._staged:
                    payloads[path] = self._staged[path]
                else:
                    ok = False
                    break
            if not ok:
                lost.append(entry)
        for entry in lost:
            self.discard(entry, reason="corrupt")
        self._hdfs = hdfs
        self._staged.clear()
        for key in sorted(self._entries):
            for path in self._entries[key].paths():
                records, created_at = payloads[path]
                if hdfs.exists(path):
                    hdfs.delete(path)
                hdfs.create_isolated(path, records, created_at=created_at)

    def save(self, path) -> None:
        """Persist the manifest plus every artifact's records to a file."""
        files: Dict[str, Tuple[Tuple[Record, ...], float]] = {}
        for key in sorted(self._entries):
            for p in self._entries[key].paths():
                if self._hdfs is not None and self._hdfs.exists(p):
                    f = self._hdfs.open(p)
                    files[p] = (f.records, f.created_at)
                elif p in self._staged:
                    files[p] = self._staged[p]
        blob = {
            "entries": self._entries,
            "files": files,
            "use_clock": self._use_clock,
            "capacity_bytes": self.capacity_bytes,
        }
        with open(path, "wb") as fh:
            pickle.dump(blob, fh)

    @classmethod
    def load(cls, path, *, hdfs=None, counters=None) -> "ReuseStore":
        """Rebuild a store saved with :meth:`save`; optionally attach."""
        with open(path, "rb") as fh:
            blob = pickle.load(fh)
        store = cls(capacity_bytes=blob["capacity_bytes"], counters=counters)
        store._entries = blob["entries"]
        store._staged = dict(blob["files"])
        store._use_clock = blob["use_clock"]
        if hdfs is not None:
            store.attach(hdfs)
        return store

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def entries(self) -> List[ReuseEntry]:
        return [self._entries[k] for k in sorted(self._entries)]

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total_bytes(self) -> int:
        return sum(e.size for e in self._entries.values())

    @property
    def hdfs(self):
        return self._hdfs

    def count_matches(self, fingerprints) -> int:
        """Stored artifacts whose fingerprint is in ``fingerprints``."""
        wanted = set(fingerprints)
        return sum(1 for e in self._entries.values() if e.fingerprint in wanted)

    # ------------------------------------------------------------------
    # publication
    # ------------------------------------------------------------------

    def has_pane(self, fingerprint: str, t0: float, t1: float, source: str) -> bool:
        return _pane_key(fingerprint, source, _ms(t0), _ms(t1)) in self._entries

    def has_window(
        self, fingerprint: str, bounds: Mapping[str, Tuple[float, float]]
    ) -> bool:
        return _window_key(fingerprint, bounds) in self._entries

    def publish_pane(
        self,
        fingerprint: str,
        source: str,
        t0: float,
        t1: float,
        rins: Sequence[Sequence[Any]],
        routs: Optional[Sequence[Sequence[Any]]],
        *,
        pair_size: int,
        out_pair_size: int,
        lineage: ReuseLineage,
    ) -> bool:
        """Materialize one pane's per-partition runs; returns success.

        Idempotent: a pane already stored under the same key is left
        untouched. Rejection (budget) and acceptance are both silent to
        the producer — publication must never affect its own window.
        """
        key = _pane_key(fingerprint, source, _ms(t0), _ms(t1))
        if key in self._entries:
            return False
        if routs is not None and len(routs) != len(rins):
            raise ValueError("rout partition count must match rin partition count")
        files: Dict[str, Tuple[List[Any], int]] = {}
        for p, run in enumerate(rins):
            files[f"rin-p{p:05d}"] = (list(run), len(run) * pair_size)
        if routs is not None:
            for p, run in enumerate(routs):
                files[f"rout-p{p:05d}"] = (list(run), len(run) * out_pair_size)
        entry = ReuseEntry(
            key=key,
            fingerprint=fingerprint,
            kind="pane",
            source=source,
            t_start_ms=_ms(t0),
            t_end_ms=_ms(t1),
            partitions=len(rins),
            has_rout=routs is not None,
            size=sum(nbytes for _payload, nbytes in files.values()),
            checksums={},
            lineage=lineage,
        )
        return self._admit(entry, files)

    def publish_window(
        self,
        fingerprint: str,
        bounds: Mapping[str, Tuple[float, float]],
        pairs: Sequence[Any],
        *,
        out_pair_size: int,
        lineage: ReuseLineage,
    ) -> bool:
        """Materialize one recurrence's final output pairs."""
        key = _window_key(fingerprint, bounds)
        if key in self._entries:
            return False
        starts = [_ms(lo) for lo, _hi in bounds.values()]
        ends = [_ms(hi) for _lo, hi in bounds.values()]
        entry = ReuseEntry(
            key=key,
            fingerprint=fingerprint,
            kind="window",
            source="",
            t_start_ms=min(starts),
            t_end_ms=max(ends),
            partitions=1,
            has_rout=False,
            size=len(pairs) * out_pair_size,
            checksums={},
            lineage=lineage,
        )
        return self._admit(entry, {"out": (list(pairs), entry.size)})

    def _admit(
        self, entry: ReuseEntry, files: Mapping[str, Tuple[List[Any], int]]
    ) -> bool:
        if self._hdfs is None:
            raise RuntimeError("reuse store is not attached to an HDFS")
        if not self._make_room(entry.size):
            self.counters.increment("reuse.admission_rejected")
            return False
        entry.last_used = self._tick()
        for suffix in sorted(files):
            payload, nbytes = files[suffix]
            entry.checksums[suffix] = content_sha(payload)
            path = f"/reuse/{entry.key}/{suffix}"
            if self._hdfs.exists(path):
                self._hdfs.delete(path)
            records = tuple(
                Record(
                    ts=entry.lineage.created_at,
                    value=pair,
                    size=max(1, nbytes // max(1, len(payload))),
                )
                for pair in payload
            )
            self._hdfs.create_isolated(
                path, records, created_at=entry.lineage.created_at
            )
        self._entries[entry.key] = entry
        self.counters.increment("reuse.publishes")
        self.counters.increment("reuse.bytes_published", entry.size)
        return True

    def _make_room(self, need: int) -> bool:
        cap = self.capacity_bytes
        if cap is None:
            return True
        if need > cap:
            return False
        overflow = self.total_bytes + need - cap
        if overflow <= 0:
            return True
        policy = CostBenefitPolicy(now=float(self._use_clock))
        victims = select_victims(
            policy, self.entries(), overflow, lambda _pid: 0
        )
        if sum(v.size for v in victims) < overflow:
            return False
        for victim in victims:
            self.discard(victim, reason="evicted")
        return True

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------

    def match_pane(
        self, fingerprint: str, t0: float, t1: float, source: str
    ) -> Optional[List[ReuseEntry]]:
        """Stored pane entries covering ``[t0, t1)`` exactly, or None.

        A single-entry result is an exact match; a multi-entry result
        is a subsumption chain of finer-granularity artifacts, in time
        order, whose granularity divides the requested pane and whose
        ranges tile it without gap or overlap.
        """
        t0_ms, t1_ms = _ms(t0), _ms(t1)
        exact = self._entries.get(_pane_key(fingerprint, source, t0_ms, t1_ms))
        if exact is not None:
            return [exact]
        span = (t1 - t0) if t1 > t0 else 0.0
        by_start: Dict[int, ReuseEntry] = {}
        for key in sorted(self._entries):
            e = self._entries[key]
            if (
                e.kind != "pane"
                or e.fingerprint != fingerprint
                or e.source != source
                or e.t_start_ms < t0_ms
                or e.t_end_ms > t1_ms
                or not pane_divides(e.pane_ms / 1000.0, span)
            ):
                continue
            best = by_start.get(e.t_start_ms)
            # Prefer the coarsest stored granularity (fewest pieces).
            if best is None or e.t_end_ms > best.t_end_ms:
                by_start[e.t_start_ms] = e
        chain: List[ReuseEntry] = []
        cursor = t0_ms
        while cursor < t1_ms:
            e = by_start.get(cursor)
            if e is None:
                self.counters.increment("reuse.misses")
                return None
            chain.append(e)
            cursor = e.t_end_ms
        if cursor != t1_ms or not chain:
            self.counters.increment("reuse.misses")
            return None
        return chain

    def match_window(
        self, fingerprint: str, bounds: Mapping[str, Tuple[float, float]]
    ) -> Optional[ReuseEntry]:
        entry = self._entries.get(_window_key(fingerprint, bounds))
        if entry is None:
            self.counters.increment("reuse.misses")
        return entry

    # ------------------------------------------------------------------
    # reads (checksum-verified)
    # ------------------------------------------------------------------

    def read_pane(
        self, entry: ReuseEntry
    ) -> Optional[Tuple[List[List[Any]], Optional[List[List[Any]]]]]:
        """Read one pane artifact's runs: ``(rins, routs_or_None)``.

        Any missing or checksum-mismatched file drops the whole entry
        through the corrupt path and returns ``None`` — a torn artifact
        must never be partially served.
        """
        rins: List[List[Any]] = []
        for p in range(entry.partitions):
            payload = self._read_file(entry, f"rin-p{p:05d}")
            if payload is None:
                return None
            rins.append(payload)
        routs: Optional[List[List[Any]]] = None
        if entry.has_rout:
            routs = []
            for p in range(entry.partitions):
                payload = self._read_file(entry, f"rout-p{p:05d}")
                if payload is None:
                    return None
                routs.append(payload)
        self._record_hit(entry)
        return rins, routs

    def read_window(self, entry: ReuseEntry) -> Optional[List[Any]]:
        """Read a window artifact's final output pairs (or None)."""
        payload = self._read_file(entry, "out")
        if payload is None:
            return None
        self._record_hit(entry)
        return payload

    def _read_file(self, entry: ReuseEntry, suffix: str) -> Optional[List[Any]]:
        if self._hdfs is None:
            raise RuntimeError("reuse store is not attached to an HDFS")
        path = f"/reuse/{entry.key}/{suffix}"
        want = entry.checksums.get(suffix)
        if want is None or not self._hdfs.exists(path):
            self.discard(entry, reason="corrupt")
            return None
        payload = [r.value for r in self._hdfs.read_records(path)]
        if content_sha(payload) != want:
            self.discard(entry, reason="corrupt")
            return None
        return payload

    def _record_hit(self, entry: ReuseEntry) -> None:
        entry.hits += 1
        entry.last_used = self._tick()
        self.counters.increment("reuse.hits")

    def _tick(self) -> int:
        self._use_clock += 1
        return self._use_clock

    # ------------------------------------------------------------------
    # discard (the store's corrupt/evicted funnel)
    # ------------------------------------------------------------------

    def discard(self, entry: ReuseEntry, *, reason: str) -> None:
        """Drop an artifact and its files; mirrors the cache discard path."""
        if self._entries.pop(entry.key, None) is None:
            return
        if self._hdfs is not None:
            for path in entry.paths():
                if self._hdfs.exists(path):
                    self._hdfs.delete(path)
        for path in entry.paths():
            self._staged.pop(path, None)
        if reason == "evicted":
            self.counters.increment("reuse.evicted")
            self.counters.increment("reuse.bytes_evicted", entry.size)
        else:
            self.counters.increment("reuse.corrupt_dropped")
