"""Worker supervision for the process-pool execution backend.

A real worker pool has failure modes the simulator's metadata-level
fault injection never exercises: a worker segfaults or is OOM-killed
(``BrokenProcessPool``), a worker wedges forever (``future.result()``
with no timeout never returns), a pool cannot be (re)started at all.
:class:`WorkerSupervisor` owns the ``ProcessPoolExecutor`` lifecycle
and runs every batch under a recovery ladder:

1. **per-batch deadline** — results are gathered with a bounded
   timeout; when it expires the surviving workers are reaped
   (terminated, not joined) so a hung worker can never wedge a run;
2. **broken-pool detection and bounded rebuild** — a crashed worker
   breaks the pool; the supervisor rebuilds it (at most
   ``max_pool_rebuilds`` times per batch) and retries the tasks that
   had no result yet;
3. **per-task retry with deterministic backoff** — each lost task is
   retried up to ``max_task_retries`` times; the pause between rebuild
   rounds follows the deterministic schedule
   ``min(cap, base * factor**(round-1))`` and is *accounted* (counters,
   trace instants at virtual time) without ever touching the cost
   model's virtual clock;
4. **poison-task quarantine** — a task that exhausts its retries is
   re-run serially in the coordinator process, where a genuine
   user-code exception surfaces exactly as it would on the serial
   backend;
5. **terminal path** — when the rebuild budget is spent,
   :class:`WorkerFaultError` is raised; the runtime funnels it into
   ``TaskAttemptsExhaustedError`` → degraded window → cache rollback,
   so a dead pool can never corrupt window digests or published reuse
   artifacts.

Because task bodies are pure and results are kept in submission order,
retries and quarantines are invisible in the output: the worker-fault
differential oracle pins the digests of a process run under real
worker faults to a fault-free serial run, byte for byte.

Like the rest of ``repro.exec`` this module has zero repro-internal
imports, so it can never participate in an import cycle.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import BrokenExecutor, Executor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .worker_faults import WorkerFault, WorkerFaultPlan, faulty_invoke

__all__ = [
    "BatchStats",
    "SupervisionConfig",
    "WorkerFaultError",
    "WorkerSupervisor",
]


class WorkerFaultError(RuntimeError):
    """Terminal worker-pool failure: the batch could not be completed.

    Raised when the pool-rebuild budget is exhausted with tasks still
    unrecovered. Carries enough for the runtime to translate into its
    ``TaskAttemptsExhaustedError`` degradation path and for the
    backend to flush the partial recovery accounting first.
    """

    def __init__(
        self,
        reason: str,
        *,
        tasks_lost: int,
        attempts: int,
        stats: "BatchStats",
    ) -> None:
        super().__init__(
            f"{reason}: {tasks_lost} task(s) unrecovered after "
            f"{stats.rebuilds} pool rebuild(s)"
        )
        self.reason = reason
        self.tasks_lost = tasks_lost
        #: Worst per-task attempt count when the batch died.
        self.attempts = attempts
        self.stats = stats


@dataclass(frozen=True)
class SupervisionConfig:
    """Tunable knobs of the recovery ladder (all physical seconds)."""

    #: Wall-clock budget for one gather round of a batch; ``None``
    #: disables the deadline (then a hung worker blocks forever, so
    #: hang injection refuses to arm without one).
    batch_deadline: Optional[float] = 120.0
    #: Retries per task before it is quarantined to in-process serial.
    max_task_retries: int = 2
    #: Pool rebuilds per batch before the terminal path.
    max_pool_rebuilds: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 1.0

    def __post_init__(self) -> None:
        if self.batch_deadline is not None and self.batch_deadline <= 0:
            raise ValueError("batch_deadline must be positive or None")
        if self.max_task_retries < 0 or self.max_pool_rebuilds < 0:
            raise ValueError("retry/rebuild budgets are non-negative")

    def backoff(self, round_no: int) -> float:
        """Deterministic pause before rebuild round ``round_no`` (1-based)."""
        return min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** max(0, round_no - 1),
        )

    def hang_seconds(self) -> float:
        """Sleep long enough that only a deadline reap ends the task."""
        if self.batch_deadline is None:
            raise ValueError(
                "hang injection needs a batch deadline; an undeadlined "
                "pool would wedge forever"
            )
        return self.batch_deadline * 4 + 1.0


@dataclass(slots=True)
class BatchStats:
    """Recovery accounting for one batch (flushed to ``exec.*``)."""

    retries: int = 0
    worker_lost: int = 0
    quarantined: int = 0
    rebuilds: int = 0
    deadline_reaps: int = 0
    backoff_seconds: float = 0.0

    def any(self) -> bool:
        return bool(
            self.retries
            or self.worker_lost
            or self.quarantined
            or self.rebuilds
            or self.deadline_reaps
        )


class _DoneCounter:
    """Thread-safe completion count for the incremental queue probe."""

    __slots__ = ("_n", "_lock")

    def __init__(self) -> None:
        self._n = 0
        self._lock = threading.Lock()

    def hit(self, _future) -> None:
        with self._lock:
            self._n += 1

    def value(self) -> int:
        with self._lock:
            return self._n


_UNSET = object()

#: Lane key for tasks the quarantine ran in the coordinator process.
WorkerKey = Tuple[int, int]


class WorkerSupervisor:
    """Owns the process pool and runs batches under the recovery ladder.

    The owning backend keeps the thread-pool fallback and the counter /
    trace plumbing; the supervisor keeps everything that can break: the
    executor handle, the armed worker faults, and the retry loop.
    """

    def __init__(
        self, workers: int, config: Optional[SupervisionConfig] = None
    ) -> None:
        self.workers = workers
        self.config = config or SupervisionConfig()
        self._pool: Optional[Executor] = None
        #: Set when process pools cannot start in this environment.
        self._unavailable = False
        #: First-attempt task ordinal -> armed fault (chaos-controlled).
        self._armed: Dict[int, WorkerFault] = {}
        #: First-attempt submissions seen over the supervisor lifetime.
        self._ordinal = 0
        #: Stats of the most recent batch (read by the backend's
        #: accounting; the coordinator is single-threaded).
        self.last_stats: Optional[BatchStats] = None

    # -- pool lifecycle -------------------------------------------------

    def pool(self) -> Optional[Executor]:
        """The live executor, lazily created; ``None`` if unavailable."""
        if self._unavailable:
            return None
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            except (OSError, PermissionError, ValueError):
                self._unavailable = True
                return None
        return self._pool

    def healthy(self) -> bool:
        """No broken pool left behind (the chaos invariant checker's
        view: the supervisor either rebuilt the pool or raised)."""
        return self._pool is None or not getattr(self._pool, "_broken", False)

    def reap(self) -> None:
        """Terminate every worker and drop the pool handle.

        Used both for hung-worker reaping (deadline expiry: workers may
        be wedged, so ``terminate`` — never ``join`` first) and for
        clearing a broken pool before a rebuild.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        procs = list(getattr(pool, "_processes", {}).values() or ())
        for proc in procs:
            try:
                proc.terminate()
            except Exception:
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        for proc in procs:
            try:
                proc.join(timeout=1.0)
            except Exception:
                pass

    def close(self) -> None:
        """Orderly shutdown (idempotent). A broken pool is reaped."""
        pool = self._pool
        if pool is None:
            return
        if getattr(pool, "_broken", False):
            self.reap()
            return
        self._pool = None
        pool.shutdown(wait=True, cancel_futures=True)

    # -- fault arming (chaos events, plans, CLI flags) ------------------

    def arm(self, kind: str, count: int = 1) -> None:
        """Arm ``count`` faults on the next free first-attempt ordinals."""
        if count < 1:
            raise ValueError("count must be >= 1")
        if kind == "kill":
            fault = WorkerFault("kill")
        elif kind == "hang":
            fault = WorkerFault("hang", seconds=self.config.hang_seconds())
        elif kind == "slow":
            fault = WorkerFault("slow", seconds=0.05)
        else:
            raise ValueError(f"unknown worker fault kind {kind!r}")
        ordinal = self._ordinal
        for _ in range(count):
            while ordinal in self._armed:
                ordinal += 1
            self._armed[ordinal] = fault
            ordinal += 1

    def arm_plan(self, plan: WorkerFaultPlan) -> None:
        """Arm a seeded scattering of faults starting at the current ordinal."""
        hang_seconds = (
            self.config.hang_seconds() if plan.hangs else 1.0
        )
        self._armed.update(
            plan.assign(self._ordinal, hang_seconds=hang_seconds)
        )

    def pending_faults(self) -> int:
        return len(self._armed)

    def drain_faults(self) -> int:
        """Discard unconsumed faults; returns how many were dropped."""
        n = len(self._armed)
        self._armed.clear()
        return n

    def _take_fault(self) -> Optional[WorkerFault]:
        fault = self._armed.pop(self._ordinal, None)
        self._ordinal += 1
        return fault

    # -- the supervised batch loop --------------------------------------

    def run_batch(
        self, fn: Callable[..., Any], calls: Sequence[Tuple[tuple, dict]]
    ) -> Tuple[List[Any], Dict[WorkerKey, Tuple[int, float]], int, BatchStats]:
        """Execute one batch with deadlines, retries, and quarantine.

        Returns ``(results, raw_lanes, queue_peak, stats)`` with results
        in submission order. Raises :class:`WorkerFaultError` when the
        rebuild budget is exhausted with tasks still unrecovered, and
        re-raises any genuine user-code exception (via the quarantine)
        untouched.
        """
        cfg = self.config
        n = len(calls)
        results: List[Any] = [_UNSET] * n
        attempts = [0] * n
        lanes: Dict[WorkerKey, Tuple[int, float]] = {}
        stats = BatchStats()
        self.last_stats = stats
        queue_peak = 0
        # Faults bind to first attempts by global ordinal, in submission
        # order — deterministic for a given workload + arming sequence.
        faults: Dict[int, WorkerFault] = {}
        for i in range(n):
            fault = self._take_fault()
            if fault is not None:
                faults[i] = fault
        pending = list(range(n))
        while pending:
            pool = self.pool()
            if pool is None:
                raise WorkerFaultError(
                    "process pool unavailable mid-batch",
                    tasks_lost=len(pending),
                    attempts=max((attempts[i] for i in pending), default=0),
                    stats=stats,
                )
            done = _DoneCounter()
            futures: Dict[int, Any] = {}
            failed = False
            for i in pending:
                fault = faults.pop(i, None) if attempts[i] == 0 else None
                args, kwargs = calls[i]
                try:
                    future = pool.submit(faulty_invoke, fault, fn, args, kwargs)
                except BrokenExecutor:
                    # A fault fired while the rest of the batch was
                    # still being submitted; the unsubmitted tail goes
                    # straight to the retry round.
                    stats.worker_lost += 1
                    failed = True
                    break
                future.add_done_callback(done.hit)
                futures[i] = future
                in_flight = len(futures) - done.value()
                queue_peak = max(queue_peak, in_flight - self.workers)

            if not failed:
                deadline = (
                    time.monotonic() + cfg.batch_deadline
                    if cfg.batch_deadline is not None
                    else None
                )
                for i in pending:
                    try:
                        if deadline is not None:
                            remaining = deadline - time.monotonic()
                            payload = futures[i].result(
                                timeout=max(0.0, remaining)
                            )
                        else:
                            payload = futures[i].result()
                    except FuturesTimeoutError:
                        stats.deadline_reaps += 1
                        stats.worker_lost += 1
                        failed = True
                        break
                    except BrokenExecutor:
                        stats.worker_lost += 1
                        failed = True
                        break
                    self._record(lanes, results, i, payload)
            if not failed:
                break

            # Harvest results that completed before the break, without
            # blocking; everything else survives to the retry round.
            survivors: List[int] = []
            for i in pending:
                if results[i] is not _UNSET:
                    continue
                future = futures.get(i)
                if future is not None and future.done():
                    try:
                        self._record(lanes, results, i, future.result(timeout=0))
                        continue
                    except Exception:
                        pass
                survivors.append(i)

            self.reap()
            stats.rebuilds += 1
            if stats.rebuilds > cfg.max_pool_rebuilds:
                raise WorkerFaultError(
                    "pool rebuild budget exhausted",
                    tasks_lost=len(survivors),
                    attempts=max((attempts[i] + 1 for i in survivors), default=0),
                    stats=stats,
                )
            retry: List[int] = []
            for i in survivors:
                attempts[i] += 1
                if attempts[i] > cfg.max_task_retries:
                    # Poison-task quarantine: run the offending call
                    # serially in-process. A genuine user-code error
                    # surfaces here exactly as the serial backend would
                    # raise it; an injection-victim simply succeeds.
                    args, kwargs = calls[i]
                    t0 = time.perf_counter()
                    result = fn(*args, **kwargs)
                    wall = time.perf_counter() - t0
                    self._record(
                        lanes,
                        results,
                        i,
                        (os.getpid(), threading.get_ident(), wall, result),
                    )
                    stats.quarantined += 1
                else:
                    retry.append(i)
                    stats.retries += 1
            pending = retry
            if pending:
                pause = cfg.backoff(stats.rebuilds)
                stats.backoff_seconds += pause
                time.sleep(pause)
        return results, lanes, queue_peak, stats

    @staticmethod
    def _record(lanes, results, index, payload) -> None:
        pid, ident, wall, result = payload
        tasks, busy = lanes.get((pid, ident), (0, 0.0))
        lanes[(pid, ident)] = (tasks + 1, busy + wall)
        results[index] = result

    # -- checkpoint safety ----------------------------------------------

    def __getstate__(self):
        state = self.__dict__.copy()
        # Live executors never ride a checkpoint; armed faults are
        # transient chaos state and a restored supervisor starts clean
        # (ordinal 0, healthy, re-probing pool availability).
        state["_pool"] = None
        state["_unavailable"] = False
        state["_armed"] = {}
        state["_ordinal"] = 0
        state["last_stats"] = None
        return state
