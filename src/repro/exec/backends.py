"""Pluggable execution backends for map/reduce task user-code.

The simulator separates two concerns that real Hadoop fuses: *when* a
task runs (virtual time, decided by the cost model, the slot simulation
and the cache-aware scheduler) and *what* it computes (the pure data
transformations in :mod:`repro.hadoop.task`). A backend parallelises
only the second concern. The scheduling loops stay sequential and
authoritative for virtual time, so a run's span spine, counters (other
than ``exec.*``), window digests and scheduling decisions are identical
whichever backend executed the task bodies.

Determinism contract
--------------------
``run_tasks`` returns results strictly in **submission order**, however
the pool interleaves completions. Task functions must be pure (no
shared mutable state), which every ``execute_*`` helper in
:mod:`repro.hadoop.task` is. Under that contract serial and parallel
runs are byte-identical — the parity oracle in
``tests/exec/test_parity.py`` enforces it the same way the chaos
differential oracle enforces recovery neutrality.

Fallback ladder
---------------
:class:`ProcessPoolBackend` probes each batch for picklability (the
function *and every call's* arguments must survive ``pickle.dumps``).
Non-picklable jobs fall back to a thread pool (counted in
``exec.pickle_fallbacks``); an environment where process pools cannot
start at all (sandboxes without working semaphores) degrades to
threads permanently (``exec.process_pool_unavailable``).

Supervision
-----------
Process-mode batches run under the :class:`~repro.exec.supervisor.
WorkerSupervisor` recovery ladder: per-batch deadlines reap hung
workers, broken pools are rebuilt a bounded number of times, lost
tasks retry with deterministic backoff, poison tasks are quarantined
to in-process serial execution, and a spent rebuild budget raises
:class:`~repro.exec.supervisor.WorkerFaultError` into the runtime's
degraded-window machinery. Recovery is accounted in ``exec.retries``,
``exec.worker_lost``, ``exec.quarantined`` and ``exec.pool_rebuilds``
plus an ``exec.recovery`` trace instant — all at virtual time, never
perturbing the cost model. See ``docs/parallelism.md``.

Observability
-------------
Every batch emits ``exec.*`` counters into the caller's bag and, when a
tracer is supplied, one ``exec.batch`` instant plus one ``exec.worker``
instant per pool worker used — the per-worker lanes the Chrome exporter
renders as ``exec-w<n>`` threads. Wall times never touch span
timestamps: virtual time stays the only time on the spine's spans.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from concurrent.futures import Executor, ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .supervisor import (
    SupervisionConfig,
    WorkerFaultError,
    WorkerSupervisor,
    _DoneCounter,
)
from .worker_faults import WorkerFaultPlan

__all__ = [
    "BACKENDS",
    "ExecBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "make_backend",
]

#: Registry of backend names accepted by :func:`make_backend` and the
#: CLI's ``--backend`` flag.
BACKENDS: Tuple[str, ...] = ("serial", "process")

#: One positional-args/keyword-args pair per task.
TaskCall = Tuple[tuple, dict]

#: Trace category for exec instants. Kept as a local constant (it
#: mirrors ``repro.trace.CAT_EXEC``) so this package has zero
#: repro-internal imports and can never participate in a cycle.
CAT_EXEC = "exec"


def _timed_invoke(fn: Callable[..., Any], args: tuple, kwargs: dict):
    """Run one task and report which worker ran it and for how long.

    Module-level so it pickles into pool workers. Wall time is measured
    inside the worker (``perf_counter`` deltas are process-local but
    durations compare fine); the worker identity is the (pid, thread)
    pair, mapped to a dense lane index by the coordinator.
    """
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return (os.getpid(), threading.get_ident(), time.perf_counter() - t0, result)


class ExecBackend:
    """Base class: run batches of pure task calls, in order.

    Subclasses implement :meth:`_execute`; the base class wraps it with
    the shared accounting (``exec.*`` counters, trace instants).
    """

    #: Registry name (matches the CLI's ``--backend`` choices).
    name: str = "abstract"
    #: Worker slots this backend can occupy concurrently.
    workers: int = 1
    #: Whether task bodies may run concurrently.
    parallel: bool = False

    def run_tasks(
        self,
        fn: Callable[..., Any],
        calls: Sequence[TaskCall],
        *,
        phase: str = "task",
        counters: Any = None,
        tracer: Any = None,
        now: Optional[float] = None,
    ) -> List[Any]:
        """Execute ``fn`` over every call in ``calls``.

        Results come back in submission order regardless of completion
        order — the determinism contract every caller relies on.
        ``counters`` (a :class:`~repro.hadoop.counters.Counters`-like
        bag) receives the ``exec.*`` family; ``tracer`` receives batch
        and per-worker-lane instants stamped at virtual time ``now``.
        """
        calls = list(calls)
        if not calls:
            return []
        t0 = time.perf_counter()
        results, lanes, mode, queue_peak = self._execute(fn, calls)
        wall = time.perf_counter() - t0
        self._account(
            phase, len(calls), wall, mode, lanes, queue_peak, counters, tracer, now
        )
        return results

    def _execute(
        self, fn: Callable[..., Any], calls: Sequence[TaskCall]
    ):
        """Return ``(results, lanes, mode, queue_peak)``.

        ``lanes`` maps a dense worker index to ``(tasks, busy_seconds)``.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release any pools (idempotent; serial backends are no-ops)."""

    # ------------------------------------------------------------------
    # shared accounting
    # ------------------------------------------------------------------

    def _account(
        self,
        phase: str,
        n_tasks: int,
        wall: float,
        mode: str,
        lanes: Dict[int, Tuple[int, float]],
        queue_peak: int,
        counters: Any,
        tracer: Any,
        now: Optional[float],
    ) -> None:
        # Counters hold only run-deterministic facts: the runtime's
        # counter bag is compared bit-for-bit across repeat runs.
        # Physical measurements (wall seconds, queue depth) vary with
        # machine load, so they ride the exec.* trace instants instead.
        if counters is not None:
            counters.increment("exec.batches")
            counters.increment("exec.tasks_dispatched", n_tasks)
            counters.increment("exec.tasks_completed", n_tasks)
        if tracer is not None and now is not None:
            tracer.instant(
                "exec.batch",
                CAT_EXEC,
                time=now,
                phase=phase,
                tasks=n_tasks,
                wall_ms=round(wall * 1000, 3),
                mode=mode,
                backend=self.name,
                workers=self.workers,
                queue_peak=queue_peak,
            )
            for lane in sorted(lanes):
                tasks, busy = lanes[lane]
                tracer.instant(
                    "exec.worker",
                    CAT_EXEC,
                    time=now,
                    phase=phase,
                    worker=lane,
                    tasks=tasks,
                    busy_ms=round(busy * 1000, 3),
                )


class SerialBackend(ExecBackend):
    """Today's behaviour: run every task inline, one after another.

    The default everywhere; parity between this and the pool backends
    is what the digest oracle pins.
    """

    name = "serial"
    workers = 1
    parallel = False

    def _execute(self, fn, calls):
        results: List[Any] = []
        busy = 0.0
        for args, kwargs in calls:
            t0 = time.perf_counter()
            results.append(fn(*args, **kwargs))
            busy += time.perf_counter() - t0
        return results, {0: (len(calls), busy)}, "serial", 0


class ProcessPoolBackend(ExecBackend):
    """Run task bodies across a supervised ``ProcessPoolExecutor``.

    Pools are created lazily (a restored checkpoint or a run that never
    batches more than one task never forks) and owned by a
    :class:`~repro.exec.supervisor.WorkerSupervisor`, which gathers
    every batch under the deadline/retry/rebuild/quarantine ladder.
    Each batch is probed for picklability; jobs carrying unpicklable
    payloads run on a thread pool instead so no workload is ever
    rejected. Results come back in submission order whichever path ran
    them, which is the whole determinism story: completion order — and
    recovery — never matters.
    """

    name = "process"
    parallel = True

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        batch_deadline: Optional[float] = SupervisionConfig.batch_deadline,
        max_task_retries: int = SupervisionConfig.max_task_retries,
        max_pool_rebuilds: int = SupervisionConfig.max_pool_rebuilds,
        backoff_base: float = SupervisionConfig.backoff_base,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers if workers else max(2, (os.cpu_count() or 2) - 1)
        self._supervisor = WorkerSupervisor(
            self.workers,
            SupervisionConfig(
                batch_deadline=batch_deadline,
                max_task_retries=max_task_retries,
                max_pool_rebuilds=max_pool_rebuilds,
                backoff_base=backoff_base,
            ),
        )
        self._thread_pool: Optional[Executor] = None
        #: (pid, thread ident) -> dense lane index, stable per backend.
        self._lane_ids: Dict[Tuple[int, int], int] = {}
        #: Stats of the last supervised batch, for ``_account``.
        self._last_stats = None

    # -- pool management ------------------------------------------------

    @property
    def _pool(self) -> Optional[Executor]:
        """The supervisor's live executor (``None`` until first use)."""
        return self._supervisor._pool

    @property
    def _process_unavailable(self) -> bool:
        return self._supervisor._unavailable

    @property
    def supervision(self) -> SupervisionConfig:
        return self._supervisor.config

    def _threads(self) -> Executor:
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-exec"
            )
        return self._thread_pool

    def close(self) -> None:
        """Release both pools. Idempotent, and exception-safe: a
        failing process-pool shutdown never leaks the thread pool."""
        threads, self._thread_pool = self._thread_pool, None
        errors: List[BaseException] = []
        try:
            self._supervisor.close()
        except BaseException as exc:  # noqa: B036 - re-raised below
            errors.append(exc)
        if threads is not None:
            try:
                threads.shutdown(wait=True, cancel_futures=True)
            except BaseException as exc:  # noqa: B036 - re-raised below
                errors.append(exc)
        if errors:
            raise errors[0]

    def pool_healthy(self) -> bool:
        """Chaos-invariant probe: no broken pool left behind."""
        return self._supervisor.healthy()

    # -- worker fault injection (chaos events, CLI flags) ---------------

    def inject_worker_faults(self, kind: str, count: int = 1) -> None:
        """Arm real faults (``kill``/``hang``/``slow``) on the next
        ``count`` first-attempt process-pool submissions."""
        self._supervisor.arm(kind, count)

    def arm_worker_fault_plan(self, plan: WorkerFaultPlan) -> None:
        self._supervisor.arm_plan(plan)

    def pending_worker_faults(self) -> int:
        return self._supervisor.pending_faults()

    def drain_worker_faults(self) -> int:
        """Discard unconsumed armed faults (end-of-run hygiene)."""
        return self._supervisor.drain_faults()

    # -- pickling (service checkpoints snapshot the whole runtime) ------

    def __getstate__(self):
        state = self.__dict__.copy()
        # Live executors cannot (and must not) ride a checkpoint; a
        # restored backend re-creates them lazily on first use, with
        # lanes reset and pool availability re-probed (a checkpoint
        # taken on a degraded sandbox must not pin a healthy restore
        # host to threads). The supervisor strips its own pool handle
        # and transient fault state.
        state["_thread_pool"] = None
        state["_lane_ids"] = {}
        state["_last_stats"] = None
        return state

    # -- execution ------------------------------------------------------

    @staticmethod
    def _batch_picklable(fn: Callable[..., Any], calls: Sequence[TaskCall]) -> bool:
        # The probe must cover the *whole* batch: a batch whose later
        # call is unpicklable would otherwise be submitted to the
        # process pool and die mid-gather with a PicklingError.
        try:
            pickle.dumps((fn, list(calls)))
        except Exception:
            return False
        return True

    def _lane(self, worker_key: Tuple[int, int]) -> int:
        lane = self._lane_ids.get(worker_key)
        if lane is None:
            lane = len(self._lane_ids)
            self._lane_ids[worker_key] = lane
        return lane

    def _execute(self, fn, calls):
        self._last_stats = None
        if self._batch_picklable(fn, calls):
            if self._supervisor.pool() is not None:
                raw, lanes_raw, queue_peak, stats = self._supervisor.run_batch(
                    fn, calls
                )
                self._last_stats = stats
                lanes: Dict[int, Tuple[int, float]] = {}
                for key, (tasks, busy) in lanes_raw.items():
                    lane = self._lane(key)
                    have_tasks, have_busy = lanes.get(lane, (0, 0.0))
                    lanes[lane] = (have_tasks + tasks, have_busy + busy)
                return raw, lanes, "process", queue_peak
            mode = "thread-degraded"
        else:
            mode = "thread"
        return self._execute_threads(fn, calls, mode)

    def _execute_threads(self, fn, calls, mode):
        pool = self._threads()
        futures = []
        done = _DoneCounter()
        queue_peak = 0
        for args, kwargs in calls:
            future = pool.submit(_timed_invoke, fn, args, kwargs)
            future.add_done_callback(done.hit)
            futures.append(future)
            # Incremental pending count: O(1) per submit instead of the
            # O(n) future scan that made long batches quadratic.
            in_flight = len(futures) - done.value()
            queue_peak = max(queue_peak, max(0, in_flight - self.workers))

        results: List[Any] = []
        lanes: Dict[int, Tuple[int, float]] = {}
        for future in futures:  # submission order == result order
            pid, ident, task_wall, result = future.result()
            lane = self._lane((pid, ident))
            tasks, busy = lanes.get(lane, (0, 0.0))
            lanes[lane] = (tasks + 1, busy + task_wall)
            results.append(result)
        return results, lanes, mode, queue_peak

    def run_tasks(self, fn, calls, *, phase="task", counters=None,
                  tracer=None, now=None):
        try:
            return super().run_tasks(
                fn, calls, phase=phase, counters=counters, tracer=tracer, now=now
            )
        except WorkerFaultError as exc:
            # Terminal batch death: flush the partial recovery
            # accounting before the error funnels into the runtime's
            # degraded-window path, so the retries/rebuilds that were
            # attempted stay visible.
            self._flush_recovery(exc.stats, phase, counters, tracer, now)
            raise

    def _flush_recovery(self, stats, phase, counters, tracer, now) -> None:
        if stats is None or not stats.any():
            return
        if counters is not None:
            if stats.retries:
                counters.increment("exec.retries", stats.retries)
            if stats.worker_lost:
                counters.increment("exec.worker_lost", stats.worker_lost)
            if stats.quarantined:
                counters.increment("exec.quarantined", stats.quarantined)
            if stats.rebuilds:
                counters.increment("exec.pool_rebuilds", stats.rebuilds)
        if tracer is not None and now is not None:
            tracer.instant(
                "exec.recovery",
                CAT_EXEC,
                time=now,
                phase=phase,
                retries=stats.retries,
                worker_lost=stats.worker_lost,
                quarantined=stats.quarantined,
                rebuilds=stats.rebuilds,
                deadline_reaps=stats.deadline_reaps,
                backoff_ms=round(stats.backoff_seconds * 1000, 3),
            )

    def _account(self, phase, n_tasks, wall, mode, lanes, queue_peak,
                 counters, tracer, now):
        if counters is not None:
            if mode == "thread":
                counters.increment("exec.pickle_fallbacks")
            elif mode == "thread-degraded":
                counters.increment("exec.process_pool_unavailable")
        stats, self._last_stats = self._last_stats, None
        self._flush_recovery(stats, phase, counters, tracer, now)
        super()._account(
            phase, n_tasks, wall, mode, lanes, queue_peak, counters, tracer, now
        )


def make_backend(
    name: str,
    workers: Optional[int] = None,
    **supervision: Any,
) -> ExecBackend:
    """Build a backend from its registry name (``serial`` | ``process``).

    ``supervision`` keywords (``batch_deadline``, ``max_task_retries``,
    ``max_pool_rebuilds``, ``backoff_base``) tune the process backend's
    recovery ladder and are rejected for the serial backend.
    """
    if name == "serial":
        if supervision:
            raise ValueError("the serial backend takes no supervision knobs")
        return SerialBackend()
    if name == "process":
        return ProcessPoolBackend(workers, **supervision)
    raise ValueError(
        f"unknown execution backend {name!r}; expected one of {BACKENDS}"
    )
