"""Pluggable execution backends for map/reduce task user-code.

The simulator separates two concerns that real Hadoop fuses: *when* a
task runs (virtual time, decided by the cost model, the slot simulation
and the cache-aware scheduler) and *what* it computes (the pure data
transformations in :mod:`repro.hadoop.task`). A backend parallelises
only the second concern. The scheduling loops stay sequential and
authoritative for virtual time, so a run's span spine, counters (other
than ``exec.*``), window digests and scheduling decisions are identical
whichever backend executed the task bodies.

Determinism contract
--------------------
``run_tasks`` returns results strictly in **submission order**, however
the pool interleaves completions. Task functions must be pure (no
shared mutable state), which every ``execute_*`` helper in
:mod:`repro.hadoop.task` is. Under that contract serial and parallel
runs are byte-identical — the parity oracle in
``tests/exec/test_parity.py`` enforces it the same way the chaos
differential oracle enforces recovery neutrality.

Fallback ladder
---------------
:class:`ProcessPoolBackend` probes each batch for picklability (the
function *and* its first call's arguments must survive
``pickle.dumps``). Non-picklable jobs fall back to a thread pool
(counted in ``exec.pickle_fallbacks``); an environment where process
pools cannot start at all (sandboxes without working semaphores)
degrades to threads permanently (``exec.process_pool_unavailable``).

Observability
-------------
Every batch emits ``exec.*`` counters into the caller's bag and, when a
tracer is supplied, one ``exec.batch`` instant plus one ``exec.worker``
instant per pool worker used — the per-worker lanes the Chrome exporter
renders as ``exec-w<n>`` threads. Wall times never touch span
timestamps: virtual time stays the only time on the spine's spans.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "BACKENDS",
    "ExecBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "make_backend",
]

#: Registry of backend names accepted by :func:`make_backend` and the
#: CLI's ``--backend`` flag.
BACKENDS: Tuple[str, ...] = ("serial", "process")

#: One positional-args/keyword-args pair per task.
TaskCall = Tuple[tuple, dict]

#: Trace category for exec instants. Kept as a local constant (it
#: mirrors ``repro.trace.CAT_EXEC``) so this package has zero
#: repro-internal imports and can never participate in a cycle.
CAT_EXEC = "exec"


def _timed_invoke(fn: Callable[..., Any], args: tuple, kwargs: dict):
    """Run one task and report which worker ran it and for how long.

    Module-level so it pickles into pool workers. Wall time is measured
    inside the worker (``perf_counter`` deltas are process-local but
    durations compare fine); the worker identity is the (pid, thread)
    pair, mapped to a dense lane index by the coordinator.
    """
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return (os.getpid(), threading.get_ident(), time.perf_counter() - t0, result)


class ExecBackend:
    """Base class: run batches of pure task calls, in order.

    Subclasses implement :meth:`_execute`; the base class wraps it with
    the shared accounting (``exec.*`` counters, trace instants).
    """

    #: Registry name (matches the CLI's ``--backend`` choices).
    name: str = "abstract"
    #: Worker slots this backend can occupy concurrently.
    workers: int = 1
    #: Whether task bodies may run concurrently.
    parallel: bool = False

    def run_tasks(
        self,
        fn: Callable[..., Any],
        calls: Sequence[TaskCall],
        *,
        phase: str = "task",
        counters: Any = None,
        tracer: Any = None,
        now: Optional[float] = None,
    ) -> List[Any]:
        """Execute ``fn`` over every call in ``calls``.

        Results come back in submission order regardless of completion
        order — the determinism contract every caller relies on.
        ``counters`` (a :class:`~repro.hadoop.counters.Counters`-like
        bag) receives the ``exec.*`` family; ``tracer`` receives batch
        and per-worker-lane instants stamped at virtual time ``now``.
        """
        calls = list(calls)
        if not calls:
            return []
        t0 = time.perf_counter()
        results, lanes, mode, queue_peak = self._execute(fn, calls)
        wall = time.perf_counter() - t0
        self._account(
            phase, len(calls), wall, mode, lanes, queue_peak, counters, tracer, now
        )
        return results

    def _execute(
        self, fn: Callable[..., Any], calls: Sequence[TaskCall]
    ):
        """Return ``(results, lanes, mode, queue_peak)``.

        ``lanes`` maps a dense worker index to ``(tasks, busy_seconds)``.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release any pools (idempotent; serial backends are no-ops)."""

    # ------------------------------------------------------------------
    # shared accounting
    # ------------------------------------------------------------------

    def _account(
        self,
        phase: str,
        n_tasks: int,
        wall: float,
        mode: str,
        lanes: Dict[int, Tuple[int, float]],
        queue_peak: int,
        counters: Any,
        tracer: Any,
        now: Optional[float],
    ) -> None:
        # Counters hold only run-deterministic facts: the runtime's
        # counter bag is compared bit-for-bit across repeat runs.
        # Physical measurements (wall seconds, queue depth) vary with
        # machine load, so they ride the exec.* trace instants instead.
        if counters is not None:
            counters.increment("exec.batches")
            counters.increment("exec.tasks_dispatched", n_tasks)
            counters.increment("exec.tasks_completed", n_tasks)
        if tracer is not None and now is not None:
            tracer.instant(
                "exec.batch",
                CAT_EXEC,
                time=now,
                phase=phase,
                tasks=n_tasks,
                wall_ms=round(wall * 1000, 3),
                mode=mode,
                backend=self.name,
                workers=self.workers,
                queue_peak=queue_peak,
            )
            for lane in sorted(lanes):
                tasks, busy = lanes[lane]
                tracer.instant(
                    "exec.worker",
                    CAT_EXEC,
                    time=now,
                    phase=phase,
                    worker=lane,
                    tasks=tasks,
                    busy_ms=round(busy * 1000, 3),
                )


class SerialBackend(ExecBackend):
    """Today's behaviour: run every task inline, one after another.

    The default everywhere; parity between this and the pool backends
    is what the digest oracle pins.
    """

    name = "serial"
    workers = 1
    parallel = False

    def _execute(self, fn, calls):
        results: List[Any] = []
        busy = 0.0
        for args, kwargs in calls:
            t0 = time.perf_counter()
            results.append(fn(*args, **kwargs))
            busy += time.perf_counter() - t0
        return results, {0: (len(calls), busy)}, "serial", 0


class ProcessPoolBackend(ExecBackend):
    """Run task bodies across a ``ProcessPoolExecutor``.

    Pools are created lazily (a restored checkpoint or a run that never
    batches more than one task never forks). Each batch is probed for
    picklability; jobs carrying unpicklable callables run on a thread
    pool instead so no workload is ever rejected. Results are gathered
    from the futures in submission order, which is the whole
    determinism story: completion order never matters.
    """

    name = "process"
    parallel = True

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers if workers else max(2, (os.cpu_count() or 2) - 1)
        self._pool: Optional[Executor] = None
        self._thread_pool: Optional[Executor] = None
        #: Set when process pools cannot start in this environment.
        self._process_unavailable = False
        #: (pid, thread ident) -> dense lane index, stable per backend.
        self._lane_ids: Dict[Tuple[int, int], int] = {}

    # -- pool management ------------------------------------------------

    def _threads(self) -> Executor:
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-exec"
            )
        return self._thread_pool

    def _processes(self) -> Optional[Executor]:
        if self._process_unavailable:
            return None
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            except (OSError, PermissionError, ValueError):
                self._process_unavailable = True
                return None
        return self._pool

    def close(self) -> None:
        for pool in (self._pool, self._thread_pool):
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
        self._pool = None
        self._thread_pool = None

    # -- pickling (service checkpoints snapshot the whole runtime) ------

    def __getstate__(self):
        state = self.__dict__.copy()
        # Live executors cannot (and must not) ride a checkpoint; a
        # restored backend re-creates them lazily on first use.
        state["_pool"] = None
        state["_thread_pool"] = None
        state["_lane_ids"] = {}
        return state

    # -- execution ------------------------------------------------------

    @staticmethod
    def _batch_picklable(fn: Callable[..., Any], calls: Sequence[TaskCall]) -> bool:
        try:
            pickle.dumps((fn, calls[0]))
        except Exception:
            return False
        return True

    def _lane(self, worker_key: Tuple[int, int]) -> int:
        lane = self._lane_ids.get(worker_key)
        if lane is None:
            lane = len(self._lane_ids)
            self._lane_ids[worker_key] = lane
        return lane

    def _execute(self, fn, calls):
        mode = "process"
        pool: Optional[Executor] = None
        if not self._batch_picklable(fn, calls):
            mode = "thread"
        else:
            pool = self._processes()
            if pool is None:
                mode = "thread-degraded"
        if pool is None:
            pool = self._threads()

        futures = []
        queue_peak = 0
        for args, kwargs in calls:
            futures.append(pool.submit(_timed_invoke, fn, args, kwargs))
            pending = sum(1 for f in futures if not f.done())
            queue_peak = max(queue_peak, max(0, pending - self.workers))

        results: List[Any] = []
        lanes: Dict[int, Tuple[int, float]] = {}
        for future in futures:  # submission order == result order
            pid, ident, task_wall, result = future.result()
            lane = self._lane((pid, ident))
            tasks, busy = lanes.get(lane, (0, 0.0))
            lanes[lane] = (tasks + 1, busy + task_wall)
            results.append(result)
        return results, lanes, mode, queue_peak

    def _account(self, phase, n_tasks, wall, mode, lanes, queue_peak,
                 counters, tracer, now):
        if counters is not None:
            if mode == "thread":
                counters.increment("exec.pickle_fallbacks")
            elif mode == "thread-degraded":
                counters.increment("exec.process_pool_unavailable")
        super()._account(
            phase, n_tasks, wall, mode, lanes, queue_peak, counters, tracer, now
        )


def make_backend(name: str, workers: Optional[int] = None) -> ExecBackend:
    """Build a backend from its registry name (``serial`` | ``process``)."""
    if name == "serial":
        return SerialBackend()
    if name == "process":
        return ProcessPoolBackend(workers)
    raise ValueError(
        f"unknown execution backend {name!r}; expected one of {BACKENDS}"
    )
