"""Real-process worker fault injection for the execution backends.

The chaos harness's other fault domains are *simulated*: they mutate
metadata (ready bits, registries, placements) and let the recovery
protocol repair it. This module injects faults into the **real** OS
processes of a :class:`~repro.exec.backends.ProcessPoolBackend` worker
pool: a worker can crash hard (``os._exit`` — no exception, no cleanup,
exactly like an OOM kill), hang past the supervisor's batch deadline,
or merely slow down. The supervisor in :mod:`repro.exec.supervisor`
must detect each, recover, and keep window digests byte-identical to a
fault-free serial run — the contract the worker-fault differential
oracle (``repro.chaos.oracle.run_worker_fault_differential``) enforces.

Faults are armed on the *coordinator* side (a seeded plan or a chaos
event decides which task ordinals are hit) and shipped into the worker
as a tiny picklable :class:`WorkerFault` riding the submitted call.
Only first attempts carry faults: a retried task re-runs clean, which
is what makes every injected worker fault recoverable by construction.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

__all__ = [
    "WORKER_FAULT_KINDS",
    "WorkerFault",
    "WorkerFaultPlan",
    "faulty_invoke",
]

#: Fault kinds a worker wrapper can apply inside the pool process.
WORKER_FAULT_KINDS = ("kill", "hang", "slow")


@dataclass(frozen=True)
class WorkerFault:
    """One armed fault, applied by :func:`faulty_invoke` in the worker.

    ``seconds`` is the sleep for ``hang``/``slow``; a hang must be
    armed with a duration comfortably past the supervisor's batch
    deadline (the supervisor computes it), so the only way the batch
    finishes is a deadline reap.
    """

    kind: str
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in WORKER_FAULT_KINDS:
            raise ValueError(
                f"unknown worker fault kind {self.kind!r}; "
                f"expected one of {WORKER_FAULT_KINDS}"
            )
        if self.kind in ("hang", "slow") and self.seconds <= 0:
            raise ValueError(f"{self.kind} needs a positive seconds")


def faulty_invoke(
    fault: Optional[WorkerFault],
    fn: Callable[..., Any],
    args: tuple,
    kwargs: dict,
):
    """Run one task in a pool worker, applying ``fault`` first.

    Module-level so it pickles into workers. Mirrors the payload of
    ``backends._timed_invoke``: ``(pid, thread ident, wall, result)``.
    A ``kill`` never returns — ``os._exit`` skips ``atexit`` handlers
    and ``finally`` blocks, so the coordinator sees a broken pool, not
    a tidy exception. A ``hang`` sleeps past the batch deadline; the
    worker is reaped before the sleep ends, so the trailing task body
    is never observed.
    """
    if fault is not None:
        if fault.kind == "kill":
            os._exit(17)
        elif fault.kind in ("hang", "slow"):
            time.sleep(fault.seconds)
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return (os.getpid(), threading.get_ident(), time.perf_counter() - t0, result)


@dataclass(frozen=True)
class WorkerFaultPlan:
    """A seeded scattering of worker faults over future task ordinals.

    ``span`` first-attempt submissions (counted from the moment the
    plan is armed) form the target space; ``kills`` + ``hangs`` +
    ``slows`` distinct ordinals inside it are drawn with
    ``random.Random(seed)``, so one ``(seed, span, counts)`` tuple
    replays the exact same fault placement. Used by the throughput
    bench and the CLI's ``--worker-fault-*`` flags; chaos schedules
    instead pin faults to virtual times via ``worker-kill`` /
    ``worker-hang`` events.
    """

    seed: int
    kills: int = 0
    hangs: int = 0
    slows: int = 0
    #: Ordinal space the faults are scattered over.
    span: int = 64
    slow_seconds: float = 0.05

    def __post_init__(self) -> None:
        total = self.kills + self.hangs + self.slows
        if min(self.kills, self.hangs, self.slows) < 0:
            raise ValueError("fault counts are non-negative")
        if total > self.span:
            raise ValueError(
                f"{total} faults do not fit in a span of {self.span} tasks"
            )

    def assign(
        self, start_ordinal: int, *, hang_seconds: float
    ) -> Dict[int, WorkerFault]:
        """Map absolute task ordinals to faults, deterministically."""
        rng = random.Random(self.seed)
        slots = rng.sample(range(self.span), self.kills + self.hangs + self.slows)
        faults: Dict[int, WorkerFault] = {}
        cursor = 0
        for _ in range(self.kills):
            faults[start_ordinal + slots[cursor]] = WorkerFault("kill")
            cursor += 1
        for _ in range(self.hangs):
            faults[start_ordinal + slots[cursor]] = WorkerFault(
                "hang", seconds=hang_seconds
            )
            cursor += 1
        for _ in range(self.slows):
            faults[start_ordinal + slots[cursor]] = WorkerFault(
                "slow", seconds=self.slow_seconds
            )
            cursor += 1
        return faults
