"""Pluggable task-execution backends (serial and supervised process-pool).

See ``docs/parallelism.md`` for the architecture and the determinism
contract; the short version: backends parallelise the *pure* task
bodies only, virtual time and scheduling stay sequential, and window
digests are byte-identical whichever backend ran the tasks — even
under real worker faults, which the supervisor recovers (retry,
rebuild, quarantine) or funnels into the degraded-window machinery.
"""

from .backends import (
    BACKENDS,
    ExecBackend,
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
)
from .supervisor import (
    BatchStats,
    SupervisionConfig,
    WorkerFaultError,
    WorkerSupervisor,
)
from .worker_faults import (
    WORKER_FAULT_KINDS,
    WorkerFault,
    WorkerFaultPlan,
)

__all__ = [
    "BACKENDS",
    "BatchStats",
    "ExecBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "SupervisionConfig",
    "WORKER_FAULT_KINDS",
    "WorkerFault",
    "WorkerFaultError",
    "WorkerFaultPlan",
    "WorkerSupervisor",
    "make_backend",
]
