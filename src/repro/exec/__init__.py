"""Pluggable task-execution backends (serial and process-pool).

See ``docs/parallelism.md`` for the architecture and the determinism
contract; the short version: backends parallelise the *pure* task
bodies only, virtual time and scheduling stay sequential, and window
digests are byte-identical whichever backend ran the tasks.
"""

from .backends import (
    BACKENDS,
    ExecBackend,
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
)

__all__ = [
    "BACKENDS",
    "ExecBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "make_backend",
]
