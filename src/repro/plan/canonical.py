"""Canonical forms and digests for logical-plan IR nodes.

This is the single canonicalization authority for the repo: the reuse
fingerprinter (:mod:`repro.reuse.fingerprint`) and the shared-scan
optimizer both digest the *same* canonical JSON payloads built here, so
"two plans are semantically equal" has exactly one definition.

Canonicalization rules (unchanged since the fingerprint tier shipped —
the payload layout is covered by a golden-digest fixture, so stored
:class:`~repro.reuse.ReuseStore` artifacts keep matching):

* plain functions (and builtins) are identified by
  ``module:qualname`` — the same durable reference
  :class:`~repro.service.spec.QuerySpec` factories use;
* callable-class instances (the repo's picklable mapper/finalizer
  idiom) are identified by their type's ``module:qualname`` plus a
  recursively canonicalized config captured from ``__slots__`` and
  ``__dict__`` — two separately constructed ``_AggMapper("object")``
  instances fingerprint identically;
* lambdas, closures, and locally defined classes have no stable
  cross-process name and raise :class:`FingerprintError`; callers
  treat such plans as non-reusable/non-shareable rather than guessing.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from typing import Any, Dict

__all__ = [
    "FINGERPRINT_SCHEMA",
    "FingerprintError",
    "callable_fingerprint",
    "canonical_value",
    "digest",
]

#: Bump when the canonical form changes; part of every digest, so old
#: stored artifacts can never be matched by a newer incompatible layout.
FINGERPRINT_SCHEMA = 1


class FingerprintError(ValueError):
    """The object has no stable cross-process canonical form."""


def _require_named(module: Any, qualname: Any, what: str) -> str:
    if not module or not qualname:
        raise FingerprintError(f"{what} has no module-qualified name")
    if "<lambda>" in qualname or "<locals>" in qualname:
        raise FingerprintError(
            f"{what} ({module}:{qualname}) is a lambda or local definition; "
            "only module-level callables have a stable identity across "
            "processes"
        )
    return f"{module}:{qualname}"


def callable_fingerprint(obj: Any) -> Dict[str, Any]:
    """Canonical JSON-able identity of a map/reduce/finalize callable."""
    if inspect.isfunction(obj) or inspect.isbuiltin(obj) or inspect.isclass(obj):
        ref = _require_named(
            getattr(obj, "__module__", None),
            getattr(obj, "__qualname__", None),
            "callable",
        )
        return {"kind": "function", "ref": ref}
    if inspect.ismethod(obj):
        raise FingerprintError(
            "bound methods carry instance state invisible to fingerprinting"
        )
    if callable(obj):
        cls = type(obj)
        ref = _require_named(cls.__module__, cls.__qualname__, "callable class")
        config: Dict[str, Any] = {}
        slots: set = set()
        for klass in cls.__mro__:
            declared = getattr(klass, "__slots__", ())
            if isinstance(declared, str):
                declared = (declared,)
            slots.update(declared)
        for name in sorted(slots):
            if hasattr(obj, name):
                config[name] = canonical_value(getattr(obj, name))
        for name in sorted(getattr(obj, "__dict__", {})):
            config[name] = canonical_value(obj.__dict__[name])
        return {"kind": "instance", "ref": ref, "config": config}
    raise FingerprintError(f"{obj!r} is not callable")


def canonical_value(value: Any) -> Any:
    """Recursively reduce ``value`` to a JSON-able canonical form."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr is the shortest round-trippable form — stable across
        # platforms and pickle round-trips, unlike formatted output.
        return {"float": repr(value)}
    if isinstance(value, (list, tuple)):
        return [canonical_value(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return {"set": sorted(repr(v) for v in value)}
    if isinstance(value, dict):
        return {
            "dict": [
                [canonical_value(k), canonical_value(v)]
                for k, v in sorted(value.items(), key=lambda kv: repr(kv[0]))
            ]
        }
    if callable(value):
        return callable_fingerprint(value)
    raise FingerprintError(
        f"config value {value!r} ({type(value).__name__}) has no canonical "
        "form; use primitives, containers, or named callables"
    )


def digest(payload: Dict[str, Any]) -> str:
    """sha256 over the sorted, separator-free JSON dump of ``payload``."""
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
