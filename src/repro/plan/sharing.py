"""Multi-query shared-scan/shared-map optimization over the plan IR.

Every query reading a source shares ONE pane packer at the GCD of all
registered window constraints, so a pane index names the same time
range — and the same records — for every reader. When two tenants'
plan *prefixes* (Scan → Map → Shuffle, see
:func:`repro.plan.ir.prefix_payload`) are IR-equal over a source, the
partitioned map output of any pane is therefore byte-identical between
them: the map phase only needs to run once per pane, with the output
fanned out to each consumer's own shuffle/pane-reduce.

:class:`SharedScanRegistry` is that fan-out point. The first query to
process a pane publishes its partitioned map output keyed by
``(prefix fingerprint, source, pane index)``; IR-equal consumers absorb
the entry instead of re-reading and re-mapping the pane. Because map
output is a pure function of pane content, entries never need rollback
— a degraded window invalidates caches, not pane files — and chaos
events (node kills, cache loss) leave the registry's correctness
untouched: a re-mapped pane would produce the same bytes.

Entries are retired by a per-source watermark (the lowest pane index
any registered reader's next window can still need), so long-running
servers do not accumulate map output without bound.

The registry is deliberately runtime-agnostic (plain dicts of pairs,
picklable for service checkpoints); the runtime decides when to probe,
publish, and retire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .ir import LogicalPlan, prefix_fingerprint_ir

__all__ = [
    "SharedMapOutput",
    "SharedScanRegistry",
    "SharingGroup",
    "SharingReport",
    "sharing_report",
    "format_sharing_report",
]


@dataclass
class SharedMapOutput:
    """One pane's memoized partitioned map output."""

    #: reduce partition -> map output pairs (post-combiner, pre-sort).
    partitioned: Dict[int, List[Any]]
    input_records: int
    input_bytes: int
    output_bytes: int
    #: query that ran the map (observability only — never semantics).
    producer: str

    def copy_partitioned(self) -> Dict[int, List[Any]]:
        """A consumer-owned copy: absorbers may mutate their shuffle input."""
        return {p: list(pairs) for p, pairs in self.partitioned.items()}


class SharedScanRegistry:
    """Memoizes per-pane partitioned map output across IR-equal prefixes."""

    def __init__(self) -> None:
        #: (prefix fingerprint, source, pane index) -> entry.
        self._entries: Dict[Tuple[str, str, int], SharedMapOutput] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def sources(self) -> Tuple[str, ...]:
        """Sources with at least one live entry (sorted, deduplicated)."""
        return tuple(sorted({key[1] for key in self._entries}))

    def lookup(
        self, prefix_fp: str, source: str, index: int
    ) -> Optional[SharedMapOutput]:
        return self._entries.get((prefix_fp, source, index))

    def publish(
        self,
        prefix_fp: str,
        source: str,
        index: int,
        partitioned: Mapping[int, Sequence[Any]],
        *,
        input_records: int,
        input_bytes: int,
        output_bytes: int,
        producer: str,
    ) -> SharedMapOutput:
        """Memoize a pane's map output (idempotent; first producer wins).

        The stored lists are copies — later mutation of the producer's
        working buffers can never corrupt what consumers absorb.
        """
        key = (prefix_fp, source, index)
        existing = self._entries.get(key)
        if existing is not None:
            return existing
        entry = SharedMapOutput(
            partitioned={p: list(pairs) for p, pairs in partitioned.items()},
            input_records=input_records,
            input_bytes=input_bytes,
            output_bytes=output_bytes,
            producer=producer,
        )
        self._entries[key] = entry
        return entry

    def retire(self, source: str, min_live_index: int) -> int:
        """Drop the source's entries below the watermark; returns count."""
        doomed = [
            key
            for key in self._entries
            if key[1] == source and key[2] < min_live_index
        ]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def drop_source(self, source: str) -> int:
        """Drop every entry of a source nobody reads anymore."""
        return self.retire(source, 2**63)


# ----------------------------------------------------------------------
# static sharing analysis (the `repro plan` CLI's report)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SharingGroup:
    """Queries whose prefixes over one source would share map work."""

    source: str
    prefix_fp: str
    queries: Tuple[str, ...]

    @property
    def shared(self) -> bool:
        return len(self.queries) >= 2


@dataclass
class SharingReport:
    """Which (source, prefix) groups a fleet of plans would share."""

    groups: List[SharingGroup] = field(default_factory=list)
    #: query names whose plans could not be fingerprinted (opted out).
    unshareable: List[str] = field(default_factory=list)

    @property
    def shared_groups(self) -> List[SharingGroup]:
        return [g for g in self.groups if g.shared]


def sharing_report(plans: Mapping[str, LogicalPlan]) -> SharingReport:
    """Group a fleet's plan prefixes by (source, prefix fingerprint)."""
    from .canonical import FingerprintError

    report = SharingReport()
    buckets: Dict[Tuple[str, str], List[str]] = {}
    for name in sorted(plans):
        plan = plans[name]
        try:
            for pipeline in plan.pipelines:
                fp = prefix_fingerprint_ir(pipeline)
                buckets.setdefault((pipeline.source, fp), []).append(name)
        except FingerprintError:
            report.unshareable.append(name)
    for (source, fp), names in sorted(buckets.items()):
        report.groups.append(
            SharingGroup(source=source, prefix_fp=fp, queries=tuple(names))
        )
    return report


def format_sharing_report(report: SharingReport, *, short: int = 12) -> str:
    lines = []
    for group in report.groups:
        mark = "shared" if group.shared else "alone"
        lines.append(
            f"{group.source}  prefix {group.prefix_fp[:short]}  "
            f"[{mark}]  {', '.join(group.queries)}"
        )
    for name in report.unshareable:
        lines.append(f"{name}  (unfingerprintable — never shared)")
    if not lines:
        lines.append("(no plans)")
    return "\n".join(lines)
