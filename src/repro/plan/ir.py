"""The logical-plan IR: explicit operator structure for recurring queries.

A :class:`~repro.core.query.RecurringQuery` used to be an opaque bundle
of callables; every layer that needed to reason about *structure* — the
semantic analyzer (window specs), the reuse fingerprinter (operator
semantics), the service (sources, sharing opportunities) — re-derived
it ad hoc. The IR makes the structure first-class, ReStore-style: per
input source a linear operator pipeline

    Scan(source, window) → Map(mapper, combiner)
        → Shuffle(partitioner, num_reducers) → Reduce(reducer)

plus one window-level Finalize node shared by all sources. The IR is
the single source of structural truth:

* :meth:`RecurringQuery.plan() <repro.core.query.RecurringQuery.plan>`
  builds it from the query's callables;
* :mod:`repro.reuse.fingerprint` digests its canonical serialization
  (:func:`pane_payload` / :func:`plan_payload` — byte-identical to the
  pre-IR payload layout, so stored artifacts keep matching);
* the semantic analyzer plans partitioning off the Scan node's window
  spec (:meth:`SemanticAnalyzer.plan_pipeline <repro.core.
  semantic_analyzer.SemanticAnalyzer.plan_pipeline>`);
* the shared-scan optimizer matches *plan prefixes* — the Scan → Map →
  Shuffle sub-chain whose output (partitioned map output per pane) is
  a pure function of pane content (:func:`prefix_payload`).

Node equality is *semantic*: two nodes are equal when their canonical
payloads are equal, even if their callables are distinct instances
(e.g. two separately constructed ``_AggMapper("object")``). Dataclass
identity equality would be both too strict (pickle round-trips create
new objects) and too loose (names are excluded from semantics).

This module deliberately imports nothing from :mod:`repro.core.query`
(the query imports *us* lazily) — :meth:`LogicalPlan.from_query`
duck-types the query/job attributes instead.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from ..core.panes import WindowSpec
from .canonical import (
    FINGERPRINT_SCHEMA,
    callable_fingerprint,
    digest,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.query import RecurringQuery

__all__ = [
    "FinalizeNode",
    "LogicalPlan",
    "MapNode",
    "ReduceNode",
    "ScanNode",
    "ShuffleNode",
    "SourcePipeline",
    "pane_payload",
    "plan_payload",
    "prefix_payload",
    "pane_fingerprint_ir",
    "plan_fingerprint_ir",
    "prefix_fingerprint_ir",
    "render_plan",
]


@dataclass(frozen=True)
class ScanNode:
    """Read one source's pane files under its window constraints."""

    source: str
    window: WindowSpec


@dataclass(frozen=True)
class MapNode:
    """Per-record transformation (plus optional map-side combiner)."""

    mapper: Any
    combiner: Optional[Any] = None


@dataclass(frozen=True)
class ShuffleNode:
    """Partitioned exchange of map output toward the reducers."""

    partitioner: Any
    num_reducers: int
    intermediate_pair_size: int


@dataclass(frozen=True)
class ReduceNode:
    """Per-partition grouped reduction producing pane partials."""

    reducer: Any
    output_pair_size: int


@dataclass(frozen=True)
class FinalizeNode:
    """Window-level merge of pane partials into the final answer."""

    finalize: Any


@dataclass(frozen=True)
class SourcePipeline:
    """One source's linear operator chain: Scan → Map → Shuffle → Reduce."""

    scan: ScanNode
    map: MapNode
    shuffle: ShuffleNode
    reduce: ReduceNode

    @property
    def source(self) -> str:
        return self.scan.source

    def with_window(self, window: WindowSpec) -> "SourcePipeline":
        """The same pipeline over a re-expressed window spec.

        Used by the runtime to re-plan a pipeline over the shared GCD
        pane without touching the operator chain.
        """
        return replace(self, scan=replace(self.scan, window=window))


@dataclass(frozen=True)
class LogicalPlan:
    """A recurring query's full logical plan: pipelines + finalize.

    ``pipelines`` is ordered by source name, so two plans over the same
    sources serialize in the same order regardless of construction.
    """

    pipelines: Tuple[SourcePipeline, ...]
    finalize: FinalizeNode

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.pipelines, key=lambda p: p.source)
        )
        if ordered != self.pipelines:
            object.__setattr__(self, "pipelines", ordered)
        if not self.pipelines:
            raise ValueError("a logical plan needs at least one pipeline")

    @classmethod
    def from_query(cls, query: "RecurringQuery") -> "LogicalPlan":
        """Build the IR from a query's callables (duck-typed).

        ``query`` needs ``windows`` (source → :class:`WindowSpec`),
        ``job`` (mapper/combiner/reducer/partitioner/num_reducers/pair
        sizes), and ``finalize`` — exactly the
        :class:`~repro.core.query.RecurringQuery` surface.
        """
        job = query.job
        pipelines = tuple(
            SourcePipeline(
                scan=ScanNode(source=src, window=query.windows[src]),
                map=MapNode(mapper=job.mapper, combiner=job.combiner),
                shuffle=ShuffleNode(
                    partitioner=job.partitioner,
                    num_reducers=job.num_reducers,
                    intermediate_pair_size=job.intermediate_pair_size,
                ),
                reduce=ReduceNode(
                    reducer=job.reducer,
                    output_pair_size=job.output_pair_size,
                ),
            )
            for src in sorted(query.windows)
        )
        return cls(
            pipelines=pipelines, finalize=FinalizeNode(finalize=query.finalize)
        )

    @property
    def sources(self) -> Tuple[str, ...]:
        return tuple(p.source for p in self.pipelines)

    def pipeline(self, source: str) -> SourcePipeline:
        for p in self.pipelines:
            if p.source == source:
                return p
        raise KeyError(f"plan has no pipeline for source {source!r}")

    def window(self, source: str) -> WindowSpec:
        return self.pipeline(source).scan.window


# ----------------------------------------------------------------------
# canonical payloads — the serialization every digest is taken over
# ----------------------------------------------------------------------


def pane_payload(pipeline: SourcePipeline) -> Dict[str, Any]:
    """Canonical form of one source's pane-level subcomputation.

    Byte-identical to the pre-IR fingerprint payload: everything that
    determines a pane's reduce input/output for a time range of the
    source's data, and nothing that doesn't — names, rates, and the
    window parameters on the Scan node are all excluded (artifacts are
    keyed by their *time range*, so a stored pane at a finer
    granularity can be composed into a coarser one).
    """
    return {
        "schema": FINGERPRINT_SCHEMA,
        "scope": "pane",
        "source": pipeline.source,
        "mapper": callable_fingerprint(pipeline.map.mapper),
        "combiner": (
            callable_fingerprint(pipeline.map.combiner)
            if pipeline.map.combiner is not None
            else None
        ),
        "reducer": callable_fingerprint(pipeline.reduce.reducer),
        "partitioner": callable_fingerprint(pipeline.shuffle.partitioner),
        "num_reducers": pipeline.shuffle.num_reducers,
        "intermediate_pair_size": pipeline.shuffle.intermediate_pair_size,
        "output_pair_size": pipeline.reduce.output_pair_size,
    }


def plan_payload(plan: LogicalPlan) -> Dict[str, Any]:
    """Canonical form of the whole window-level operator chain."""
    return {
        "schema": FINGERPRINT_SCHEMA,
        "scope": "window",
        "panes": {p.source: pane_payload(p) for p in plan.pipelines},
        "finalize": callable_fingerprint(plan.finalize.finalize),
    }


def prefix_payload(pipeline: SourcePipeline) -> Dict[str, Any]:
    """Canonical form of the shareable Scan → Map → Shuffle prefix.

    Covers exactly what determines the *partitioned map output* of one
    pane: the map side (mapper + combiner) and the shuffle layout
    (partitioner, reducer count, pair size). Two pipelines with equal
    prefix payloads reading the same source produce byte-identical
    partitioned map output for the same pane — the precondition the
    shared-scan optimizer matches on. The reduce side and the window
    parameters are deliberately excluded: consumers run their own
    pane-reduce, and pane indices already share a time base because
    every reader of a source shares one GCD-pane packer.
    """
    return {
        "schema": FINGERPRINT_SCHEMA,
        "scope": "map-prefix",
        "source": pipeline.source,
        "mapper": callable_fingerprint(pipeline.map.mapper),
        "combiner": (
            callable_fingerprint(pipeline.map.combiner)
            if pipeline.map.combiner is not None
            else None
        ),
        "partitioner": callable_fingerprint(pipeline.shuffle.partitioner),
        "num_reducers": pipeline.shuffle.num_reducers,
        "intermediate_pair_size": pipeline.shuffle.intermediate_pair_size,
    }


def pane_fingerprint_ir(pipeline: SourcePipeline) -> str:
    """Digest of one pipeline's pane-level subcomputation."""
    return digest(pane_payload(pipeline))


def plan_fingerprint_ir(plan: LogicalPlan) -> str:
    """Digest of the full window-level operator chain."""
    return digest(plan_payload(plan))


def prefix_fingerprint_ir(pipeline: SourcePipeline) -> str:
    """Digest of the shareable Scan → Map → Shuffle prefix."""
    return digest(prefix_payload(pipeline))


# ----------------------------------------------------------------------
# rendering (the `repro plan` CLI)
# ----------------------------------------------------------------------


def _callable_label(obj: Any) -> str:
    if obj is None:
        return "-"
    name = getattr(obj, "__qualname__", None) or getattr(
        obj, "__name__", None
    )
    if name is not None:
        return name
    cls = type(obj)

    def show(value: Any) -> str:
        # Nested callables render by name, never by repr — a function's
        # default repr embeds its memory address, which would make the
        # rendered tree differ between otherwise identical processes.
        return _callable_label(value) if callable(value) else repr(value)

    config = []
    for slot in sorted(getattr(cls, "__slots__", ()) or ()):
        if hasattr(obj, slot):
            config.append(f"{slot}={show(getattr(obj, slot))}")
    for key in sorted(getattr(obj, "__dict__", {})):
        config.append(f"{key}={show(obj.__dict__[key])}")
    return f"{cls.__qualname__}({', '.join(config)})"


def render_plan(
    plan: LogicalPlan, *, fingerprints: bool = True, short: int = 12
) -> str:
    """A human-readable operator tree, one line per node."""
    lines = []
    for pipeline in plan.pipelines:
        scan = pipeline.scan
        lines.append(
            f"Scan[{scan.source}] win={scan.window.win:g}s "
            f"slide={scan.window.slide:g}s"
        )
        combiner = pipeline.map.combiner
        lines.append(
            f"  └─ Map[{_callable_label(pipeline.map.mapper)}"
            + (f" + combine {_callable_label(combiner)}" if combiner else "")
            + "]"
        )
        lines.append(
            f"      └─ Shuffle[{_callable_label(pipeline.shuffle.partitioner)}"
            f" ×{pipeline.shuffle.num_reducers}]"
        )
        lines.append(
            f"          └─ Reduce[{_callable_label(pipeline.reduce.reducer)}]"
        )
        if fingerprints:
            try:
                lines.append(
                    f"             pane {pane_fingerprint_ir(pipeline)[:short]}"
                    f"  prefix {prefix_fingerprint_ir(pipeline)[:short]}"
                )
            except Exception as exc:  # FingerprintError: unshareable plan
                lines.append(f"             (unfingerprintable: {exc})")
    lines.append(f"Finalize[{_callable_label(plan.finalize.finalize)}]")
    if fingerprints:
        try:
            lines.append(f"plan {plan_fingerprint_ir(plan)[:short]}")
        except Exception as exc:
            lines.append(f"plan (unfingerprintable: {exc})")
    return "\n".join(lines)
