"""The logical-plan IR and the optimizations built on it.

``repro.plan`` makes a recurring query's operator structure explicit —
Scan → Map → Shuffle → Reduce per source, plus a window-level Finalize
— and is the single source of structural truth for the stack:

* :mod:`repro.plan.canonical` — canonical forms + digests (the one
  definition of plan equality; the reuse fingerprinter delegates here);
* :mod:`repro.plan.ir` — the node set, :meth:`LogicalPlan.from_query`,
  canonical payloads, and rendering;
* :mod:`repro.plan.sharing` — the multi-query shared-scan/shared-map
  registry and the static sharing report.

See ``docs/plan.md``.
"""

from .canonical import (
    FINGERPRINT_SCHEMA,
    FingerprintError,
    callable_fingerprint,
    canonical_value,
    digest,
)
from .ir import (
    FinalizeNode,
    LogicalPlan,
    MapNode,
    ReduceNode,
    ScanNode,
    ShuffleNode,
    SourcePipeline,
    pane_fingerprint_ir,
    pane_payload,
    plan_fingerprint_ir,
    plan_payload,
    prefix_fingerprint_ir,
    prefix_payload,
    render_plan,
)
from .sharing import (
    SharedMapOutput,
    SharedScanRegistry,
    SharingGroup,
    SharingReport,
    format_sharing_report,
    sharing_report,
)

__all__ = [
    "FINGERPRINT_SCHEMA",
    "FingerprintError",
    "FinalizeNode",
    "LogicalPlan",
    "MapNode",
    "ReduceNode",
    "ScanNode",
    "SharedMapOutput",
    "SharedScanRegistry",
    "SharingGroup",
    "SharingReport",
    "ShuffleNode",
    "SourcePipeline",
    "callable_fingerprint",
    "canonical_value",
    "digest",
    "format_sharing_report",
    "pane_fingerprint_ir",
    "pane_payload",
    "plan_fingerprint_ir",
    "plan_payload",
    "prefix_fingerprint_ir",
    "prefix_payload",
    "render_plan",
    "sharing_report",
]
