"""Redoop: recurring-query processing on Hadoop (EDBT 2014 reproduction).

The package has four layers:

* :mod:`repro.hadoop` — a from-scratch simulated Hadoop/MapReduce
  cluster (HDFS, slots, FIFO scheduling, cost model, fault injection).
* :mod:`repro.core` — the paper's contribution: the recurring-query
  model, window-aware partitioning, caching, adaptive execution, the
  cache-aware scheduler, and the Redoop runtime.
* :mod:`repro.workloads` — synthetic stand-ins for the paper's WorldCup
  click and football-field sensor datasets, plus the evaluated queries.
* :mod:`repro.bench` — the experiment harness regenerating every figure.

Quickstart::

    from repro import RecurringQuery, RedoopRuntime, Cluster
    from repro.hadoop import small_test_config

    cluster = Cluster(small_test_config())
    runtime = RedoopRuntime(cluster)
    ...
"""

from .hadoop import (
    BatchCatalog,
    BatchFile,
    Cluster,
    ClusterConfig,
    FaultInjector,
    MapReduceJob,
    PlainHadoopDriver,
    Record,
)

__version__ = "1.0.0"

__all__ = [
    "BatchCatalog",
    "BatchFile",
    "Cluster",
    "ClusterConfig",
    "FaultInjector",
    "MapReduceJob",
    "PlainHadoopDriver",
    "Record",
    "__version__",
]


def _extend_public_api() -> None:
    """Re-export the core layer lazily to avoid import cycles at build time."""
    from . import core as _core

    for name in _core.__all__:
        globals()[name] = getattr(_core, name)
        __all__.append(name)


try:  # pragma: no cover - exercised implicitly by every import
    _extend_public_api()
except ImportError:
    # During incremental development the core layer may not exist yet;
    # the hadoop substrate remains usable on its own.
    pass
