"""Tests for due-time-ordered multi-query execution."""

from __future__ import annotations


from repro.core import RecurringQuery, RedoopRuntime, WindowSpec, merging_finalizer
from repro.hadoop import Cluster, small_test_config

from ..conftest import wordcount_job
from .test_runtime import RATE, feed


def two_query_runtime():
    runtime = RedoopRuntime(Cluster(small_test_config(), seed=3))
    job = wordcount_job(num_reducers=4, name="wc")
    short = RecurringQuery(
        name="short",
        job=job,
        windows={"S1": WindowSpec(win=20.0, slide=10.0)},
        finalize=merging_finalizer(sum),
    )
    long_ = RecurringQuery(
        name="long",
        job=job,
        windows={"S1": WindowSpec(win=40.0, slide=20.0)},
        finalize=merging_finalizer(sum),
    )
    runtime.register_query(short, {"S1": RATE})
    runtime.register_query(long_, {"S1": RATE})
    return runtime


class TestRunDueRecurrences:
    def test_nothing_due_before_first_window(self):
        runtime = two_query_runtime()
        feed(runtime, 10.0)
        assert runtime.run_due_recurrences(now=15.0) == []

    def test_due_order_across_queries(self):
        runtime = two_query_runtime()
        feed(runtime, 60.0)
        results = runtime.run_due_recurrences(now=60.0)
        fired = [(r.query, r.recurrence, r.due_time) for r in results]
        # short fires at 20, 30, 40, 50, 60; long at 40, 60.
        assert fired == [
            ("short", 1, 20.0),
            ("short", 2, 30.0),
            ("long", 1, 40.0),
            ("short", 3, 40.0),
            ("short", 4, 50.0),
            ("long", 2, 60.0),
            ("short", 5, 60.0),
        ]

    def test_incomplete_data_skipped_then_fires(self):
        from .test_runtime import batch

        runtime = two_query_runtime()
        feed(runtime, 30.0)  # long's first window (needs 40) not ready
        results = runtime.run_due_recurrences(now=60.0)
        assert {r.query for r in results} == {"short"}
        # Once the data arrives, the skipped recurrence fires.
        for i, t0 in enumerate((30.0, 40.0, 50.0), start=3):
            b, records = batch(i, t0, t0 + 10.0)
            runtime.ingest(b, records)
        late = runtime.run_due_recurrences(now=60.0)
        assert ("long", 1) in {(r.query, r.recurrence) for r in late}

    def test_progress_is_persistent(self):
        runtime = two_query_runtime()
        feed(runtime, 40.0)
        first = runtime.run_due_recurrences(now=40.0)
        again = runtime.run_due_recurrences(now=40.0)
        assert first and not again  # nothing fires twice
