"""Tests for count-based windows via the ordinal-time reduction."""

from __future__ import annotations

from collections import Counter as PyCounter

import pytest

from repro.core import RecurringQuery, RedoopRuntime, merging_finalizer
from repro.core.count_windows import CountingIngest, count_window_spec
from repro.hadoop import BatchFile, Cluster, Record, small_test_config

from ..conftest import wordcount_job


def make_setup(win=40, slide=10, num_reducers=4):
    cluster = Cluster(small_test_config(), seed=3)
    runtime = RedoopRuntime(cluster)
    query = RecurringQuery(
        name="wc",
        job=wordcount_job(num_reducers=num_reducers, name="wc"),
        windows={"S1": count_window_spec(win, slide)},
        finalize=merging_finalizer(sum),
    )
    runtime.register_query(query, {"S1": 500_000.0})
    return runtime, CountingIngest(runtime)


def word_records(n, seed=0, t0=1000.0):
    import random

    rng = random.Random(seed)
    # Deliberately weird real timestamps: count windows ignore them.
    return [
        Record(ts=t0 + rng.uniform(0, 5.0), value=f"w{rng.randrange(5)}", size=100)
        for _ in range(n)
    ]


class TestCountWindowSpec:
    def test_spec_on_ordinal_axis(self):
        spec = count_window_spec(1000, 100)
        assert spec.win == 1000.0
        assert spec.slide == 100.0
        assert spec.pane_seconds == 100.0  # GCD in records

    @pytest.mark.parametrize("win,slide", [(0, 1), (10, 0), (10, 11)])
    def test_validation(self, win, slide):
        with pytest.raises(ValueError):
            count_window_spec(win, slide)


class TestCountingIngest:
    def test_ordinals_assigned_consecutively(self):
        runtime, ingest = make_setup()
        ingest.ingest(
            BatchFile(path="/b/0", source="S1", t_start=0.0, t_end=1.0),
            word_records(7, seed=1),
        )
        ingest.ingest(
            BatchFile(path="/b/1", source="S1", t_start=1.0, t_end=2.0),
            word_records(5, seed=2),
        )
        assert ingest.records_seen("S1") == 12

    def test_original_timestamp_preserved_in_payload(self):
        runtime, ingest = make_setup()
        records = [Record(ts=123.5, value={"k": "x"}, size=50)]
        ingest.ingest(
            BatchFile(path="/b/0", source="S1", t_start=0.0, t_end=1.0), records
        )
        packer = runtime._source_packers["S1"]
        # The record landed in pane 0 with ordinal ts and original _ts.
        assert packer.covered_until == 1.0

    def test_ready_recurrences(self):
        runtime, ingest = make_setup(win=40, slide=10)
        assert ingest.ready_recurrences("wc") == 0
        ingest.ingest(
            BatchFile(path="/b/0", source="S1", t_start=0.0, t_end=1.0),
            word_records(45, seed=3),
        )
        # 45 records: window 1 needs 40; window 2 needs 50.
        assert ingest.ready_recurrences("wc") == 1


class TestCountWindowAnswers:
    def test_every_window_covers_exactly_win_records(self):
        runtime, ingest = make_setup(win=40, slide=10)
        all_records = []
        for i in range(4):
            chunk = word_records(20, seed=i)
            all_records.extend(chunk)
            ingest.ingest(
                BatchFile(
                    path=f"/b/{i}", source="S1", t_start=float(i), t_end=i + 1.0
                ),
                chunk,
            )
        for k in (1, 2, 3, 4, 5):
            result = runtime.run_recurrence("wc", k)
            lo = (k - 1) * 10
            expected = PyCounter(r.value for r in all_records[lo : lo + 40])
            assert dict(result.output) == dict(expected)
            assert sum(v for _k2, v in result.output) == 40

    def test_caching_works_on_count_windows(self):
        runtime, ingest = make_setup(win=40, slide=10)
        for i in range(3):
            ingest.ingest(
                BatchFile(
                    path=f"/b/{i}", source="S1", t_start=float(i), t_end=i + 1.0
                ),
                word_records(20, seed=i),
            )
        runtime.run_recurrence("wc", 1)
        r2 = runtime.run_recurrence("wc", 2)
        # Window 2 shares 3 of 4 record-count panes with window 1.
        assert r2.counters.get("cache.pane_hits") == 3


class TestReadyRecurrenceBoundaries:
    """Exact window-boundary arithmetic of ``ready_recurrences``."""

    def test_exact_first_window_is_ready(self):
        runtime, ingest = make_setup(win=40, slide=10)
        ingest.ingest(
            BatchFile(path="/b/0", source="S1", t_start=0.0, t_end=1.0),
            word_records(40, seed=1),
        )
        # Window 1 needs exactly win records: 40 seen -> ready, but
        # window 2 needs win + slide = 50.
        assert ingest.ready_recurrences("wc") == 1

    def test_one_short_of_boundary_is_not_ready(self):
        runtime, ingest = make_setup(win=40, slide=10)
        ingest.ingest(
            BatchFile(path="/b/0", source="S1", t_start=0.0, t_end=1.0),
            word_records(39, seed=1),
        )
        assert ingest.ready_recurrences("wc") == 0

    def test_each_slide_of_records_readies_one_more(self):
        runtime, ingest = make_setup(win=40, slide=10)
        ingest.ingest(
            BatchFile(path="/b/0", source="S1", t_start=0.0, t_end=1.0),
            word_records(40, seed=1),
        )
        for extra in range(1, 4):
            ingest.ingest(
                BatchFile(
                    path=f"/b/{extra}",
                    source="S1",
                    t_start=float(extra),
                    t_end=extra + 1.0,
                ),
                word_records(10, seed=extra),
            )
            assert ingest.ready_recurrences("wc") == 1 + extra

    def test_ready_windows_actually_run(self):
        runtime, ingest = make_setup(win=40, slide=10)
        ingest.ingest(
            BatchFile(path="/b/0", source="S1", t_start=0.0, t_end=1.0),
            word_records(50, seed=9),
        )
        assert ingest.ready_recurrences("wc") == 2
        for k in (1, 2):
            result = runtime.run_recurrence("wc", k)
            assert sum(v for _k, v in result.output) == 40
