"""Tests for the GetInputPaths-style API (paper Sec. 5)."""

from __future__ import annotations

import pytest

from .test_runtime import feed, make_runtime


class TestInputPaths:
    def test_window_panes_listed(self):
        runtime = make_runtime()
        feed(runtime, 40.0)
        paths = runtime.input_paths("wc", 1)
        assert set(paths) == {"S1"}
        # 4 oversize panes -> 4 distinct files.
        assert paths["S1"] == [
            "/panes/S1/S1P0",
            "/panes/S1/S1P1",
            "/panes/S1/S1P2",
            "/panes/S1/S1P3",
        ]

    def test_window_slides_with_recurrence(self):
        runtime = make_runtime()
        feed(runtime, 50.0)
        paths = runtime.input_paths("wc", 2)
        assert paths["S1"][0].endswith("S1P1")
        assert paths["S1"][-1].endswith("S1P4")

    def test_unpacked_panes_omitted(self):
        runtime = make_runtime()
        feed(runtime, 30.0)  # pane 3 not yet arrived
        paths = runtime.input_paths("wc", 1)
        assert len(paths["S1"]) == 3

    def test_paths_exist_in_hdfs(self):
        runtime = make_runtime()
        feed(runtime, 40.0)
        for path in runtime.input_paths("wc", 1)["S1"]:
            assert runtime.cluster.hdfs.exists(path)

    def test_unknown_query_rejected(self):
        runtime = make_runtime()
        with pytest.raises(ValueError):
            runtime.input_paths("ghost", 1)
