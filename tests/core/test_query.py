"""Unit tests for the recurring query model."""

from __future__ import annotations

import pytest

from repro.core.panes import WindowSpec
from repro.core.query import RecurringQuery, concat_finalizer, merging_finalizer

from ..conftest import wordcount_job


def make_query(**kwargs):
    defaults = dict(
        name="q",
        job=wordcount_job(),
        windows={"S1": WindowSpec(win=100.0, slide=20.0)},
    )
    defaults.update(kwargs)
    return RecurringQuery(**defaults)


class TestValidation:
    def test_needs_sources(self):
        with pytest.raises(ValueError):
            make_query(windows={})

    def test_slides_must_match(self):
        with pytest.raises(ValueError):
            make_query(
                windows={
                    "A": WindowSpec(win=100.0, slide=20.0),
                    "B": WindowSpec(win=100.0, slide=10.0),
                }
            )

    def test_different_wins_same_slide_allowed(self):
        q = make_query(
            windows={
                "A": WindowSpec(win=100.0, slide=20.0),
                "B": WindowSpec(win=60.0, slide=20.0),
            }
        )
        assert q.num_sources == 2


class TestStructure:
    def test_sources_sorted(self):
        q = make_query(
            windows={
                "B": WindowSpec(win=100.0, slide=20.0),
                "A": WindowSpec(win=100.0, slide=20.0),
            }
        )
        assert q.sources == ("A", "B")

    def test_slide(self):
        assert make_query().slide == 20.0

    def test_spec_lookup(self):
        q = make_query()
        assert q.spec("S1").win == 100.0
        with pytest.raises(KeyError):
            q.spec("S9")


class TestSchedule:
    def test_execution_time_single_source(self):
        q = make_query()
        assert q.execution_time(1) == 100.0
        assert q.execution_time(2) == 120.0

    def test_execution_time_multi_source_takes_max(self):
        q = make_query(
            windows={
                "A": WindowSpec(win=100.0, slide=20.0),
                "B": WindowSpec(win=60.0, slide=20.0),
            }
        )
        assert q.execution_time(1) == 100.0

    def test_window_bounds_per_source(self):
        q = make_query(
            windows={
                "A": WindowSpec(win=100.0, slide=20.0),
                "B": WindowSpec(win=60.0, slide=20.0),
            }
        )
        bounds = q.window_bounds(1)
        assert bounds["A"] == (0.0, 100.0)
        assert bounds["B"] == (0.0, 60.0)


class TestPaths:
    def test_default_output_path(self):
        assert make_query().output_path(3) == "/out/q/w0003"

    def test_custom_output_path(self):
        q = make_query(output_path_fn=lambda k: f"/custom/{k}")
        assert q.output_path(7) == "/custom/7"


class TestFinalizers:
    def test_concat_finalizer(self):
        assert list(concat_finalizer("k", [1, 2, 3])) == [
            ("k", 1),
            ("k", 2),
            ("k", 3),
        ]

    def test_merging_finalizer(self):
        fin = merging_finalizer(sum)
        assert list(fin("k", [1, 2, 3])) == [("k", 6)]

    def test_merging_finalizer_custom_merge(self):
        fin = merging_finalizer(max)
        assert list(fin("k", [5, 9, 2])) == [("k", 9)]

    def test_algebraic_property_for_wordcount(self):
        """finalize(reduce per pane) == reduce over the window."""
        job = wordcount_job()
        fin = merging_finalizer(sum)
        pane1 = [("a", 1)] * 3
        pane2 = [("a", 1)] * 4
        partials = []
        for pane in (pane1, pane2):
            partials.extend(v for _k, v in job.reducer("a", [v for _, v in pane]))
        direct = list(job.reducer("a", [1] * 7))
        assert list(fin("a", partials)) == direct
