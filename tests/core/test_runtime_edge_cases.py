"""Edge cases of the Redoop runtime: degenerate windows and clusters."""

from __future__ import annotations

from collections import Counter as PyCounter


from repro.core import RecurringQuery, RedoopRuntime, WindowSpec, merging_finalizer
from repro.hadoop import BatchFile, Cluster, Record, small_test_config

from ..conftest import wordcount_job

RATE = 500_000.0


def make_runtime(win, slide, *, num_nodes=4, num_reducers=4, seed=3):
    cluster = Cluster(
        small_test_config(num_nodes=num_nodes, num_reducers=num_reducers),
        seed=seed,
    )
    runtime = RedoopRuntime(cluster)
    query = RecurringQuery(
        name="wc",
        job=wordcount_job(num_reducers=num_reducers, name="wc"),
        windows={"S1": WindowSpec(win=win, slide=slide)},
        finalize=merging_finalizer(sum),
    )
    runtime.register_query(query, {"S1": RATE})
    return runtime


def feed_words(runtime, upto, *, batch_seconds=10.0, per_batch=20, gap=None):
    """Feed batches; `gap` is an optional (start, end) with no records."""
    import random

    fed = []
    i, t = 0, 0.0
    while t < upto - 1e-9:
        t1 = t + batch_seconds
        rng = random.Random(i)
        records = [
            Record(
                ts=t + j * batch_seconds / per_batch,
                value=f"w{rng.randrange(5)}",
                size=100,
            )
            for j in range(per_batch)
        ]
        if gap is not None:
            records = [r for r in records if not gap[0] <= r.ts < gap[1]]
        runtime.ingest(
            BatchFile(path=f"/b/{i}", source="S1", t_start=t, t_end=t1), records
        )
        fed.extend(records)
        i += 1
        t = t1
    return fed


class TestTumblingWindow:
    """win == slide: zero overlap, no cache reuse across windows."""

    def test_correct_but_no_pane_hits(self):
        runtime = make_runtime(20.0, 20.0)
        records = feed_words(runtime, 60.0)
        r1 = runtime.run_recurrence("wc", 1)
        r2 = runtime.run_recurrence("wc", 2)
        assert r2.counters.get("cache.pane_hits") == 0
        for r in (r1, r2):
            start, end = r.window_bounds["S1"]
            expected = PyCounter(x.value for x in records if start <= x.ts < end)
            assert dict(r.output) == dict(expected)

    def test_all_panes_expire_immediately(self):
        runtime = make_runtime(20.0, 20.0)
        feed_words(runtime, 80.0)
        for k in (1, 2, 3):
            runtime.run_recurrence("wc", k)
        held = {
            e.pid
            for r in runtime.registries().values()
            for e in r.live_entries()
        }
        # Only the current window's pane may remain cached.
        assert held <= {"wc:S1P2", "wc:S1P3"}


class TestSingleNodeCluster:
    def test_everything_runs_on_one_node(self):
        runtime = make_runtime(40.0, 10.0, num_nodes=1, num_reducers=2)
        records = feed_words(runtime, 50.0)
        r1 = runtime.run_recurrence("wc", 1)
        r2 = runtime.run_recurrence("wc", 2)
        start, end = r2.window_bounds["S1"]
        expected = PyCounter(x.value for x in records if start <= x.ts < end)
        assert dict(r2.output) == dict(expected)
        assert r2.response_time < r1.response_time  # caching still helps


class TestEmptyData:
    def test_window_with_empty_pane(self):
        runtime = make_runtime(40.0, 10.0)
        records = feed_words(runtime, 40.0, gap=(10.0, 20.0))
        result = runtime.run_recurrence("wc", 1)
        expected = PyCounter(r.value for r in records)
        assert dict(result.output) == dict(expected)

    def test_fully_empty_window(self):
        runtime = make_runtime(40.0, 10.0)
        feed_words(runtime, 40.0, gap=(0.0, 40.0))
        result = runtime.run_recurrence("wc", 1)
        assert result.output == []
        assert result.response_time > 0  # overheads still charged


class TestManyRecurrences:
    def test_long_run_stays_bounded(self):
        """Caches and bookkeeping must not grow without bound."""
        runtime = make_runtime(40.0, 10.0)
        feed_words(runtime, 40.0 + 30 * 10.0)
        entries_seen = []
        for k in range(1, 31):
            runtime.run_recurrence("wc", k)
            entries_seen.append(
                sum(len(r.live_entries()) for r in runtime.registries().values())
            )
        # Steady state: entries plateau at window panes x partitions x 2
        # (+ panes awaiting the other purge conditions), far below the
        # total panes processed.
        assert max(entries_seen[5:]) <= entries_seen[4] + 16
        state = runtime._states["wc"]
        assert len(state.pane_work) <= 8
        assert runtime.counters.get("cache.entries_purged") > 0

    def test_purged_panes_files_remain_in_hdfs(self):
        """Pane files are HDFS data, not caches; purging spares them."""
        runtime = make_runtime(40.0, 10.0)
        feed_words(runtime, 100.0)
        for k in range(1, 7):
            runtime.run_recurrence("wc", k)
        assert runtime.cluster.hdfs.exists("/panes/S1/S1P0")
