"""Unit tests for the Semantic Analyzer (Algorithm 1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.panes import WindowSpec
from repro.core.semantic_analyzer import (
    PartitionPlan,
    SemanticAnalyzer,
    SourceStats,
)
from repro.hadoop.config import ClusterConfig
from repro.hadoop.types import MEGABYTE


@pytest.fixture
def analyzer() -> SemanticAnalyzer:
    return SemanticAnalyzer(ClusterConfig())  # 64 MB blocks


class TestSourceStats:
    def test_positive_rate_required(self):
        with pytest.raises(ValueError):
            SourceStats(source="S1", rate=0.0)


class TestAlgorithm1:
    def test_paper_figure3_example(self, analyzer):
        """Fig. 3: win=6min, slide=2min, rate=16MB/min, 64MB blocks.

        pane = GCD = 2 minutes; filesize = 32 MB < 64 MB -> undersized;
        panenum = floor(64/32) = 2 panes per file.
        """
        spec = WindowSpec(win=360.0, slide=120.0)
        stats = SourceStats(source="News", rate=16 * MEGABYTE / 60.0)
        plan = analyzer.plan(spec, stats)
        assert plan.pane_seconds == 120.0
        assert plan.panes_per_file == 2
        assert not plan.oversize
        assert plan.expected_pane_bytes == pytest.approx(32 * MEGABYTE)

    def test_oversize_case(self, analyzer):
        # High rate: pane bytes >= block size -> one pane per file.
        spec = WindowSpec(win=360.0, slide=120.0)
        stats = SourceStats(source="S1", rate=MEGABYTE)  # 120 MB per pane
        plan = analyzer.plan(spec, stats)
        assert plan.oversize
        assert plan.panes_per_file == 1

    def test_boundary_exactly_block_size_is_oversize(self, analyzer):
        spec = WindowSpec(win=2.0, slide=1.0)  # pane = 1 s
        stats = SourceStats(source="S1", rate=64 * MEGABYTE)
        assert analyzer.plan(spec, stats).oversize

    def test_very_low_rate_many_panes_per_file(self, analyzer):
        spec = WindowSpec(win=360.0, slide=120.0)
        stats = SourceStats(source="S1", rate=1000.0)  # 120 KB per pane
        plan = analyzer.plan(spec, stats)
        assert plan.panes_per_file == (64 * MEGABYTE) // 120_000

    @given(
        win_m=st.integers(1, 120),
        slide_m=st.integers(1, 120),
        rate=st.floats(1.0, 1e9),
    )
    @settings(max_examples=60)
    def test_plan_invariants_property(self, win_m, slide_m, rate):
        win, slide = max(win_m, slide_m) * 60.0, min(win_m, slide_m) * 60.0
        analyzer = SemanticAnalyzer(ClusterConfig())
        spec = WindowSpec(win=win, slide=slide)
        plan = analyzer.plan(spec, SourceStats(source="S", rate=rate))
        assert plan.pane_seconds == spec.pane_seconds
        assert plan.panes_per_file >= 1
        if plan.panes_per_file > 1:
            # Undersized: the packed file is expected to fit in a block.
            assert (
                plan.panes_per_file * plan.expected_pane_bytes
                <= 64 * MEGABYTE + plan.expected_pane_bytes
            )


class TestPlanAll:
    def test_plans_every_source(self, analyzer):
        specs = {
            "A": WindowSpec(win=100.0, slide=50.0),
            "B": WindowSpec(win=200.0, slide=50.0),
        }
        stats = {
            "A": SourceStats(source="A", rate=1000.0),
            "B": SourceStats(source="B", rate=2000.0),
        }
        plans = analyzer.plan_all(specs, stats)
        assert set(plans) == {"A", "B"}

    def test_missing_stats_rejected(self, analyzer):
        specs = {"A": WindowSpec(win=10.0, slide=5.0)}
        with pytest.raises(ValueError):
            analyzer.plan_all(specs, {})


class TestPartitionPlanValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"pane_seconds": 0.0},
            {"panes_per_file": 0},
            {"sub_panes": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        defaults = dict(
            source="S",
            pane_seconds=10.0,
            panes_per_file=1,
            expected_pane_bytes=100.0,
        )
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            PartitionPlan(**defaults)

    def test_file_group_of_pane(self):
        plan = PartitionPlan(
            source="S", pane_seconds=10.0, panes_per_file=4,
            expected_pane_bytes=1.0,
        )
        assert plan.file_group_of_pane(0) == 0
        assert plan.file_group_of_pane(3) == 0
        assert plan.file_group_of_pane(4) == 1

    def test_negative_pane_rejected(self):
        plan = PartitionPlan(
            source="S", pane_seconds=10.0, panes_per_file=1,
            expected_pane_bytes=1.0,
        )
        with pytest.raises(ValueError):
            plan.file_group_of_pane(-1)


class TestAdaptiveReplan:
    def test_scale_factor_splits_panes(self, analyzer):
        plan = PartitionPlan(
            source="S", pane_seconds=60.0, panes_per_file=1,
            expected_pane_bytes=1.0,
        )
        refined = analyzer.replan_adaptive(plan, 2.5)
        assert refined.sub_panes == 3  # ceil(2.5)
        assert refined.sub_pane_seconds == pytest.approx(20.0)

    def test_factor_at_most_one_reverts(self, analyzer):
        plan = PartitionPlan(
            source="S", pane_seconds=60.0, panes_per_file=1,
            expected_pane_bytes=1.0, sub_panes=4,
        )
        assert analyzer.replan_adaptive(plan, 0.8).sub_panes == 1

    def test_same_factor_returns_same_plan(self, analyzer):
        plan = PartitionPlan(
            source="S", pane_seconds=60.0, panes_per_file=1,
            expected_pane_bytes=1.0, sub_panes=2,
        )
        assert analyzer.replan_adaptive(plan, 2.0) is plan

    def test_nonpositive_factor_rejected(self, analyzer):
        plan = PartitionPlan(
            source="S", pane_seconds=60.0, panes_per_file=1,
            expected_pane_bytes=1.0,
        )
        with pytest.raises(ValueError):
            analyzer.replan_adaptive(plan, 0.0)
