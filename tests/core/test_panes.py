"""Unit tests for pane arithmetic and window specs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.panes import (
    Pane,
    PaneRange,
    WindowSpec,
    pane_file_name,
    pane_name,
    parse_pane_name,
)

# Window specs with integral-second win/slide, slide <= win.
spec_strategy = st.tuples(
    st.integers(1, 48), st.integers(1, 48)
).map(lambda ws: WindowSpec(win=float(max(ws)) * 60, slide=float(min(ws)) * 60))


class TestWindowSpecValidation:
    def test_positive_required(self):
        with pytest.raises(ValueError):
            WindowSpec(win=0, slide=1)
        with pytest.raises(ValueError):
            WindowSpec(win=10, slide=0)

    def test_slide_beyond_win_rejected(self):
        with pytest.raises(ValueError):
            WindowSpec(win=10, slide=11)

    def test_sub_millisecond_rejected(self):
        with pytest.raises(ValueError):
            WindowSpec(win=1.00000001, slide=0.5)


class TestPaneDerivation:
    def test_paper_example_gcd(self):
        # Sec. 3.1: win = 6 min, slide = 2 min -> pane = 2 min.
        spec = WindowSpec(win=360.0, slide=120.0)
        assert spec.pane_seconds == 120.0

    def test_coprime_minutes(self):
        spec = WindowSpec(win=600.0, slide=540.0)  # 10 min / 9 min
        assert spec.pane_seconds == 60.0
        assert spec.panes_per_window == 10
        assert spec.panes_per_slide == 9

    def test_tumbling_window(self):
        spec = WindowSpec(win=100.0, slide=100.0)
        assert spec.pane_seconds == 100.0
        assert spec.panes_per_window == 1

    def test_fractional_seconds_supported(self):
        spec = WindowSpec(win=1.5, slide=0.5)
        assert spec.pane_seconds == 0.5

    def test_overlap_factor(self):
        assert WindowSpec(win=10.0, slide=1.0).overlap == pytest.approx(0.9)
        assert WindowSpec(win=10.0, slide=10.0).overlap == 0.0

    @given(spec_strategy)
    @settings(max_examples=60)
    def test_pane_divides_both_property(self, spec):
        pane_ms = round(spec.pane_seconds * 1000)
        assert round(spec.win * 1000) % pane_ms == 0
        assert round(spec.slide * 1000) % pane_ms == 0


class TestExecutionSchedule:
    def test_first_execution_at_win(self):
        spec = WindowSpec(win=100.0, slide=20.0)
        assert spec.execution_time(1) == 100.0
        assert spec.execution_time(3) == 140.0

    def test_recurrence_numbering_from_one(self):
        with pytest.raises(ValueError):
            WindowSpec(win=10.0, slide=5.0).execution_time(0)

    def test_window_bounds(self):
        spec = WindowSpec(win=100.0, slide=20.0)
        assert spec.window_bounds(1) == (0.0, 100.0)
        assert spec.window_bounds(2) == (20.0, 120.0)


class TestPaneCoverage:
    def test_pane_bounds(self):
        spec = WindowSpec(win=60.0, slide=20.0)  # pane = 20
        assert spec.pane_bounds(0) == (0.0, 20.0)
        assert spec.pane_bounds(3) == (60.0, 80.0)

    def test_pane_of_time(self):
        spec = WindowSpec(win=60.0, slide=20.0)
        assert spec.pane_of_time(0.0) == 0
        assert spec.pane_of_time(19.999) == 0
        assert spec.pane_of_time(20.0) == 1

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            WindowSpec(win=10.0, slide=5.0).pane_of_time(-1.0)

    def test_panes_in_window(self):
        spec = WindowSpec(win=60.0, slide=20.0)  # 3 panes per window
        assert spec.panes_in_window(1) == [0, 1, 2]
        assert spec.panes_in_window(2) == [1, 2, 3]

    def test_new_panes_first_window_is_all(self):
        spec = WindowSpec(win=60.0, slide=20.0)
        assert spec.new_panes_in_window(1) == [0, 1, 2]

    def test_new_panes_subsequent(self):
        spec = WindowSpec(win=60.0, slide=20.0)
        assert spec.new_panes_in_window(2) == [3]

    @given(spec_strategy, st.integers(1, 12))
    @settings(max_examples=60)
    def test_window_is_union_of_panes_property(self, spec, k):
        """Every window is exactly covered by its panes."""
        start, end = spec.window_bounds(k)
        panes = spec.panes_in_window(k)
        lo = spec.pane_bounds(panes[0])[0]
        hi = spec.pane_bounds(panes[-1])[1]
        assert lo <= max(0.0, start) + 1e-6
        assert hi >= end - 1e-6
        # panes are consecutive
        assert panes == list(range(panes[0], panes[-1] + 1))

    @given(spec_strategy, st.integers(2, 12))
    @settings(max_examples=60)
    def test_slide_advances_by_panes_per_slide(self, spec, k):
        prev = spec.panes_in_window(k - 1)
        curr = spec.panes_in_window(k)
        assert curr[-1] - prev[-1] == spec.panes_per_slide


class TestLifespans:
    def test_recurrences_containing_pane(self):
        # win = 30 min, slide = 20 min, pane = 10 min (paper Fig. 4 setup).
        spec = WindowSpec(win=1800.0, slide=1200.0)
        # window 1 covers panes 0-2, window 2 covers panes 2-4, window 3: 4-6
        assert spec.recurrences_containing_pane(0) == (1, 1)
        assert spec.recurrences_containing_pane(2) == (1, 2)
        assert spec.recurrences_containing_pane(4) == (2, 3)

    def test_lifespan_symmetric_specs(self):
        spec = WindowSpec(win=1800.0, slide=1200.0)
        # pane 2 co-occurs with windows 1 and 2 -> partner panes 0..4.
        assert spec.lifespan(2, spec) == (0, 4)
        # pane 1 is only in window 1 -> partners 0..2.
        assert spec.lifespan(1, spec) == (0, 2)

    def test_lifespan_requires_shared_slide(self):
        a = WindowSpec(win=100.0, slide=50.0)
        b = WindowSpec(win=100.0, slide=25.0)
        with pytest.raises(ValueError):
            a.lifespan(0, b)

    @given(spec_strategy, st.integers(0, 30))
    @settings(max_examples=60)
    def test_lifespan_covers_own_windows_property(self, spec, idx):
        lo, hi = spec.lifespan(idx, spec)
        k_min, k_max = spec.recurrences_containing_pane(idx)
        for k in (k_min, k_max):
            panes = spec.panes_in_window(k)
            assert lo <= min(panes)
            assert hi >= max(panes)


class TestNaming:
    def test_pane_name(self):
        assert pane_name("S1", 3) == "S1P3"

    def test_pane_pid(self):
        assert Pane("S2", 7).pid == "S2P7"
        assert str(Pane("S2", 7)) == "S2P7"

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Pane("S1", -1)

    def test_parse_roundtrip(self):
        pane = parse_pane_name("S1P12")
        assert pane == Pane("S1", 12)

    def test_parse_invalid(self):
        for bad in ("S1", "P3", "nonsense", "S1P"):
            with pytest.raises(ValueError):
                parse_pane_name(bad)

    def test_file_name_single(self):
        # Oversize case: S#P# (paper Sec. 3.2).
        assert pane_file_name("S1", 1) == "S1P1"
        assert pane_file_name("S1", 1, 1) == "S1P1"

    def test_file_name_range(self):
        # Undersized case: S#P#_# covering panes 1-4.
        assert pane_file_name("S1", 1, 4) == "S1P1_4"

    def test_file_name_invalid_range(self):
        with pytest.raises(ValueError):
            pane_file_name("S1", 4, 1)


class TestPaneRange:
    def test_indices_and_contains(self):
        r = PaneRange("S1", 2, 5)
        assert r.indices() == [2, 3, 4, 5]
        assert 3 in r
        assert 6 not in r
        assert len(r) == 4

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            PaneRange("S1", 5, 2)
