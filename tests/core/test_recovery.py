"""Tests for cache/node failure recovery (paper Sec. 5, Fig. 9)."""

from __future__ import annotations

from collections import Counter as PyCounter

import pytest

from repro.core import (
    REDUCE_INPUT,
    REDUCE_OUTPUT,
    HDFS_AVAILABLE,
    LostCache,
    RecoveryManager,
)
from repro.hadoop import FaultInjector

from .test_runtime import feed, make_runtime


@pytest.fixture
def warm_runtime():
    """A runtime with window 1 executed (caches populated) + later data."""
    runtime = make_runtime()
    records = feed(runtime, 70.0)
    runtime.run_recurrence("wc", 1)
    return runtime, records


class TestInventory:
    def test_live_caches_enumerated(self, warm_runtime):
        runtime, _ = warm_runtime
        recovery = RecoveryManager(runtime)
        caches = recovery.live_caches()
        assert len(caches) == 32  # 4 panes x 4 partitions x 2 types
        assert all(isinstance(c, LostCache) for c in caches)

    def test_keys_unique(self, warm_runtime):
        runtime, _ = warm_runtime
        caches = RecoveryManager(runtime).live_caches()
        keys = [c.key for c in caches]
        assert len(keys) == len(set(keys))


class TestDestroyCache:
    def test_metadata_rolled_back(self, warm_runtime):
        runtime, _ = warm_runtime
        recovery = RecoveryManager(runtime)
        victims = [
            c
            for c in recovery.live_caches()
            if c.pid == "wc:S1P1" and c.cache_type == REDUCE_INPUT
        ]
        for v in victims:
            recovery.destroy_cache(v)
        # Every partition's rin gone -> pane rolls back to HDFS-available
        # once its output caches are destroyed too.
        for v in [
            c for c in recovery.live_caches() if c.pid == "wc:S1P1"
        ]:
            recovery.destroy_cache(v)
        assert runtime.controller.pane_ready("wc:S1P1") == HDFS_AVAILABLE

    def test_unknown_node_rejected(self, warm_runtime):
        runtime, _ = warm_runtime
        recovery = RecoveryManager(runtime)
        with pytest.raises(ValueError):
            recovery.destroy_cache(
                LostCache(node_id=99, pid="S1P0", cache_type=1, partition=0)
            )

    def test_counter_incremented(self, warm_runtime):
        runtime, _ = warm_runtime
        recovery = RecoveryManager(runtime)
        recovery.destroy_cache(recovery.live_caches()[0])
        assert runtime.counters.get("faults.caches_destroyed") == 1


class TestCacheFailureRecovery:
    def test_window_output_correct_after_cache_loss(self, warm_runtime):
        runtime, records = warm_runtime
        recovery = RecoveryManager(runtime)
        injector = FaultInjector(cache_loss_fraction=0.5, seed=1)
        recovery.inject_pane_cache_failures(injector)
        result = runtime.run_recurrence("wc", 2)
        start, end = result.window_bounds["S1"]
        expected = PyCounter(r.value for r in records if start <= r.ts < end)
        assert dict(result.output) == dict(expected)

    def test_lost_panes_remapped(self, warm_runtime):
        runtime, _ = warm_runtime
        recovery = RecoveryManager(runtime)
        injector = FaultInjector(cache_loss_fraction=1.0, seed=1)
        destroyed = recovery.inject_pane_cache_failures(injector)
        assert destroyed
        result = runtime.run_recurrence("wc", 2)
        # All 4 window panes must be re-mapped (no cache survives).
        assert result.counters.get("cache.pane_hits") == 0
        assert result.counters.get("map.tasks") >= 4

    def test_caches_reconstructed_after_loss(self, warm_runtime):
        runtime, _ = warm_runtime
        recovery = RecoveryManager(runtime)
        injector = FaultInjector(cache_loss_fraction=1.0, seed=1)
        recovery.inject_pane_cache_failures(injector)
        runtime.run_recurrence("wc", 2)
        pids = {
            e.pid
            for r in runtime.registries().values()
            for e in r.live_entries()
        }
        # Window 2 panes (1-4) all have caches again.
        assert {"wc:S1P1", "wc:S1P2", "wc:S1P3", "wc:S1P4"} <= pids

    def test_partial_loss_cheaper_than_total_loss(self):
        """Pane-granular caching: losing some panes costs less than all."""

        def response_after_loss(fraction):
            runtime = make_runtime()
            feed(runtime, 70.0)
            runtime.run_recurrence("wc", 1)
            recovery = RecoveryManager(runtime)
            if fraction:
                injector = FaultInjector(cache_loss_fraction=fraction, seed=1)
                recovery.inject_pane_cache_failures(injector)
            return runtime.run_recurrence("wc", 2).response_time

        none = response_after_loss(0.0)
        partial = response_after_loss(0.5)
        total = response_after_loss(1.0)
        assert none <= partial <= total
        assert total > none

    def test_type_filtered_injection(self, warm_runtime):
        runtime, _ = warm_runtime
        recovery = RecoveryManager(runtime)
        injector = FaultInjector(cache_loss_fraction=1.0, seed=1)
        destroyed = recovery.inject_cache_failures(
            injector, cache_type=REDUCE_OUTPUT
        )
        assert destroyed
        assert all(c.cache_type == REDUCE_OUTPUT for c in destroyed)
        # Reduce-input caches survive; merge rebuilds from them.
        result = runtime.run_recurrence("wc", 2)
        assert result.counters.get("cache.rin_rebuilds") > 0


class TestNodeFailureRecovery:
    def test_node_failure_rolls_back_and_recovers(self, warm_runtime):
        runtime, records = warm_runtime
        recovery = RecoveryManager(runtime)
        # Fail a node that hosts at least one cache.
        hosting = {c.node_id for c in recovery.live_caches()}
        victim = sorted(hosting)[0]
        lost = recovery.fail_node(victim)
        assert lost  # caches were lost with the node
        assert victim not in runtime.cluster.live_node_ids()
        result = runtime.run_recurrence("wc", 2)
        start, end = result.window_bounds["S1"]
        expected = PyCounter(r.value for r in records if start <= r.ts < end)
        assert dict(result.output) == dict(expected)

    def test_recover_node_rejoins(self, warm_runtime):
        runtime, _ = warm_runtime
        recovery = RecoveryManager(runtime)
        recovery.fail_node(0)
        recovery.recover_node(0)
        assert 0 in runtime.cluster.live_node_ids()

    def test_queued_reduce_tasks_dropped_on_node_failure(self, warm_runtime):
        """Sec. 5: scheduled tasks using a lost cache must leave the
        ReduceTaskList immediately — matched by job-namespaced pid."""
        runtime, _ = warm_runtime
        recovery = RecoveryManager(runtime)
        from repro.core.scheduler import ReduceTaskRequest

        hosting = {c.node_id for c in recovery.live_caches()}
        victim = sorted(hosting)[0]
        lost_pids = {
            c.pid for c in recovery.live_caches() if c.node_id == victim
        }
        assert lost_pids

        # Queue reduce tasks over every cache the victim hosts, plus
        # one reading a pane the victim does not host (it must survive).
        surviving_pid = "wc:S1P9"
        assert surviving_pid not in lost_pids
        queued = []
        for i, pid in enumerate(sorted(lost_pids)):
            src, _, idx = pid.rpartition("P")
            request = ReduceTaskRequest(
                query="wc", panes=((src, int(idx)),), partition=i, input_bytes=1
            )
            runtime.scheduler.enqueue_reduce(request)
            queued.append(request)
        keeper = ReduceTaskRequest(
            query="wc", panes=(("wc:S1", 9),), partition=0, input_bytes=1
        )
        runtime.scheduler.enqueue_reduce(keeper)

        lost = recovery.fail_node(victim)
        assert lost
        remaining = list(runtime.scheduler.reduce_task_list)
        # No queued task referencing a lost cache survives; tasks
        # reading unaffected panes do.
        lost_cache_pids = {pid for pid, _t, _p in lost}
        for request in remaining:
            assert not (set(request.pane_pids()) & lost_cache_pids)
        assert keeper in remaining
        assert runtime.counters.get("sched.reduce_dropped") >= len(queued)
        # Dropped tasks are re-created by the next recurrence: drain the
        # keeper so the recurrence starts from clean lists, then run it.
        runtime.scheduler.reduce_task_list.clear()
        result = runtime.run_recurrence("wc", 2)
        assert result.output

    def test_drops_are_traced(self, warm_runtime):
        runtime, _ = warm_runtime
        recovery = RecoveryManager(runtime)
        from repro.core.scheduler import ReduceTaskRequest

        hosting = {c.node_id for c in recovery.live_caches()}
        victim = sorted(hosting)[0]
        pid = sorted(
            c.pid for c in recovery.live_caches() if c.node_id == victim
        )[0]
        src, _, idx = pid.rpartition("P")
        request = ReduceTaskRequest(
            query="wc", panes=((src, int(idx)),), partition=0, input_bytes=1
        )
        runtime.scheduler.enqueue_reduce(request)
        recovery.fail_node(victim)
        drops = runtime.sched_trace.drops()
        assert any(d.request is request for d in drops)

    def test_sticky_partitions_remap_after_node_loss(self, warm_runtime):
        """Partitions homed on a dead node move elsewhere."""
        runtime, _ = warm_runtime
        recovery = RecoveryManager(runtime)
        state = runtime._states["wc"]
        victim = next(iter(state.partition_nodes.values()))
        recovery.fail_node(victim)
        runtime.run_recurrence("wc", 2)
        # The dead node's registry stays empty; new cache placements all
        # land on live nodes.
        for registry in runtime.registries().values():
            if registry.node.node_id == victim:
                assert not registry.live_entries()
        for signature in runtime.controller.signatures():
            assert victim not in signature.nodes


class TestSeededInjection:
    def test_same_seed_same_victims(self):
        # Two identical runtimes + same-seed injectors pick byte-identical
        # victim lists: chaos schedules replay deterministically.
        def victims(seed):
            runtime = make_runtime()
            feed(runtime, 70.0)
            runtime.run_recurrence("wc", 1)
            recovery = RecoveryManager(runtime)
            injector = FaultInjector(cache_loss_fraction=0.5, seed=seed)
            return [c.key for c in recovery.inject_cache_failures(injector)]

        assert victims(7) == victims(7)
        assert victims(7) != victims(8)

    def test_corruption_victims_deterministic(self):
        def victims(seed):
            runtime = make_runtime()
            feed(runtime, 70.0)
            runtime.run_recurrence("wc", 1)
            recovery = RecoveryManager(runtime)
            injector = FaultInjector(cache_corruption_fraction=0.5, seed=seed)
            return [c.key for c in recovery.inject_cache_corruption(injector)]

        assert victims(7) == victims(7)

    def test_fraction_override_wins(self, warm_runtime):
        runtime, _ = warm_runtime
        recovery = RecoveryManager(runtime)
        # Injector says "lose nothing"; the per-event fraction says 100%.
        injector = FaultInjector(cache_loss_fraction=0.0, seed=1)
        destroyed = recovery.inject_cache_failures(injector, fraction=1.0)
        assert len(destroyed) == 32

    def test_same_seed_same_digest_after_recovery(self):
        def digest(seed):
            runtime = make_runtime()
            feed(runtime, 90.0)
            runtime.run_recurrence("wc", 1)
            recovery = RecoveryManager(runtime)
            injector = FaultInjector(cache_loss_fraction=0.5, seed=seed)
            recovery.inject_cache_failures(injector)
            result = runtime.run_recurrence("wc", 2)
            return tuple(sorted(map(repr, result.output)))

        assert digest(7) == digest(7)
