"""Unit tests for the Cache-Aware Task Scheduler (Algorithm 2, Eq. 4)."""

from __future__ import annotations

import pytest

from repro.core.scheduler import (
    CacheAwareTaskScheduler,
    MapTaskRequest,
    ReduceTaskRequest,
)
from repro.hadoop import Cluster, small_test_config
from repro.hadoop.node import MAP_SLOT, REDUCE_SLOT
from repro.hadoop.types import MEGABYTE


@pytest.fixture
def cluster() -> Cluster:
    return Cluster(small_test_config(), seed=5)


@pytest.fixture
def scheduler(cluster) -> CacheAwareTaskScheduler:
    return CacheAwareTaskScheduler(cluster)


def map_request(nbytes=8 * MEGABYTE, locations=()):
    return MapTaskRequest(
        query="q", pid="S1P0", input_bytes=nbytes, locations=tuple(locations)
    )


def reduce_request(nbytes=8 * MEGABYTE, cached=(), partition=0):
    return ReduceTaskRequest(
        query="q",
        panes=(("S1", 0),),
        partition=partition,
        input_bytes=nbytes,
        cached_bytes_by_node=tuple(cached),
    )


class TestEq4MapSelection:
    def test_prefers_data_local_node(self, scheduler):
        node = scheduler.select_map_node(map_request(locations=[2]), now=0.0)
        assert node.node_id == 2

    def test_load_outweighs_locality(self, scheduler, cluster):
        # Pile enough work on the local node that Eq. 4 sends the task away.
        for _ in range(cluster.config.map_slots_per_node):
            cluster.node(2).occupy_slot(MAP_SLOT, 0.0, 1000.0)
        node = scheduler.select_map_node(map_request(locations=[2]), now=0.0)
        assert node.node_id != 2

    def test_locality_wins_under_mild_load(self, scheduler, cluster):
        # A small load on the local node should not evict the task:
        # the I/O penalty of going remote exceeds the wait.
        cluster.node(2).occupy_slot(MAP_SLOT, 0.0, 0.01)
        node = scheduler.select_map_node(
            map_request(nbytes=64 * MEGABYTE, locations=[2]), now=0.0
        )
        assert node.node_id == 2

    def test_no_live_nodes_raises(self, scheduler, cluster):
        for nid in list(cluster.live_node_ids()):
            cluster.fail_node(nid)
        with pytest.raises(RuntimeError):
            scheduler.select_map_node(map_request(), now=0.0)


class TestEq4ReduceSelection:
    def test_prefers_cache_host(self, scheduler):
        request = reduce_request(cached=[(3, 8 * MEGABYTE)])
        node = scheduler.select_reduce_node(request, now=0.0)
        assert node.node_id == 3

    def test_overloaded_cache_host_loses(self, scheduler, cluster):
        for _ in range(cluster.config.reduce_slots_per_node):
            cluster.node(3).occupy_slot(REDUCE_SLOT, 0.0, 1000.0)
        request = reduce_request(cached=[(3, 8 * MEGABYTE)])
        node = scheduler.select_reduce_node(request, now=0.0)
        assert node.node_id != 3

    def test_partial_cache_weighting(self, scheduler):
        # Node 1 holds more of the input than node 2: node 1 wins.
        request = reduce_request(
            nbytes=10 * MEGABYTE,
            cached=[(1, 6 * MEGABYTE), (2, 2 * MEGABYTE)],
        )
        assert scheduler.select_reduce_node(request, now=0.0).node_id == 1

    def test_deterministic_tiebreak_by_node_id(self, scheduler):
        node = scheduler.select_reduce_node(reduce_request(), now=0.0)
        assert node.node_id == 0


class TestTaskLists:
    def test_map_fifo(self, scheduler):
        a, b = map_request(), map_request()
        scheduler.enqueue_map(a)
        scheduler.enqueue_map(b)
        assert scheduler.next_map() is a
        assert scheduler.next_map() is b
        assert scheduler.next_map() is None

    def test_reduce_prefers_fully_cached(self, scheduler):
        uncached = reduce_request(nbytes=10, cached=())
        partial = reduce_request(nbytes=10, cached=[(0, 4)])
        full = reduce_request(nbytes=10, cached=[(0, 10)])
        for r in (uncached, partial, full):
            scheduler.enqueue_reduce(r)
        assert scheduler.next_reduce() is full
        assert scheduler.next_reduce() is partial
        assert scheduler.next_reduce() is uncached
        assert scheduler.next_reduce() is None

    def test_reduce_fifo_within_class(self, scheduler):
        first = reduce_request(partition=0)
        second = reduce_request(partition=1)
        scheduler.enqueue_reduce(first)
        scheduler.enqueue_reduce(second)
        assert scheduler.next_reduce() is first

    def test_drop_reduce_tasks_using_lost_cache(self, scheduler):
        keep = ReduceTaskRequest(
            query="q", panes=(("S1", 1),), partition=0, input_bytes=1
        )
        drop = ReduceTaskRequest(
            query="q", panes=(("S1", 0), ("S2", 3)), partition=0, input_bytes=1
        )
        scheduler.enqueue_reduce(keep)
        scheduler.enqueue_reduce(drop)
        removed = scheduler.drop_reduce_tasks_using("S2P3")
        assert removed == [drop]
        assert list(scheduler.reduce_task_list) == [keep]

    def test_drop_with_no_match_is_noop(self, scheduler):
        keep = reduce_request()
        scheduler.enqueue_reduce(keep)
        assert scheduler.drop_reduce_tasks_using("S9P9") == []
        assert list(scheduler.reduce_task_list) == [keep]

    def test_drop_matches_job_namespaced_pids(self, scheduler):
        """Runtime requests carry qsource names like ``wc:S1``; a lost
        cache reported as ``wc:S1P3`` must match them."""
        drop = ReduceTaskRequest(
            query="wc", panes=(("wc:S1", 3),), partition=0, input_bytes=1
        )
        keep = ReduceTaskRequest(
            query="wc", panes=(("wc:S1", 4),), partition=0, input_bytes=1
        )
        scheduler.enqueue_reduce(drop)
        scheduler.enqueue_reduce(keep)
        assert scheduler.drop_reduce_tasks_using("wc:S1P3") == [drop]
        assert list(scheduler.reduce_task_list) == [keep]

    def test_drop_matches_combination_pids(self, scheduler):
        """A lost join-output cache (``AxB`` pid) drops every queued
        task reading either constituent pane."""
        reads_a = ReduceTaskRequest(
            query="j", panes=(("j:S1", 1),), partition=0, input_bytes=1
        )
        reads_b = ReduceTaskRequest(
            query="j", panes=(("j:S2", 2),), partition=1, input_bytes=1
        )
        keep = ReduceTaskRequest(
            query="j", panes=(("j:S1", 9),), partition=2, input_bytes=1
        )
        for r in (reads_a, reads_b, keep):
            scheduler.enqueue_reduce(r)
        removed = scheduler.drop_reduce_tasks_using("j:S1P1xj:S2P2")
        assert removed == [reads_a, reads_b]
        assert list(scheduler.reduce_task_list) == [keep]

    def test_drop_keeps_equal_duplicates_not_using_the_cache(self, scheduler):
        """Equal duplicate requests must be judged independently: the
        old ``r not in removed`` filter dropped innocent twins."""
        twin_a = reduce_request(partition=7)
        twin_b = reduce_request(partition=7)
        assert twin_a == twin_b and twin_a is not twin_b
        victim = ReduceTaskRequest(
            query="q", panes=(("S2", 0),), partition=7, input_bytes=1
        )
        for r in (twin_a, victim, twin_b):
            scheduler.enqueue_reduce(r)
        removed = scheduler.drop_reduce_tasks_using("S2P0")
        assert removed == [victim]
        assert list(scheduler.reduce_task_list) == [twin_a, twin_b]
        assert scheduler.reduce_task_list[0] is twin_a
        assert scheduler.reduce_task_list[1] is twin_b


class TestCacheRank:
    rank = staticmethod(CacheAwareTaskScheduler._cache_rank)

    def test_rank_ordering_full_partial_empty(self):
        full = reduce_request(nbytes=10, cached=[(0, 10)])
        partial = reduce_request(nbytes=10, cached=[(0, 4)])
        empty = reduce_request(nbytes=10, cached=())
        ranks = [self.rank(r) for r in (full, partial, empty)]
        assert ranks == [0, 1, 2]
        assert ranks == sorted(ranks)

    def test_overfull_coverage_is_fully_cached(self):
        assert self.rank(reduce_request(nbytes=10, cached=[(0, 6), (1, 6)])) == 0

    def test_zero_input_is_not_fully_cached(self):
        """A request with nothing to read must not jump the queue as
        "fully cached" — the phantom-request bug."""
        assert self.rank(reduce_request(nbytes=0, cached=())) == 2
        assert self.rank(reduce_request(nbytes=0, cached=[(0, 5)])) == 2

    def test_zero_input_never_precedes_cached_work(self, scheduler):
        empty = reduce_request(nbytes=0)
        cached = reduce_request(nbytes=10, cached=[(0, 10)])
        scheduler.enqueue_reduce(empty)
        scheduler.enqueue_reduce(cached)
        assert scheduler.next_reduce() is cached
        assert scheduler.next_reduce() is empty


class TestContendedOrdering:
    def test_rank_order_decides_slot_assignment_under_contention(self, cluster):
        """Algorithm 2's pop order must decide who gets the early slots
        when reduce slots are contended: fully cached tasks run first,
        then partially cached, then uncached — regardless of enqueue
        order."""
        scheduler = CacheAwareTaskScheduler(cluster)
        uncached = reduce_request(nbytes=10 * MEGABYTE, partition=0)
        partial = reduce_request(
            nbytes=10 * MEGABYTE, cached=[(1, 4 * MEGABYTE)], partition=1
        )
        full = reduce_request(
            nbytes=10 * MEGABYTE, cached=[(2, 10 * MEGABYTE)], partition=2
        )
        for r in (uncached, partial, full):  # worst-first enqueue order
            scheduler.enqueue_reduce(r)

        starts = {}
        now = 0.0
        while True:
            request = scheduler.next_reduce()
            if request is None:
                break
            node = scheduler.select_reduce_node(request, now)
            start = max(now, node.earliest_slot_time(REDUCE_SLOT))
            node.occupy_slot(REDUCE_SLOT, now, 100.0)
            starts[request.partition] = start
            now = start  # serialise: each pop contends with the last

        assert starts[2] <= starts[1] <= starts[0]


class TestSchedulingTrace:
    def test_pops_and_selects_are_recorded_with_rank(self, cluster):
        from repro.hadoop.timeline import SchedulingTrace

        trace = SchedulingTrace()
        scheduler = CacheAwareTaskScheduler(cluster, trace=trace)
        full = reduce_request(nbytes=10, cached=[(1, 10)])
        uncached = reduce_request(nbytes=10)
        scheduler.enqueue_reduce(uncached)
        scheduler.enqueue_reduce(full)

        popped = scheduler.next_reduce()
        scheduler.select_reduce_node(popped, now=0.0)

        [pop] = trace.pops(REDUCE_SLOT)
        assert pop.request is full
        assert pop.rank == 0
        [select] = trace.selects(REDUCE_SLOT)
        assert select.request is full
        assert select.node_id == 1
        assert select.load is not None and select.c_task is not None

    def test_counters_track_dispatch_by_rank(self, cluster):
        from repro.hadoop.counters import Counters

        counters = Counters()
        scheduler = CacheAwareTaskScheduler(cluster, counters=counters)
        scheduler.enqueue_reduce(reduce_request(nbytes=10, cached=[(0, 10)]))
        scheduler.enqueue_reduce(reduce_request(nbytes=10))
        scheduler.next_reduce()
        scheduler.next_reduce()
        assert counters.get("sched.reduce_enqueued") == 2
        assert counters.get("sched.reduce_dispatched") == 2
        assert counters.get("sched.reduce_rank0_dispatched") == 1
        assert counters.get("sched.reduce_rank2_dispatched") == 1
