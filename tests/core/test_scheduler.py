"""Unit tests for the Cache-Aware Task Scheduler (Algorithm 2, Eq. 4)."""

from __future__ import annotations

import pytest

from repro.core.scheduler import (
    CacheAwareTaskScheduler,
    MapTaskRequest,
    ReduceTaskRequest,
)
from repro.hadoop import Cluster, small_test_config
from repro.hadoop.node import MAP_SLOT, REDUCE_SLOT
from repro.hadoop.types import MEGABYTE


@pytest.fixture
def cluster() -> Cluster:
    return Cluster(small_test_config(), seed=5)


@pytest.fixture
def scheduler(cluster) -> CacheAwareTaskScheduler:
    return CacheAwareTaskScheduler(cluster)


def map_request(nbytes=8 * MEGABYTE, locations=()):
    return MapTaskRequest(
        query="q", pid="S1P0", input_bytes=nbytes, locations=tuple(locations)
    )


def reduce_request(nbytes=8 * MEGABYTE, cached=(), partition=0):
    return ReduceTaskRequest(
        query="q",
        panes=(("S1", 0),),
        partition=partition,
        input_bytes=nbytes,
        cached_bytes_by_node=tuple(cached),
    )


class TestEq4MapSelection:
    def test_prefers_data_local_node(self, scheduler):
        node = scheduler.select_map_node(map_request(locations=[2]), now=0.0)
        assert node.node_id == 2

    def test_load_outweighs_locality(self, scheduler, cluster):
        # Pile enough work on the local node that Eq. 4 sends the task away.
        for _ in range(cluster.config.map_slots_per_node):
            cluster.node(2).occupy_slot(MAP_SLOT, 0.0, 1000.0)
        node = scheduler.select_map_node(map_request(locations=[2]), now=0.0)
        assert node.node_id != 2

    def test_locality_wins_under_mild_load(self, scheduler, cluster):
        # A small load on the local node should not evict the task:
        # the I/O penalty of going remote exceeds the wait.
        cluster.node(2).occupy_slot(MAP_SLOT, 0.0, 0.01)
        node = scheduler.select_map_node(
            map_request(nbytes=64 * MEGABYTE, locations=[2]), now=0.0
        )
        assert node.node_id == 2

    def test_no_live_nodes_raises(self, scheduler, cluster):
        for nid in list(cluster.live_node_ids()):
            cluster.fail_node(nid)
        with pytest.raises(RuntimeError):
            scheduler.select_map_node(map_request(), now=0.0)


class TestEq4ReduceSelection:
    def test_prefers_cache_host(self, scheduler):
        request = reduce_request(cached=[(3, 8 * MEGABYTE)])
        node = scheduler.select_reduce_node(request, now=0.0)
        assert node.node_id == 3

    def test_overloaded_cache_host_loses(self, scheduler, cluster):
        for _ in range(cluster.config.reduce_slots_per_node):
            cluster.node(3).occupy_slot(REDUCE_SLOT, 0.0, 1000.0)
        request = reduce_request(cached=[(3, 8 * MEGABYTE)])
        node = scheduler.select_reduce_node(request, now=0.0)
        assert node.node_id != 3

    def test_partial_cache_weighting(self, scheduler):
        # Node 1 holds more of the input than node 2: node 1 wins.
        request = reduce_request(
            nbytes=10 * MEGABYTE,
            cached=[(1, 6 * MEGABYTE), (2, 2 * MEGABYTE)],
        )
        assert scheduler.select_reduce_node(request, now=0.0).node_id == 1

    def test_deterministic_tiebreak_by_node_id(self, scheduler):
        node = scheduler.select_reduce_node(reduce_request(), now=0.0)
        assert node.node_id == 0


class TestTaskLists:
    def test_map_fifo(self, scheduler):
        a, b = map_request(), map_request()
        scheduler.enqueue_map(a)
        scheduler.enqueue_map(b)
        assert scheduler.next_map() is a
        assert scheduler.next_map() is b
        assert scheduler.next_map() is None

    def test_reduce_prefers_fully_cached(self, scheduler):
        uncached = reduce_request(nbytes=10, cached=())
        partial = reduce_request(nbytes=10, cached=[(0, 4)])
        full = reduce_request(nbytes=10, cached=[(0, 10)])
        for r in (uncached, partial, full):
            scheduler.enqueue_reduce(r)
        assert scheduler.next_reduce() is full
        assert scheduler.next_reduce() is partial
        assert scheduler.next_reduce() is uncached
        assert scheduler.next_reduce() is None

    def test_reduce_fifo_within_class(self, scheduler):
        first = reduce_request(partition=0)
        second = reduce_request(partition=1)
        scheduler.enqueue_reduce(first)
        scheduler.enqueue_reduce(second)
        assert scheduler.next_reduce() is first

    def test_drop_reduce_tasks_using_lost_cache(self, scheduler):
        keep = ReduceTaskRequest(
            query="q", panes=(("S1", 1),), partition=0, input_bytes=1
        )
        drop = ReduceTaskRequest(
            query="q", panes=(("S1", 0), ("S2", 3)), partition=0, input_bytes=1
        )
        scheduler.enqueue_reduce(keep)
        scheduler.enqueue_reduce(drop)
        removed = scheduler.drop_reduce_tasks_using("S2P3")
        assert removed == [drop]
        assert list(scheduler.reduce_task_list) == [keep]

    def test_drop_with_no_match_is_noop(self, scheduler):
        keep = reduce_request()
        scheduler.enqueue_reduce(keep)
        assert scheduler.drop_reduce_tasks_using("S9P9") == []
        assert list(scheduler.reduce_task_list) == [keep]
