"""Tests for the declarative recurring-query builder."""

from __future__ import annotations

from collections import defaultdict

import pytest

from repro.core import RedoopRuntime
from repro.core.builder import RecurringQueryBuilder
from repro.hadoop import BatchFile, Cluster, Record, small_test_config


def make_builder(**kwargs):
    defaults = dict(source="clicks", win=40.0, slide=10.0)
    defaults.update(kwargs)
    return RecurringQueryBuilder("q", **defaults)


class TestBuilderValidation:
    def test_key_required(self):
        with pytest.raises(ValueError):
            make_builder().count().build()

    def test_measure_required(self):
        with pytest.raises(ValueError):
            make_builder().key("page").build()

    def test_duplicate_key_rejected(self):
        with pytest.raises(ValueError):
            make_builder().key("a").key("b")

    def test_duplicate_measure_name_rejected(self):
        with pytest.raises(ValueError):
            make_builder().key("a").count("x").sum("f", "x")

    def test_duplicate_filter_rejected(self):
        with pytest.raises(ValueError):
            make_builder().where(lambda v: True).where(lambda v: True)


class TestGeneratedFunctions:
    def _query(self):
        return (
            make_builder()
            .key("page")
            .count()
            .sum("ms", "total_ms")
            .avg("ms", "avg_ms")
            .min("ms", "fastest")
            .max("ms", "slowest")
            .distinct("user", "users")
            .build(num_reducers=4)
        )

    def _record(self, ts, page, ms, user):
        return Record(ts=ts, value={"page": page, "ms": ms, "user": user}, size=100)

    def test_mapper_seeds_all_measures(self):
        q = self._query()
        ((key, state),) = list(q.job.mapper(self._record(0, "/a", 30, "u1")))
        assert key == "/a"
        assert state == (1, 30, (30, 1), 30, 30, frozenset({"u1"}))

    def test_reducer_folds(self):
        q = self._query()
        seeds = [
            next(iter(q.job.mapper(self._record(0, "/a", ms, u))))[1]
            for ms, u in ((10, "u1"), (30, "u2"), (20, "u1"))
        ]
        ((_k, folded),) = list(q.job.reducer("/a", seeds))
        assert folded[0] == 3          # count
        assert folded[1] == 60         # sum
        assert folded[2] == (60, 3)    # avg carrier
        assert folded[3] == 10         # min
        assert folded[4] == 30         # max
        assert folded[5] == frozenset({"u1", "u2"})

    def test_combiner_closed(self):
        """Re-reducing reducer output changes nothing (combiner safety)."""
        q = self._query()
        seeds = [
            next(iter(q.job.mapper(self._record(0, "/a", ms, "u"))))[1]
            for ms in (5, 15)
        ]
        once = list(q.job.reducer("/a", seeds))
        twice = list(q.job.reducer("/a", [v for _k, v in once]))
        assert once == twice

    def test_finalize_presents_row(self):
        q = self._query()
        seeds = [
            next(iter(q.job.mapper(self._record(0, "/a", ms, u))))[1]
            for ms, u in ((10, "u1"), (30, "u2"))
        ]
        partial = next(iter(q.job.reducer("/a", seeds)))[1]
        ((_k, row),) = list(q.finalize("/a", [partial]))
        assert row == {
            "count": 2,
            "total_ms": 40,
            "avg_ms": 20.0,
            "fastest": 10,
            "slowest": 30,
            "users": 2,
        }

    def test_where_filters_records(self):
        q = (
            make_builder()
            .key("page")
            .where(lambda v: v["ms"] > 100)
            .count()
            .build(num_reducers=2)
        )
        assert list(q.job.mapper(self._record(0, "/a", 50, "u"))) == []
        assert list(q.job.mapper(self._record(0, "/a", 500, "u"))) != []


class TestEndToEnd:
    def test_window_rows_match_ground_truth(self):
        import random

        runtime = RedoopRuntime(Cluster(small_test_config(), seed=8))
        query = (
            make_builder()
            .key("page")
            .count()
            .avg("ms", "avg_ms")
            .distinct("user", "users")
            .build(num_reducers=4)
        )
        runtime.register_query(query, {"clicks": 500_000.0})
        all_values = []
        for i in range(4):
            rng = random.Random(i)
            t0 = i * 10.0
            records = [
                Record(
                    ts=t0 + j * 0.4,
                    value={
                        "page": f"/p{rng.randrange(3)}",
                        "ms": rng.randrange(1, 100),
                        "user": f"u{rng.randrange(5)}",
                    },
                    size=100,
                )
                for j in range(25)
            ]
            runtime.ingest(
                BatchFile(
                    path=f"/b/{i}", source="clicks", t_start=t0, t_end=t0 + 10.0
                ),
                records,
            )
            all_values.extend(records)

        result = runtime.run_recurrence("q", 1)  # window [0, 40)
        expected = defaultdict(lambda: {"n": 0, "ms": 0, "users": set()})
        for r in all_values:
            row = expected[r.value["page"]]
            row["n"] += 1
            row["ms"] += r.value["ms"]
            row["users"].add(r.value["user"])
        got = dict(result.output)
        assert set(got) == set(expected)
        for page, row in expected.items():
            assert got[page]["count"] == row["n"]
            assert got[page]["avg_ms"] == pytest.approx(row["ms"] / row["n"])
            assert got[page]["users"] == len(row["users"])

    def test_incremental_equals_from_scratch(self):
        """Window 2's answer is unaffected by window 1's caching."""
        import random

        def run(windows_to_run):
            runtime = RedoopRuntime(Cluster(small_test_config(), seed=8))
            query = (
                make_builder()
                .key("page")
                .count()
                .distinct("user", "users")
                .build(num_reducers=4)
            )
            runtime.register_query(query, {"clicks": 500_000.0})
            for i in range(5):
                rng = random.Random(100 + i)
                t0 = i * 10.0
                records = [
                    Record(
                        ts=t0 + j * 0.4,
                        value={
                            "page": f"/p{rng.randrange(3)}",
                            "ms": 1,
                            "user": f"u{rng.randrange(5)}",
                        },
                        size=100,
                    )
                    for j in range(25)
                ]
                runtime.ingest(
                    BatchFile(
                        path=f"/b/{i}",
                        source="clicks",
                        t_start=t0,
                        t_end=t0 + 10.0,
                    ),
                    records,
                )
            out = None
            for k in windows_to_run:
                out = runtime.run_recurrence("q", k)
            return sorted(map(repr, out.output))

        incremental = run([1, 2])
        # A fresh runtime running window 1 then 2 with zero overlap in
        # *processing* still needs window 1 first (in-order constraint),
        # so compare against an independent replay.
        replay = run([1, 2])
        assert incremental == replay
