"""Unit tests for the Window-Aware Cache Controller (Sec. 4.2, Table 2)."""

from __future__ import annotations

import pytest

from repro.core.cache_controller import (
    CACHE_AVAILABLE,
    HDFS_AVAILABLE,
    NOT_AVAILABLE,
    WindowAwareCacheController,
)
from repro.core.cache_registry import REDUCE_INPUT, REDUCE_OUTPUT
from repro.core.panes import WindowSpec


@pytest.fixture
def controller() -> WindowAwareCacheController:
    return WindowAwareCacheController()


def binary_join_specs():
    spec = WindowSpec(win=1800.0, slide=1200.0)  # 3 panes/window, pane=600
    return {"S1": spec, "S2": spec}


class TestQueryRegistration:
    def test_register_returns_matrix(self, controller):
        matrix = controller.register_query("q1", binary_join_specs())
        assert matrix.sources == ("S1", "S2")
        assert controller.queries() == ["q1"]

    def test_duplicate_rejected(self, controller):
        controller.register_query("q1", binary_join_specs())
        with pytest.raises(ValueError):
            controller.register_query("q1", binary_join_specs())

    def test_unknown_query_access_rejected(self, controller):
        with pytest.raises(ValueError):
            controller.matrix("ghost")

    def test_unregister_unknown_rejected(self, controller):
        with pytest.raises(ValueError):
            controller.unregister_query("ghost")


class TestReadyBits:
    def test_lifecycle(self, controller):
        controller.register_query("q1", binary_join_specs())
        assert controller.pane_ready("S1P0") == NOT_AVAILABLE
        controller.pane_arrived("S1P0")
        assert controller.pane_ready("S1P0") == HDFS_AVAILABLE
        controller.cache_created("S1P0", REDUCE_INPUT, 0, node_id=3)
        assert controller.pane_ready("S1P0") == CACHE_AVAILABLE

    def test_arrival_never_downgrades(self, controller):
        controller.register_query("q1", binary_join_specs())
        controller.cache_created("S1P0", REDUCE_INPUT, 0, node_id=3)
        controller.pane_arrived("S1P0")
        assert controller.pane_ready("S1P0") == CACHE_AVAILABLE


class TestSignatures:
    def test_placement_tracking(self, controller):
        controller.register_query("q1", binary_join_specs())
        controller.cache_created("S1P0", REDUCE_INPUT, 0, node_id=3)
        controller.cache_created("S1P0", REDUCE_INPUT, 1, node_id=5)
        assert controller.placement("S1P0", REDUCE_INPUT, 0) == 3
        assert controller.placement("S1P0", REDUCE_INPUT, 1) == 5
        assert controller.placement("S1P0", REDUCE_INPUT, 2) is None
        assert controller.placement("S1P0", REDUCE_OUTPUT, 0) is None

    def test_paper_table2_fields(self, controller):
        """Signatures carry pid, node(s), type, and a per-query mask."""
        controller.register_query("q1", binary_join_specs())
        sig = controller.cache_created("S1P0", REDUCE_INPUT, 0, node_id=9)
        assert sig.pid == "S1P0"
        assert sig.cache_type == REDUCE_INPUT
        assert sig.nodes == {9}
        assert sig.done_query_mask == {"q1": False}

    def test_mask_bit_preset_for_unrelated_query(self, controller):
        controller.register_query("q1", binary_join_specs())
        controller.register_query(
            "q2", {"S9": WindowSpec(win=100.0, slide=50.0)}
        )
        sig = controller.cache_created("S1P0", REDUCE_INPUT, 0, node_id=1)
        # q2 never reads S1, so its bit starts set (paper Sec. 4.2).
        assert sig.done_query_mask == {"q1": False, "q2": True}

    def test_late_registration_updates_existing_masks(self, controller):
        controller.register_query("q1", binary_join_specs())
        controller.cache_created("S1P0", REDUCE_INPUT, 0, node_id=1)
        controller.register_query("q3", binary_join_specs())
        sig = controller.signature("S1P0", REDUCE_INPUT)
        assert sig.done_query_mask["q3"] is False


class TestExpirationFlow:
    def _complete_window1(self, controller):
        for i in range(3):
            for j in range(3):
                controller.record_reduce_done("q1", {"S1": i, "S2": j})

    def test_purge_notifications_after_expiry(self, controller):
        controller.register_query("q1", binary_join_specs())
        for i in range(2):
            controller.cache_created(f"S1P{i}", REDUCE_INPUT, 0, node_id=i)
            controller.cache_created(f"S2P{i}", REDUCE_INPUT, 0, node_id=i)
        self._complete_window1(controller)
        notifications = controller.advance_window("q1", recurrence=2)
        pids = {n.pid for n in notifications}
        # Panes 0 and 1 of both sources expired (window 2 = panes 2-4).
        assert pids == {"S1P0", "S1P1", "S2P0", "S2P1"}
        for n in notifications:
            assert n.node_ids  # addressed to the hosting nodes

    def test_no_notification_while_pane_live(self, controller):
        controller.register_query("q1", binary_join_specs())
        controller.cache_created("S1P2", REDUCE_INPUT, 0, node_id=1)
        self._complete_window1(controller)
        notifications = controller.advance_window("q1", recurrence=2)
        assert "S1P2" not in {n.pid for n in notifications}

    def test_combination_caches_expire_with_their_panes(self, controller):
        controller.register_query("q1", binary_join_specs())
        controller.cache_created("S1P0xS2P0", REDUCE_OUTPUT, 0, node_id=4)
        self._complete_window1(controller)
        notifications = controller.advance_window("q1", recurrence=2)
        assert "S1P0xS2P0" in {n.pid for n in notifications}

    def test_multi_query_cache_held_until_all_done(self, controller):
        specs = binary_join_specs()
        controller.register_query("q1", specs)
        controller.register_query("q2", specs)
        controller.cache_created("S1P0", REDUCE_INPUT, 0, node_id=1)
        self._complete_window1(controller)
        # Only q1 finished with pane 0: no purge yet.
        notifications = controller.advance_window("q1", recurrence=2)
        assert "S1P0" not in {n.pid for n in notifications}
        # q2 finishes too: purge fires.
        for i in range(3):
            for j in range(3):
                controller.record_reduce_done("q2", {"S1": i, "S2": j})
        notifications = controller.advance_window("q2", recurrence=2)
        assert "S1P0" in {n.pid for n in notifications}

    def test_unregister_releases_caches(self, controller):
        specs = binary_join_specs()
        controller.register_query("q1", specs)
        controller.register_query("q2", specs)
        controller.cache_created("S1P0", REDUCE_INPUT, 0, node_id=1)
        self._complete_window1(controller)
        controller.advance_window("q1", recurrence=2)  # q1 done with pane 0
        notifications = controller.unregister_query("q2")
        assert "S1P0" in {n.pid for n in notifications}


class TestFailureRollback:
    def test_cache_lost_reverts_ready_bit(self, controller):
        controller.register_query("q1", binary_join_specs())
        controller.pane_arrived("S1P0")
        controller.cache_created("S1P0", REDUCE_INPUT, 0, node_id=1)
        controller.cache_lost("S1P0", REDUCE_INPUT, 0)
        assert controller.pane_ready("S1P0") == HDFS_AVAILABLE
        assert controller.placement("S1P0", REDUCE_INPUT, 0) is None

    def test_partial_loss_keeps_cache_available(self, controller):
        controller.register_query("q1", binary_join_specs())
        controller.cache_created("S1P0", REDUCE_INPUT, 0, node_id=1)
        controller.cache_created("S1P0", REDUCE_INPUT, 1, node_id=2)
        controller.cache_lost("S1P0", REDUCE_INPUT, 0)
        assert controller.pane_ready("S1P0") == CACHE_AVAILABLE
        assert controller.placement("S1P0", REDUCE_INPUT, 1) == 2

    def test_node_lost_rolls_back_everything_hosted(self, controller):
        controller.register_query("q1", binary_join_specs())
        controller.cache_created("S1P0", REDUCE_INPUT, 0, node_id=7)
        controller.cache_created("S1P1", REDUCE_OUTPUT, 3, node_id=7)
        controller.cache_created("S2P0", REDUCE_INPUT, 0, node_id=8)
        lost = controller.node_lost(7)
        assert set(lost) == {
            ("S1P0", REDUCE_INPUT, 0),
            ("S1P1", REDUCE_OUTPUT, 3),
        }
        assert controller.placement("S2P0", REDUCE_INPUT, 0) == 8
