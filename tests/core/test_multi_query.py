"""Multi-query support: shared pane planning and cross-query caching.

The Semantic Analyzer "takes as input a sequence of recurring queries
with different window constraints" (Sec. 3.1): a source shared by
several queries is partitioned once, at the GCD of all their window
parameters, and the doneQueryMask machinery (Sec. 4.2) coordinates
cache purging across the queries.
"""

from __future__ import annotations

from collections import Counter as PyCounter

import pytest

from repro.core import RecurringQuery, RedoopRuntime, WindowSpec, merging_finalizer
from repro.core.semantic_analyzer import shared_pane_seconds
from repro.hadoop import Cluster, small_test_config

from ..conftest import wordcount_job
from .test_runtime import RATE, batch, feed


def query_for(job, win, slide, name):
    return RecurringQuery(
        name=name,
        job=job,
        windows={"S1": WindowSpec(win=win, slide=slide)},
        finalize=merging_finalizer(sum),
    )


def make_runtime():
    return RedoopRuntime(Cluster(small_test_config(), seed=3))


class TestSharedPanePlanning:
    def test_shared_pane_is_gcd_over_all(self):
        specs = [
            WindowSpec(win=40.0, slide=10.0),  # own pane 10
            WindowSpec(win=30.0, slide=15.0),  # own pane 15
        ]
        assert shared_pane_seconds(specs) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            shared_pane_seconds([])

    def test_with_pane_override(self):
        spec = WindowSpec(win=40.0, slide=10.0).with_pane(5.0)
        assert spec.pane_seconds == 5.0
        assert spec.panes_per_window == 8
        assert spec.panes_per_slide == 2

    def test_with_pane_must_divide_gcd(self):
        with pytest.raises(ValueError):
            WindowSpec(win=40.0, slide=10.0).with_pane(3.0)

    def test_with_pane_same_size_is_identity(self):
        spec = WindowSpec(win=40.0, slide=10.0)
        assert spec.with_pane(10.0) is spec

    def test_window_math_consistent_under_override(self):
        base = WindowSpec(win=40.0, slide=10.0)
        fine = base.with_pane(5.0)
        # Same window ranges, twice as many panes.
        assert fine.window_bounds(3) == base.window_bounds(3)
        assert len(fine.panes_in_window(3)) == 2 * len(base.panes_in_window(3))


class TestSharedSourceRuntime:
    def test_pane_files_created_once(self):
        runtime = make_runtime()
        job = wordcount_job(num_reducers=4, name="wc")
        runtime.register_query(query_for(job, 40.0, 10.0, "q-short"), {"S1": RATE})
        runtime.register_query(query_for(job, 60.0, 20.0, "q-long"), {"S1": RATE})
        feed(runtime, 60.0)
        pane_files = runtime.cluster.hdfs.glob("/panes/S1/*")
        # Shared pane = GCD(40,10,60,20) = 10 -> 6 pane files for 60 s.
        assert len(pane_files) == 6

    def test_both_queries_correct(self):
        runtime = make_runtime()
        job = wordcount_job(num_reducers=4, name="wc")
        runtime.register_query(query_for(job, 40.0, 10.0, "q-short"), {"S1": RATE})
        runtime.register_query(query_for(job, 60.0, 20.0, "q-long"), {"S1": RATE})
        records = feed(runtime, 80.0)

        def expect(start, end):
            return dict(
                PyCounter(r.value for r in records if start <= r.ts < end)
            )

        r_short = runtime.run_recurrence("q-short", 1)
        assert dict(r_short.output) == expect(0.0, 40.0)
        r_long = runtime.run_recurrence("q-long", 1)
        assert dict(r_long.output) == expect(0.0, 60.0)
        r_short2 = runtime.run_recurrence("q-short", 2)
        assert dict(r_short2.output) == expect(10.0, 50.0)

    def test_same_job_shares_caches(self):
        """The second query's first window reuses the first query's caches."""
        runtime = make_runtime()
        job = wordcount_job(num_reducers=4, name="wc")
        runtime.register_query(query_for(job, 40.0, 10.0, "q-short"), {"S1": RATE})
        runtime.register_query(query_for(job, 40.0, 20.0, "q-other"), {"S1": RATE})
        feed(runtime, 50.0)
        r1 = runtime.run_recurrence("q-short", 1)
        assert r1.counters.get("cache.pane_hits") == 0
        # q-other reads the same panes with the same job: all cached.
        r2 = runtime.run_recurrence("q-other", 1)
        assert r2.counters.get("cache.pane_hits") == len(
            runtime._states["q-other"].spec("S1").panes_in_window(1)
        )
        assert r2.counters.get("map.tasks") == 0

    def test_different_jobs_do_not_share_caches(self):
        runtime = make_runtime()
        job_a = wordcount_job(num_reducers=4, name="wc-a")
        job_b = wordcount_job(num_reducers=4, name="wc-b")
        runtime.register_query(query_for(job_a, 40.0, 10.0, "qa"), {"S1": RATE})
        runtime.register_query(query_for(job_b, 40.0, 10.0, "qb"), {"S1": RATE})
        feed(runtime, 40.0)
        runtime.run_recurrence("qa", 1)
        r = runtime.run_recurrence("qb", 1)
        assert r.counters.get("cache.pane_hits") == 0  # separate namespaces

    def test_cache_survives_until_all_sharing_queries_done(self):
        """doneQueryMask coordination: purge waits for the slower query."""
        runtime = make_runtime()
        job = wordcount_job(num_reducers=4, name="wc")
        # Same job and source, different windows -> shared caches.
        runtime.register_query(query_for(job, 20.0, 10.0, "fast"), {"S1": RATE})
        runtime.register_query(query_for(job, 40.0, 10.0, "slow"), {"S1": RATE})
        feed(runtime, 80.0)
        # Advance the fast query far enough that pane 0 expires for it.
        runtime.run_recurrence("fast", 1)
        runtime.run_recurrence("fast", 2)
        runtime.run_recurrence("fast", 3)
        runtime.run_recurrence("fast", 4)
        # Pane 0 is done and out of fast's window, but slow has not even
        # run yet — the cache must still exist.
        held = {
            e.pid
            for r in runtime.registries().values()
            for e in r.live_entries()
        }
        assert "wc:S1P0" in held
        # slow's first window reuses it.
        r = runtime.run_recurrence("slow", 1)
        assert r.counters.get("cache.pane_hits") == 4


class TestRegistrationGuards:
    def test_job_name_collision_rejected(self):
        runtime = make_runtime()
        job_a = wordcount_job(num_reducers=4, name="wc")
        job_b = wordcount_job(num_reducers=4, name="wc")  # same name, new obj
        runtime.register_query(query_for(job_a, 40.0, 10.0, "qa"), {"S1": RATE})
        with pytest.raises(ValueError):
            runtime.register_query(query_for(job_b, 40.0, 10.0, "qb"), {"S1": RATE})

    def test_refining_pane_after_ingest_rejected(self):
        runtime = make_runtime()
        job = wordcount_job(num_reducers=4, name="wc")
        runtime.register_query(query_for(job, 40.0, 10.0, "qa"), {"S1": RATE})
        feed(runtime, 20.0)  # data has arrived at pane=10
        other_job = wordcount_job(num_reducers=4, name="wc2")
        with pytest.raises(ValueError):
            # pane would need to shrink to GCD(10, 15) = 5
            runtime.register_query(
                query_for(other_job, 30.0, 15.0, "qb"), {"S1": RATE}
            )

    def test_compatible_late_registration_allowed(self):
        runtime = make_runtime()
        job = wordcount_job(num_reducers=4, name="wc")
        runtime.register_query(query_for(job, 40.0, 10.0, "qa"), {"S1": RATE})
        feed(runtime, 20.0)
        other_job = wordcount_job(num_reducers=4, name="wc2")
        # GCD(40,10,20,10) is still 10: no re-partitioning needed.
        runtime.register_query(
            query_for(other_job, 20.0, 10.0, "qb"), {"S1": RATE}
        )
        assert runtime._states["qb"].spec("S1").pane_seconds == 10.0


class TestChurn:
    """register -> run -> deregister -> re-register on a shared source."""

    def _pair(self, runtime):
        job_a = wordcount_job(num_reducers=4, name="wc-a")
        job_b = wordcount_job(num_reducers=4, name="wc-b")
        runtime.register_query(query_for(job_a, 40.0, 10.0, "qa"), {"S1": RATE})
        runtime.register_query(query_for(job_b, 30.0, 15.0, "qb"), {"S1": RATE})

    def test_deregister_pre_ingest_rederives_coarser_pane(self):
        runtime = make_runtime()
        self._pair(runtime)
        assert runtime.shared_pane("S1") == 5.0  # GCD(40,10,30,15)
        runtime.deregister_query("qb")
        # No data has arrived: the source re-plans at qa's own GCD.
        assert runtime.shared_pane("S1") == 10.0
        assert runtime.counters.get("runtime.queries_deregistered") == 1

    def test_deregister_post_ingest_keeps_finer_pane(self):
        runtime = make_runtime()
        self._pair(runtime)
        records = feed(runtime, 20.0)
        runtime.deregister_query("qb")
        # Pane files at 5 s already exist; they stay (still valid for qa).
        assert runtime.shared_pane("S1") == 5.0
        # And qa still computes the right answer on them.
        for i in (2, 3):
            b, more = batch(i, i * 10.0, (i + 1) * 10.0)
            runtime.ingest(b, more)
            records.extend(more)
        result = runtime.run_recurrence("qa", 1)
        expect = dict(PyCounter(r.value for r in records if r.ts < 40.0))
        assert dict(result.output) == expect

    def test_last_reader_reset_allows_different_slide(self):
        runtime = make_runtime()
        job = wordcount_job(num_reducers=4, name="wc")
        runtime.register_query(query_for(job, 40.0, 10.0, "qa"), {"S1": RATE})
        feed(runtime, 20.0)  # pane fixed at 10 s
        runtime.deregister_query("qa")
        with pytest.raises(ValueError):
            runtime.shared_pane("S1")  # no readers left
        # After a full reset a slide that would have *refined* the old
        # pane is acceptable: partitioning starts from scratch.
        job2 = wordcount_job(num_reducers=4, name="wc2")
        runtime.register_query(query_for(job2, 30.0, 15.0, "qb"), {"S1": RATE})
        assert runtime.shared_pane("S1") == 15.0

    def test_surviving_tenant_answers_unchanged_by_churn(self):
        churned = make_runtime()
        self._pair(churned)
        control = make_runtime()
        control.register_query(
            query_for(wordcount_job(num_reducers=4, name="wc-a"), 40.0, 10.0, "qa"),
            {"S1": RATE},
        )
        feed(churned, 60.0)
        feed(control, 60.0)
        churned.run_recurrence("qb", 1)
        churned.deregister_query("qb")
        for k in (1, 2, 3):
            got = churned.run_recurrence("qa", k)
            want = control.run_recurrence("qa", k)
            assert got.output == want.output, f"recurrence {k} diverged"

    def test_deregister_purges_last_reader_caches(self):
        runtime = make_runtime()
        self._pair(runtime)
        feed(runtime, 40.0)
        runtime.run_recurrence("qa", 1)
        held = lambda: {
            e.pid
            for r in runtime.registries().values()
            for e in r.live_entries()
        }
        assert any(pid.startswith("wc-a:") for pid in held())
        runtime.deregister_query("qa")
        # qa's job namespace had no other readers: everything reclaimed.
        assert not any(pid.startswith("wc-a:") for pid in held())


class TestAbortIsolation:
    """One tenant's degraded-window rollback must not flush the others.

    ``abort_pending`` used to clear both whole task lists; in serve
    mode that silently discarded work other queries had already
    enqueued, stalling their recurrences.
    """

    def _scheduler_with_two_tenants(self):
        from repro.core.scheduler import (
            CacheAwareTaskScheduler,
            MapTaskRequest,
            ReduceTaskRequest,
        )
        from repro.hadoop import Cluster, Counters, small_test_config

        sched = CacheAwareTaskScheduler(
            Cluster(small_test_config(), seed=5), counters=Counters()
        )
        for query in ("qa", "qb"):
            sched.enqueue_map(
                MapTaskRequest(query=query, pid="S1P0", input_bytes=100)
            )
            sched.enqueue_reduce(
                ReduceTaskRequest(
                    query=query,
                    panes=(("S1", 0),),
                    partition=0,
                    input_bytes=100,
                )
            )
        return sched

    def test_abort_pending_filters_by_query(self):
        sched = self._scheduler_with_two_tenants()
        assert sched.abort_pending(query="qa") == 2
        assert [r.query for r in sched.map_task_list] == ["qb"]
        assert [r.query for r in sched.reduce_task_list] == ["qb"]
        assert sched.counters.get("sched.tasks_aborted") == 2

    def test_abort_pending_without_query_flushes_all(self):
        sched = self._scheduler_with_two_tenants()
        assert sched.abort_pending() == 4
        assert not sched.map_task_list
        assert not sched.reduce_task_list

    def test_abort_pending_noop_for_unknown_query(self):
        sched = self._scheduler_with_two_tenants()
        assert sched.abort_pending(query="ghost") == 0
        assert len(sched.map_task_list) == 2
        assert len(sched.reduce_task_list) == 2


class TestPurgeCycleChurn:
    """Registry purge cycles follow query churn (no frozen default).

    The default cycle is the minimum registered slide, but it used to
    be copied into each registry at first touch and never updated —
    after churn, long-lived registries kept sweeping on a departed
    query's cadence.
    """

    def _two_tenant_runtime(self):
        runtime = make_runtime()
        runtime.register_query(
            query_for(wordcount_job(num_reducers=4, name="wc-a"), 40.0, 10.0, "qa"),
            {"S1": RATE},
        )
        runtime.register_query(
            query_for(wordcount_job(num_reducers=4, name="wc-b"), 60.0, 20.0, "qb"),
            {"S1": RATE},
        )
        feed(runtime, 60.0)
        runtime.run_recurrence("qa", 1)
        assert runtime.registries(), "expected registries to exist"
        return runtime

    def test_deregister_rederives_cycle_on_existing_registries(self):
        runtime = self._two_tenant_runtime()
        assert all(
            r.purge_cycle == 10.0 for r in runtime.registries().values()
        )
        runtime.deregister_query("qa")
        assert all(
            r.purge_cycle == 20.0 for r in runtime.registries().values()
        )

    def test_late_registration_rederives_cycle(self):
        runtime = make_runtime()
        runtime.register_query(
            query_for(wordcount_job(num_reducers=4, name="wc-b"), 60.0, 20.0, "qb"),
            {"S1": RATE},
        )
        feed(runtime, 60.0)
        runtime.run_recurrence("qb", 1)
        assert all(
            r.purge_cycle == 20.0 for r in runtime.registries().values()
        )
        # A second tenant with a faster slide tightens every registry.
        # (Slide 20 keeps the shared pane at 20 s; win 40 = 2 panes.)
        runtime.deregister_query("qb")
        runtime.register_query(
            query_for(wordcount_job(num_reducers=4, name="wc-c"), 40.0, 20.0, "qc"),
            {"S1": RATE},
        )
        assert all(
            r.purge_cycle == 20.0 for r in runtime.registries().values()
        )

    def test_explicit_cycle_override_stays_fixed(self):
        runtime = RedoopRuntime(
            Cluster(small_test_config(), seed=3), purge_cycle=99.0
        )
        runtime.register_query(
            query_for(wordcount_job(num_reducers=4, name="wc-a"), 40.0, 10.0, "qa"),
            {"S1": RATE},
        )
        feed(runtime, 60.0)
        runtime.run_recurrence("qa", 1)
        runtime.deregister_query("qa")
        assert all(
            r.purge_cycle == 99.0 for r in runtime.registries().values()
        )
