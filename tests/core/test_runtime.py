"""Unit/behavioural tests for the Redoop runtime."""

from __future__ import annotations

from collections import Counter as PyCounter

import pytest

from repro.core import (
    REDUCE_INPUT,
    REDUCE_OUTPUT,
    RecurringQuery,
    RedoopRuntime,
    WindowSpec,
    merging_finalizer,
)
from repro.hadoop import BatchFile, Cluster, Record, small_test_config

from ..conftest import wordcount_job


WIN, SLIDE = 40.0, 10.0  # pane = 10, 4 panes per window


def make_query(num_reducers=4, name="wc") -> RecurringQuery:
    return RecurringQuery(
        name=name,
        job=wordcount_job(num_reducers=num_reducers, name=name),
        windows={"S1": WindowSpec(win=WIN, slide=SLIDE)},
        finalize=merging_finalizer(sum),
    )


#: High enough that Algorithm 1 picks the oversize case (pane bytes >=
#: the 4 MB test block size), so pane files appear as panes seal.
RATE = 500_000.0


def make_runtime(**kwargs) -> RedoopRuntime:
    cluster = Cluster(small_test_config(), seed=3)
    runtime = RedoopRuntime(cluster, **kwargs)
    runtime.register_query(make_query(), {"S1": RATE})
    return runtime


def batch(i: int, t0: float, t1: float, n: int = 20, key_space: int = 5):
    import random

    rng = random.Random(i)
    dt = (t1 - t0) / n
    records = [
        Record(
            ts=t0 + j * dt,
            value=f"w{rng.randrange(key_space)}",
            size=100,
        )
        for j in range(n)
    ]
    return (
        BatchFile(path=f"/b/S1/{i}", source="S1", t_start=t0, t_end=t1),
        records,
    )


def feed(runtime: RedoopRuntime, upto: float, batch_seconds: float = 10.0):
    """Ingest consecutive batches covering [0, upto)."""
    fed = []
    i = 0
    t = 0.0
    while t < upto - 1e-9:
        b, records = batch(i, t, t + batch_seconds)
        runtime.ingest(b, records)
        fed.extend(records)
        i += 1
        t += batch_seconds
    return fed


class TestRegistration:
    def test_duplicate_query_rejected(self):
        runtime = make_runtime()
        with pytest.raises(ValueError):
            runtime.register_query(make_query(), {"S1": RATE})

    def test_missing_rates_rejected(self):
        cluster = Cluster(small_test_config(), seed=3)
        runtime = RedoopRuntime(cluster)
        with pytest.raises(ValueError):
            runtime.register_query(make_query(), {})

    def test_unknown_query_rejected(self):
        runtime = make_runtime()
        with pytest.raises(ValueError):
            runtime.run_recurrence("ghost")

    def test_queries_listed(self):
        assert make_runtime().queries() == ["wc"]


class TestIngest:
    def test_unrouted_source_rejected(self):
        runtime = make_runtime()
        b, records = batch(0, 0.0, 10.0)
        bad = BatchFile(path="/b/x", source="S9", t_start=0.0, t_end=10.0)
        with pytest.raises(ValueError):
            runtime.ingest(bad, [])

    def test_panes_registered_on_arrival(self):
        runtime = make_runtime()
        feed(runtime, 20.0)
        assert runtime.controller.pane_ready("wc:S1P0") >= 1
        assert runtime.controller.pane_ready("wc:S1P1") >= 1


class TestCorrectness:
    def test_window_output_matches_ground_truth(self):
        runtime = make_runtime()
        records = feed(runtime, 70.0)
        for k in (1, 2, 3):
            result = runtime.run_recurrence("wc", k)
            start, end = result.window_bounds["S1"]
            expected = PyCounter(
                r.value for r in records if start <= r.ts < end
            )
            assert dict(result.output) == dict(expected)

    def test_missing_data_rejected(self):
        runtime = make_runtime()
        feed(runtime, 30.0)  # window 1 needs data through 40
        with pytest.raises(RuntimeError):
            runtime.run_recurrence("wc", 1)

    def test_out_of_order_recurrence_rejected(self):
        runtime = make_runtime()
        feed(runtime, 60.0)
        runtime.run_recurrence("wc", 1)
        with pytest.raises(ValueError):
            runtime.run_recurrence("wc", 3)

    def test_output_written_to_hdfs(self):
        runtime = make_runtime()
        feed(runtime, 40.0)
        runtime.run_recurrence("wc", 1)
        assert runtime.cluster.hdfs.exists("/out/wc/w0001")

    def test_deterministic(self):
        def run():
            runtime = make_runtime()
            feed(runtime, 60.0)
            results = [runtime.run_recurrence("wc") for _ in range(3)]
            return [(r.finish_time, tuple(sorted(r.output))) for r in results]

        assert run() == run()


class TestCachingBehaviour:
    def test_overlapping_panes_reused(self):
        runtime = make_runtime()
        feed(runtime, 60.0)
        r1 = runtime.run_recurrence("wc", 1)
        r2 = runtime.run_recurrence("wc", 2)
        # Window 2 shares 3 of its 4 panes with window 1.
        assert r2.counters.get("cache.pane_hits") == 3
        assert r2.counters.get("map.tasks") >= 1
        assert r2.counters.get("map.input_bytes") < r1.counters.get(
            "map.input_bytes"
        )

    def test_caches_created_on_nodes(self):
        runtime = make_runtime()
        feed(runtime, 40.0)
        runtime.run_recurrence("wc", 1)
        registries = runtime.registries()
        total = sum(len(r.live_entries()) for r in registries.values())
        # 4 panes x 4 partitions x 2 cache types.
        assert total == 32

    def test_cache_types_present(self):
        runtime = make_runtime()
        feed(runtime, 40.0)
        runtime.run_recurrence("wc", 1)
        types = {
            e.cache_type
            for r in runtime.registries().values()
            for e in r.live_entries()
        }
        assert types == {REDUCE_INPUT, REDUCE_OUTPUT}

    def test_no_caching_mode_reprocesses_everything(self):
        def total_mapped(enable):
            cluster = Cluster(small_test_config(), seed=3)
            runtime = RedoopRuntime(cluster, enable_caching=enable)
            runtime.register_query(make_query(), {"S1": RATE})
            feed(runtime, 60.0)
            results = [runtime.run_recurrence("wc") for _ in range(3)]
            return (
                sum(r.counters.get("map.input_bytes") for r in results),
                [dict(r.output) for r in results],
            )

        cached_bytes, cached_out = total_mapped(True)
        uncached_bytes, uncached_out = total_mapped(False)
        assert uncached_out == cached_out  # same answers
        assert uncached_bytes > cached_bytes  # more I/O without caching

    def test_no_caching_leaves_no_cache_entries(self):
        cluster = Cluster(small_test_config(), seed=3)
        runtime = RedoopRuntime(cluster, enable_caching=False)
        runtime.register_query(make_query(), {"S1": RATE})
        feed(runtime, 40.0)
        runtime.run_recurrence("wc", 1)
        assert all(
            not r.live_entries() for r in runtime.registries().values()
        )

    def test_output_cache_disabled_rebuilds_from_input_cache(self):
        cluster = Cluster(small_test_config(), seed=3)
        runtime = RedoopRuntime(cluster, enable_output_cache=False)
        runtime.register_query(make_query(), {"S1": RATE})
        records = feed(runtime, 50.0)
        runtime.run_recurrence("wc", 1)
        r2 = runtime.run_recurrence("wc", 2)
        assert r2.counters.get("cache.rin_rebuilds") > 0
        start, end = r2.window_bounds["S1"]
        expected = PyCounter(r.value for r in records if start <= r.ts < end)
        assert dict(r2.output) == dict(expected)

    def test_expired_caches_purged_eventually(self):
        runtime = make_runtime()
        feed(runtime, 100.0)
        for k in range(1, 7):
            runtime.run_recurrence("wc", k)
        # Pane 0 left the window after recurrence 2 and must be gone.
        held = [
            e.pid
            for r in runtime.registries().values()
            for e in r.live_entries()
        ]
        assert "wc:S1P0" not in held
        assert runtime.counters.get("cache.entries_purged") > 0


class TestResponseTimes:
    def test_subsequent_windows_faster(self):
        runtime = make_runtime()
        feed(runtime, 70.0)
        r1 = runtime.run_recurrence("wc", 1)
        r2 = runtime.run_recurrence("wc", 2)
        r3 = runtime.run_recurrence("wc", 3)
        assert r2.response_time < r1.response_time
        assert r3.response_time < r1.response_time

    def test_phase_times_non_negative(self):
        runtime = make_runtime()
        feed(runtime, 40.0)
        r = runtime.run_recurrence("wc", 1)
        assert r.phase_times.map >= 0
        assert r.phase_times.shuffle >= 0
        assert r.phase_times.reduce >= 0

    def test_clock_advances(self):
        runtime = make_runtime()
        feed(runtime, 40.0)
        r = runtime.run_recurrence("wc", 1)
        assert runtime.cluster.clock.now == r.finish_time
        assert r.due_time == 40.0
        assert r.start_time >= r.due_time


class TestJoinRuntime:
    def _join_query(self, num_reducers=4):
        from repro.hadoop import MapReduceJob

        def mapper(record):
            yield record.value["k"], (record.value["side"], record.value["v"])

        def reducer(key, values):
            left = [v for s, v in values if s == "L"]
            right = [v for s, v in values if s == "R"]
            for a in left:
                for b in right:
                    yield key, (a, b)

        job = MapReduceJob(
            name="join",
            mapper=mapper,
            reducer=reducer,
            num_reducers=num_reducers,
        )
        spec = WindowSpec(win=20.0, slide=10.0)
        return RecurringQuery(
            name="join", job=job, windows={"L": spec, "R": spec}
        )

    def _join_batch(self, source, side, i, t0, t1, n=6):
        records = [
            Record(
                ts=t0 + j * (t1 - t0) / n,
                value={"k": j % 3, "side": side, "v": f"{side}{i}.{j}"},
                size=100,
            )
            for j in range(n)
        ]
        return (
            BatchFile(
                path=f"/b/{source}/{i}", source=source, t_start=t0, t_end=t1
            ),
            records,
        )

    def _setup(self, **kwargs):
        cluster = Cluster(small_test_config(), seed=3)
        runtime = RedoopRuntime(cluster, **kwargs)
        query = self._join_query()
        runtime.register_query(query, {"L": RATE, "R": RATE})
        all_records = {"L": [], "R": []}
        for i, t0 in enumerate((0.0, 10.0, 20.0, 30.0)):
            for source, side in (("L", "L"), ("R", "R")):
                b, records = self._join_batch(source, side, i, t0, t0 + 10.0)
                runtime.ingest(b, records)
                all_records[source].extend(records)
        return runtime, all_records

    def _expected(self, all_records, start, end):
        out = []
        by_key = {}
        for source in ("L", "R"):
            for r in all_records[source]:
                if start <= r.ts < end:
                    by_key.setdefault(r.value["k"], {"L": [], "R": []})[
                        source
                    ].append(r.value["v"])
        for k, sides in by_key.items():
            for a in sides["L"]:
                for b in sides["R"]:
                    out.append((k, (a, b)))
        return sorted(map(repr, out))

    def test_join_window_output_correct(self):
        runtime, all_records = self._setup()
        for k in (1, 2, 3):
            result = runtime.run_recurrence("join", k)
            start, end = result.window_bounds["L"]
            assert sorted(map(repr, result.output)) == self._expected(
                all_records, start, end
            )

    def test_join_pair_outputs_cached(self):
        runtime, _ = self._setup()
        r1 = runtime.run_recurrence("join", 1)
        r2 = runtime.run_recurrence("join", 2)
        # Window 2 recomputes only combinations involving the new panes.
        assert r2.counters.get("join.combos_computed") < r1.counters.get(
            "join.combos_computed"
        ) + 4  # 2x2 window: 3 new pairs vs 4 initially
        assert r2.counters.get("cache.rout_hits") > 0

    def test_join_status_matrix_marked(self):
        runtime, _ = self._setup()
        runtime.run_recurrence("join", 1)
        matrix = runtime.controller.matrix("join")
        assert matrix.is_done({"join:L": 0, "join:R": 1})
        assert matrix.is_done({"join:L": 1, "join:R": 0})
