"""End-to-end tests: the task lists are the only path to execution.

The acceptance bar for the scheduler refactor (Sec. 4.3, Algorithm 2):
in a two-query run, every map and reduce task the runtime executes must
be the *object* popped from the corresponding task list — no
enqueue-then-discard, no side-channel selection on a request that was
never dequeued. The scheduling trace records pops, Eq. 4 selections,
and executions with the request objects themselves, so identity (not
mere equality) is assertable.
"""

from __future__ import annotations


from repro.core import RecurringQuery, RedoopRuntime, WindowSpec, merging_finalizer
from repro.hadoop import Cluster, small_test_config
from repro.hadoop.node import MAP_SLOT, REDUCE_SLOT

from ..conftest import wordcount_job
from .test_runtime import RATE, WIN, SLIDE, batch, feed, make_query


def make_two_query_runtime() -> RedoopRuntime:
    """Two queries sharing source S1, registered before ingest."""
    cluster = Cluster(small_test_config(), seed=3)
    runtime = RedoopRuntime(cluster)
    runtime.register_query(make_query(name="wc"), {"S1": RATE})
    second = RecurringQuery(
        name="wc2",
        job=wordcount_job(num_reducers=3, name="wc2"),
        windows={"S1": WindowSpec(win=WIN, slide=SLIDE)},
        finalize=merging_finalizer(sum),
    )
    runtime.register_query(second, {"S1": RATE})
    return runtime


class TestExecutedIsPopped:
    def test_every_executed_task_is_the_popped_request(self):
        runtime = make_two_query_runtime()
        feed(runtime, 70.0)
        results = runtime.run_due_recurrences(70.0)
        assert len(results) >= 2  # both queries ran at least once
        assert all(r.output for r in results)

        trace = runtime.sched_trace
        for kind in (MAP_SLOT, REDUCE_SLOT):
            pops = trace.pops(kind)
            execs = trace.executions(kind)
            assert execs, f"no {kind} executions were traced"
            # Every executed request object IS a popped one, in the
            # exact order the task list dictated.
            assert len(pops) == len(execs)
            for pop, ex in zip(pops, execs):
                assert ex.request is pop.request

    def test_both_queries_flow_through_the_lists(self):
        runtime = make_two_query_runtime()
        feed(runtime, 50.0)
        runtime.run_recurrence("wc")
        runtime.run_recurrence("wc2")
        queries = {d.request.query for d in runtime.sched_trace.pops()}
        assert queries == {"wc", "wc2"}

    def test_task_lists_drain_empty_after_a_recurrence(self):
        runtime = make_two_query_runtime()
        feed(runtime, 50.0)
        runtime.run_recurrence("wc")
        assert not runtime.scheduler.map_task_list
        assert not runtime.scheduler.reduce_task_list

    def test_selects_carry_eq4_evidence(self):
        runtime = make_two_query_runtime()
        feed(runtime, 50.0)
        runtime.run_recurrence("wc")
        selects = runtime.sched_trace.selects()
        assert selects
        for d in selects:
            assert d.node_id is not None
            assert d.load is not None
            assert d.c_task is not None


class TestMapEligibility:
    def test_arrived_panes_become_map_eligible(self):
        runtime = make_two_query_runtime()
        feed(runtime, 20.0)
        eligible = runtime.map_eligible()
        assert "wc:S1P0" in eligible
        assert "wc2:S1P0" in eligible

    def test_processing_retires_eligibility(self):
        runtime = make_two_query_runtime()
        feed(runtime, 50.0)
        runtime.run_recurrence("wc")
        # Every wc pane in the first window now has caches.
        eligible = runtime.map_eligible()
        assert not any(
            pid.startswith("wc:") and pid in eligible
            for pid in (f"wc:S1P{i}" for i in range(4))
        )

    def test_counter_tracks_transitions(self):
        runtime = make_two_query_runtime()
        feed(runtime, 20.0)
        assert runtime.counters.get("sched.map_eligible_transitions") > 0


class TestStickyReduceTarget:
    def test_partition_nodes_reused_across_recurrences(self):
        runtime = make_two_query_runtime()
        feed(runtime, 50.0)
        runtime.run_recurrence("wc")
        b, records = batch(5, 50.0, 60.0)
        runtime.ingest(b, records)
        runtime.run_recurrence("wc")
        assert runtime.counters.get("sched.sticky_reuses") > 0

    def test_no_phantom_requests_in_trace(self):
        """Every traced reduce request names its panes and partition —
        the phantom ``ReduceTaskRequest(panes=(), input_bytes=0)`` that
        used to drive node selection is gone."""
        runtime = make_two_query_runtime()
        feed(runtime, 50.0)
        runtime.run_recurrence("wc")
        for d in runtime.sched_trace.decisions(kind=REDUCE_SLOT):
            assert d.request.panes, f"phantom request traced: {d.request!r}"
