"""Unit tests for the Execution Profiler (Holt smoothing, Eqs. 1-3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profiler import ExecutionProfiler


class TestValidation:
    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            ExecutionProfiler(alpha=0.0)
        with pytest.raises(ValueError):
            ExecutionProfiler(alpha=1.5)

    def test_beta_bounds(self):
        with pytest.raises(ValueError):
            ExecutionProfiler(beta=-0.1)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ExecutionProfiler().observe(-1.0)


class TestHoltEquations:
    def test_first_observation_initialises_level(self):
        p = ExecutionProfiler()
        p.observe(10.0)
        assert p.level == 10.0
        assert p.trend == 0.0

    def test_equations_match_manual_computation(self):
        alpha, beta = 0.5, 0.3
        p = ExecutionProfiler(alpha=alpha, beta=beta)
        p.observe(10.0)
        p.observe(20.0)
        # L_2 = a*X + (1-a)*(L_1 + T_1) = 0.5*20 + 0.5*10 = 15
        assert p.level == pytest.approx(15.0)
        # T_2 = b*(L_2 - L_1) + (1-b)*T_1 = 0.3*5 = 1.5
        assert p.trend == pytest.approx(1.5)
        # Forecast (Eq. 3): X̂_{2+k} = L_2 + k*T_2
        assert p.forecast(1) == pytest.approx(16.5)
        assert p.forecast(2) == pytest.approx(18.0)

    def test_constant_series_converges_to_value(self):
        p = ExecutionProfiler()
        for _ in range(50):
            p.observe(42.0)
        assert p.forecast(1) == pytest.approx(42.0, rel=1e-6)
        assert abs(p.trend) < 1e-6

    def test_rising_series_positive_trend(self):
        p = ExecutionProfiler()
        for x in range(1, 20):
            p.observe(float(x))
        assert p.trend > 0
        assert p.forecast(1) > p.level

    def test_forecast_floored_at_zero(self):
        p = ExecutionProfiler(alpha=1.0, beta=1.0)
        p.observe(100.0)
        p.observe(1.0)
        assert p.forecast(10) == 0.0

    def test_forecast_before_observations_is_none(self):
        assert ExecutionProfiler().forecast(1) is None

    def test_forecast_k_validation(self):
        p = ExecutionProfiler()
        p.observe(1.0)
        with pytest.raises(ValueError):
            p.forecast(0)

    @given(st.lists(st.floats(0.1, 1e4), min_size=1, max_size=40))
    @settings(max_examples=40)
    def test_level_stays_within_data_envelope_property(self, xs):
        """Smoothing never escapes far beyond the observed range."""
        p = ExecutionProfiler(alpha=0.5, beta=0.3)
        for x in xs:
            p.observe(x)
        lo, hi = min(xs), max(xs)
        margin = (hi - lo) + 1.0
        assert lo - margin <= p.level <= hi + margin


class TestScaleFactorAndTriggers:
    def test_scale_factor_without_data_is_one(self):
        assert ExecutionProfiler().scale_factor(100.0) == 1.0

    def test_scale_factor(self):
        p = ExecutionProfiler()
        p.observe(200.0)
        assert p.scale_factor(100.0) == pytest.approx(2.0)

    def test_scale_factor_slide_validation(self):
        with pytest.raises(ValueError):
            ExecutionProfiler().scale_factor(0.0)

    def test_overload_predicted(self):
        p = ExecutionProfiler()
        p.observe(150.0)
        assert p.overload_predicted(100.0)
        assert not p.overload_predicted(200.0)

    def test_change_factor_needs_two_observations(self):
        p = ExecutionProfiler()
        assert p.change_factor() == 1.0
        p.observe(10.0)
        assert p.change_factor() == 1.0

    def test_change_factor_detects_rise(self):
        p = ExecutionProfiler()
        p.observe(10.0)
        p.observe(10.0)
        p.observe(30.0)  # spike
        # The forecast absorbed the spike; the denominator is the
        # pre-spike observation, so the factor reads well above 1.
        assert p.change_factor() > 1.2

    def test_change_factor_step_load_regression(self):
        """A 1,1,1,10 step must read as a spike, not as load falling.

        The old implementation divided forecast(1) by the newest
        observation — the spike itself — yielding ~0.69 for this
        series with alpha=0.5, beta=0.3 (i.e. "load dropping"). The
        fixed factor divides by the observation *before* the spike.
        """
        p = ExecutionProfiler(alpha=0.5, beta=0.3)
        for x in (1.0, 1.0, 1.0, 10.0):
            p.observe(x)
        # L_4 = 0.5*10 + 0.5*1 = 5.5; T_4 = 0.3*4.5 = 1.35; fc = 6.85
        assert p.forecast(1) == pytest.approx(6.85)
        assert p.change_factor() == pytest.approx(6.85)
        assert p.fluctuation_detected()

    def test_change_factor_steady_series_stays_near_one(self):
        p = ExecutionProfiler()
        for _ in range(10):
            p.observe(10.0)
        assert p.change_factor() == pytest.approx(1.0)

    def test_volatility_steady(self):
        p = ExecutionProfiler()
        for _ in range(5):
            p.observe(10.0)
        assert p.volatility() == pytest.approx(1.0)

    def test_volatility_spiky(self):
        p = ExecutionProfiler()
        for x in (10.0, 20.0, 10.0):
            p.observe(x)
        assert p.volatility() == pytest.approx(2.0)

    def test_volatility_k_validation(self):
        with pytest.raises(ValueError):
            ExecutionProfiler().volatility(1)

    def test_input_volatility_uses_bytes(self):
        p = ExecutionProfiler()
        p.observe(5.0, input_bytes=100.0)
        p.observe(5.0, input_bytes=200.0)
        assert p.input_volatility() == pytest.approx(2.0)

    def test_input_volatility_skips_zero_volumes(self):
        p = ExecutionProfiler()
        p.observe(5.0, input_bytes=0.0)
        p.observe(5.0, input_bytes=100.0)
        assert p.input_volatility() == 1.0

    def test_fluctuation_detected_on_spike(self):
        p = ExecutionProfiler()
        p.observe(10.0, input_bytes=100.0)
        p.observe(10.0, input_bytes=200.0)
        assert p.fluctuation_detected()

    def test_no_fluctuation_when_steady(self):
        p = ExecutionProfiler()
        for _ in range(5):
            p.observe(10.0, input_bytes=100.0)
        assert not p.fluctuation_detected()


class TestObservations:
    def test_observation_log(self):
        p = ExecutionProfiler()
        p.observe(1.0, input_bytes=10.0)
        p.observe(2.0, input_bytes=20.0)
        obs = p.observations
        assert [o.recurrence for o in obs] == [1, 2]
        assert obs[1].execution_time == 2.0
        assert obs[1].input_bytes == 20.0
        assert p.num_observations == 2
