"""Unit tests for the Cache Status Matrix (paper Sec. 4.2, Fig. 4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.panes import WindowSpec
from repro.core.status_matrix import CacheStatusMatrix


def fig4_matrix() -> CacheStatusMatrix:
    """The paper's Fig. 4 setup: binary join, win=30min, slide=20min."""
    spec = WindowSpec(win=1800.0, slide=1200.0)  # pane = 10 min
    return CacheStatusMatrix({"S1": spec, "S2": spec})


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CacheStatusMatrix({})

    def test_mismatched_slides_rejected(self):
        with pytest.raises(ValueError):
            CacheStatusMatrix(
                {
                    "A": WindowSpec(win=100.0, slide=50.0),
                    "B": WindowSpec(win=100.0, slide=25.0),
                }
            )

    def test_sources_sorted(self):
        m = fig4_matrix()
        assert m.sources == ("S1", "S2")


class TestMarkAndQuery:
    def test_mark_done_roundtrip(self):
        m = fig4_matrix()
        assert not m.is_done({"S1": 3, "S2": 2})
        m.mark_done({"S1": 3, "S2": 2})
        assert m.is_done({"S1": 3, "S2": 2})

    def test_wrong_sources_rejected(self):
        m = fig4_matrix()
        with pytest.raises(ValueError):
            m.mark_done({"S1": 0})
        with pytest.raises(ValueError):
            m.is_done({"S1": 0, "S3": 0})

    def test_negative_index_rejected(self):
        m = fig4_matrix()
        with pytest.raises(ValueError):
            m.mark_done({"S1": -1, "S2": 0})


class TestRequiredCells:
    def test_single_source_required_cells(self):
        spec = WindowSpec(win=30.0, slide=10.0)
        m = CacheStatusMatrix({"S": spec})
        assert m.required_cells("S", 4) == {(4,)}

    def test_paper_lifespan_example(self):
        """Sec. 4.2: S1P1's partners range S2P1..S2P3... in our indexing.

        With win=3 panes, slide=2 panes: window 1 covers panes 0-2 and
        window 2 covers panes 2-4. Pane S1P1 appears only in window 1,
        so it must meet S2 panes 0..2.
        """
        m = fig4_matrix()
        cells = m.required_cells("S1", 1)
        assert cells == {(1, 0), (1, 1), (1, 2)}

    def test_pane_spanning_two_windows(self):
        m = fig4_matrix()
        cells = m.required_cells("S1", 2)  # windows 1 and 2
        assert cells == {(2, j) for j in range(5)}  # S2 panes 0..4

    def test_unknown_source_rejected(self):
        with pytest.raises(ValueError):
            fig4_matrix().required_cells("S9", 0)


class TestExpiration:
    def test_pane_in_current_window_never_expires(self):
        m = fig4_matrix()
        # Window 2 covers panes 2-4; pane 2 is current even if done.
        for j in range(5):
            m.mark_done({"S1": 2, "S2": j})
        assert not m.pane_expired("S1", 2, current_recurrence=2)

    def test_pane_expires_after_lifespan_done(self):
        m = fig4_matrix()
        for j in range(3):
            m.mark_done({"S1": 1, "S2": j})
        # Window 2's panes are 2-4, so pane 1 has left the window.
        assert m.pane_expired("S1", 1, current_recurrence=2)

    def test_pane_with_unfinished_partner_not_expired(self):
        m = fig4_matrix()
        m.mark_done({"S1": 1, "S2": 0})
        m.mark_done({"S1": 1, "S2": 1})
        # (1, 2) still missing.
        assert not m.pane_expired("S1", 1, current_recurrence=2)

    def test_expired_panes_lists_per_source(self):
        m = fig4_matrix()
        for i in range(3):
            for j in range(3):
                m.mark_done({"S1": i, "S2": j})
        expired = m.expired_panes(current_recurrence=2)
        # Panes 0 and 1 of both sources have left window 2 (panes 2-4)
        # and completed their lifespans.
        assert expired == {"S1": [0, 1], "S2": [0, 1]}


class TestShift:
    def test_shift_removes_leading_expired_run(self):
        m = fig4_matrix()
        for i in range(3):
            for j in range(3):
                m.mark_done({"S1": i, "S2": j})
        purged = m.shift(current_recurrence=2)
        assert purged == {"S1": [0, 1], "S2": [0, 1]}
        assert m.base("S1") == 2
        assert m.base("S2") == 2

    def test_purged_cells_still_read_done(self):
        """Fig. 4(c) semantics: purged panes are implicitly done."""
        m = fig4_matrix()
        for i in range(3):
            for j in range(3):
                m.mark_done({"S1": i, "S2": j})
        m.shift(current_recurrence=2)
        assert m.is_done({"S1": 0, "S2": 0})
        assert m.pane_expired("S1", 0, current_recurrence=2)

    def test_shift_stops_at_live_pane(self):
        """A done-but-unexpired pane blocks the shift (Fig. 4's P5)."""
        m = fig4_matrix()
        # Complete pane 0 of S1 only: S2 panes 0..2.
        for j in range(3):
            m.mark_done({"S1": 0, "S2": j})
        # Pane 1 incomplete -> shift removes only pane 0 on S1, and
        # nothing on S2 (S2P0 requires (0..2, 0) which are incomplete).
        purged = m.shift(current_recurrence=2)
        assert purged == {"S1": [0]}
        assert m.base("S1") == 1
        assert m.base("S2") == 0

    def test_mark_done_below_base_is_noop(self):
        m = fig4_matrix()
        for i in range(3):
            for j in range(3):
                m.mark_done({"S1": i, "S2": j})
        m.shift(current_recurrence=2)
        cells_before = m.num_tracked_cells()
        m.mark_done({"S1": 0, "S2": 0})  # below base
        assert m.num_tracked_cells() == cells_before

    def test_shift_prunes_stored_cells(self):
        m = fig4_matrix()
        for i in range(3):
            for j in range(3):
                m.mark_done({"S1": i, "S2": j})
        before = m.num_tracked_cells()
        m.shift(current_recurrence=2)
        assert m.num_tracked_cells() < before

    @given(
        win_panes=st.integers(2, 6),
        slide_panes=st.integers(1, 6),
        recurrences=st.integers(2, 8),
    )
    @settings(max_examples=30, deadline=None)
    def test_shift_never_purges_live_panes_property(
        self, win_panes, slide_panes, recurrences
    ):
        """After any shift, no purged pane was still needed."""
        slide_panes = min(slide_panes, win_panes)
        pane = 60.0
        spec = WindowSpec(win=win_panes * pane, slide=slide_panes * pane)
        m = CacheStatusMatrix({"A": spec, "B": spec})
        for k in range(1, recurrences + 1):
            panes = spec.panes_in_window(k)
            for i in panes:
                for j in panes:
                    m.mark_done({"A": i, "B": j})
            purged = m.shift(current_recurrence=k)
            current = set(spec.panes_in_window(k))
            for _src, indices in purged.items():
                assert not (set(indices) & current)
