"""Unit tests for the Local Cache Registry (paper Sec. 4.1, Table 1)."""

from __future__ import annotations

import pytest

from repro.core.cache_registry import (
    REDUCE_INPUT,
    REDUCE_OUTPUT,
    LocalCacheRegistry,
    cache_file_name,
)
from repro.hadoop.node import TaskNode


@pytest.fixture
def node() -> TaskNode:
    return TaskNode(0, map_slots=2, reduce_slots=1)


@pytest.fixture
def registry(node) -> LocalCacheRegistry:
    return LocalCacheRegistry(node, purge_cycle=100.0)


class TestValidation:
    def test_purge_cycle_positive(self, node):
        with pytest.raises(ValueError):
            LocalCacheRegistry(node, purge_cycle=0.0)

    def test_capacity_positive_when_set(self, node):
        with pytest.raises(ValueError):
            LocalCacheRegistry(node, capacity_bytes=0)

    def test_unknown_cache_type_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.add_entry("S1P1", 9, 0, 10, None)

    def test_negative_partition_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.add_entry("S1P1", REDUCE_INPUT, -1, 10, None)


class TestPaperTable1Example:
    def test_registry_rows(self, registry):
        """Table 1: S1P3 expired reduce-output; S2P4 live reduce-input."""
        registry.add_entry("S1P3", REDUCE_OUTPUT, 0, 10, ["x"])
        registry.add_entry("S2P4", REDUCE_INPUT, 0, 10, ["y"])
        registry.mark_expired(["S1P3"])
        rows = {(e.pid, e.cache_type, e.expiration) for e in registry.entries()}
        assert rows == {
            ("S1P3", REDUCE_OUTPUT, True),
            ("S2P4", REDUCE_INPUT, False),
        }


class TestAddAndRead:
    def test_roundtrip(self, registry):
        registry.add_entry("S1P1", REDUCE_INPUT, 3, 128, [("k", 1)])
        payload, size = registry.read("S1P1", REDUCE_INPUT, 3)
        assert payload == [("k", 1)]
        assert size == 128

    def test_has_distinguishes_type_and_partition(self, registry):
        registry.add_entry("S1P1", REDUCE_INPUT, 0, 10, None)
        assert registry.has("S1P1", REDUCE_INPUT, 0)
        assert not registry.has("S1P1", REDUCE_OUTPUT, 0)
        assert not registry.has("S1P1", REDUCE_INPUT, 1)

    def test_read_missing_raises(self, registry):
        with pytest.raises(KeyError):
            registry.read("nope", REDUCE_INPUT, 0)

    def test_overwrite_for_reconstruction(self, registry):
        registry.add_entry("S1P1", REDUCE_INPUT, 0, 10, "old")
        registry.add_entry("S1P1", REDUCE_INPUT, 0, 20, "new")
        payload, size = registry.read("S1P1", REDUCE_INPUT, 0)
        assert (payload, size) == ("new", 20)

    def test_cached_bytes(self, registry):
        registry.add_entry("a", REDUCE_INPUT, 0, 10, None)
        registry.add_entry("b", REDUCE_OUTPUT, 0, 32, None)
        assert registry.cached_bytes == 42

    def test_file_naming_convention(self):
        assert cache_file_name("S1P3", REDUCE_INPUT, 5) == "cache/rin/S1P3/part-00005"
        assert cache_file_name("S1P3", REDUCE_OUTPUT, 5) == "cache/rout/S1P3/part-00005"


class TestExpiration:
    def test_mark_expired_flags_matching_pids(self, registry):
        registry.add_entry("S1P1", REDUCE_INPUT, 0, 10, None)
        registry.add_entry("S1P1", REDUCE_OUTPUT, 0, 10, None)
        registry.add_entry("S1P2", REDUCE_INPUT, 0, 10, None)
        assert registry.mark_expired(["S1P1"]) == 2
        assert not registry.has("S1P1", REDUCE_INPUT, 0)
        assert registry.has("S1P2", REDUCE_INPUT, 0)

    def test_mark_expired_idempotent(self, registry):
        registry.add_entry("S1P1", REDUCE_INPUT, 0, 10, None)
        registry.mark_expired(["S1P1"])
        assert registry.mark_expired(["S1P1"]) == 0

    def test_expired_data_stays_until_purge(self, registry, node):
        entry = registry.add_entry("S1P1", REDUCE_INPUT, 0, 10, None)
        registry.mark_expired(["S1P1"])
        assert node.has_local(entry.local_name)  # data not yet deleted


class TestPurging:
    def test_periodic_purge_respects_cycle(self, registry, node):
        entry = registry.add_entry("S1P1", REDUCE_INPUT, 0, 10, None)
        registry.mark_expired(["S1P1"])
        assert registry.periodic_purge(now=50.0) == []  # cycle not elapsed
        purged = registry.periodic_purge(now=150.0)
        assert [e.pid for e in purged] == ["S1P1"]
        assert not node.has_local(entry.local_name)

    def test_periodic_purge_only_removes_expired(self, registry):
        registry.add_entry("live", REDUCE_INPUT, 0, 10, None)
        registry.add_entry("dead", REDUCE_INPUT, 0, 10, None)
        registry.mark_expired(["dead"])
        purged = registry.periodic_purge(now=200.0)
        assert [e.pid for e in purged] == ["dead"]
        assert registry.has("live", REDUCE_INPUT, 0)

    def test_on_demand_purge_ignores_cycle(self, registry):
        registry.add_entry("x", REDUCE_INPUT, 0, 10, None)
        registry.mark_expired(["x"])
        assert [e.pid for e in registry.on_demand_purge()] == ["x"]

    def test_maybe_purge_on_demand_when_over_capacity(self, node):
        registry = LocalCacheRegistry(node, purge_cycle=1e9, capacity_bytes=15)
        registry.add_entry("a", REDUCE_INPUT, 0, 10, None)
        registry.add_entry("b", REDUCE_INPUT, 0, 10, None)
        registry.mark_expired(["a"])
        # Over capacity (20 > 15): purge immediately despite the cycle.
        purged = registry.maybe_purge(now=1.0)
        assert [e.pid for e in purged] == ["a"]

    def test_maybe_purge_periodic_under_capacity(self, node):
        registry = LocalCacheRegistry(node, purge_cycle=100.0, capacity_bytes=1000)
        registry.add_entry("a", REDUCE_INPUT, 0, 10, None)
        registry.mark_expired(["a"])
        assert registry.maybe_purge(now=1.0) == []  # too early, under budget
        assert len(registry.maybe_purge(now=150.0)) == 1

    def test_maybe_purge_compares_cached_not_local_bytes(self, node):
        """Non-cache local data must not trigger on-demand purging.

        The node also hosts HDFS blocks, shuffle runs, and tmp spills;
        the budget governs *cache* bytes only. A registry that compared
        ``node.local_bytes`` would sweep expired caches early whenever
        unrelated local data pushed the node past the budget.
        """
        registry = LocalCacheRegistry(node, purge_cycle=1e9, capacity_bytes=1000)
        registry.add_entry("a", REDUCE_INPUT, 0, 10, None)
        registry.mark_expired(["a"])
        node.store_local("tmp/unrelated", 5000, None, created_at=0.0)
        assert node.local_bytes > registry.capacity_bytes
        assert registry.cached_bytes <= registry.capacity_bytes
        assert registry.maybe_purge(now=1.0) == []  # cycle gates, budget ok

    def test_over_budget_noop_sweep_counted(self, node):
        from repro.hadoop import Counters

        counters = Counters()
        registry = LocalCacheRegistry(
            node, purge_cycle=1e9, capacity_bytes=15, counters=counters
        )
        registry.add_entry("a", REDUCE_INPUT, 0, 10, None)
        registry.add_entry("b", REDUCE_INPUT, 0, 10, None)
        # Over budget but nothing expired: the sweep reclaims nothing
        # and says so, instead of silently returning [].
        assert registry.maybe_purge(now=1.0) == []
        assert counters.get("cache.purge_noop") == 1

    def test_on_demand_before_periodic_when_both_due(self, node):
        """Over budget *and* cycle elapsed: the on-demand path wins.

        Expired entries are swept exactly once either way; a follow-up
        sweep (now under budget, periodic path) finds nothing left.
        """
        registry = LocalCacheRegistry(node, purge_cycle=50.0, capacity_bytes=15)
        registry.add_entry("a", REDUCE_INPUT, 0, 10, None)
        registry.add_entry("b", REDUCE_INPUT, 0, 10, None)
        registry.mark_expired(["a"])
        purged = registry.maybe_purge(now=100.0)
        assert [e.pid for e in purged] == ["a"]
        assert registry.maybe_purge(now=101.0) == []

    def test_eviction_candidates_skip_expired_and_unbacked(self, node):
        registry = LocalCacheRegistry(node, purge_cycle=100.0)
        registry.add_entry("live", REDUCE_INPUT, 0, 10, None)
        registry.add_entry("dead", REDUCE_INPUT, 0, 10, None)
        gone = registry.add_entry("gone", REDUCE_INPUT, 0, 10, None)
        registry.mark_expired(["dead"])
        node.delete_local(gone.local_name)
        assert [e.pid for e in registry.eviction_candidates()] == ["live"]


class TestFailureBookkeeping:
    def test_drop_lost_forgets_entry(self, registry):
        registry.add_entry("S1P1", REDUCE_INPUT, 0, 10, None)
        registry.drop_lost("S1P1", REDUCE_INPUT, 0)
        assert not registry.has("S1P1", REDUCE_INPUT, 0)
        # dropping again is harmless
        registry.drop_lost("S1P1", REDUCE_INPUT, 0)

    def test_forget_all(self, registry):
        registry.add_entry("a", REDUCE_INPUT, 0, 10, None)
        registry.add_entry("b", REDUCE_OUTPUT, 1, 10, None)
        registry.forget_all()
        assert registry.entries() == []

    def test_has_false_when_backing_file_destroyed(self, registry, node):
        entry = registry.add_entry("S1P1", REDUCE_INPUT, 0, 10, None)
        node.delete_local(entry.local_name)
        assert not registry.has("S1P1", REDUCE_INPUT, 0)
