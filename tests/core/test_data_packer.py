"""Unit tests for the Dynamic Data Packer."""

from __future__ import annotations

import pytest

from repro.core.data_packer import HEADER_BYTES, DynamicDataPacker
from repro.core.panes import WindowSpec
from repro.core.semantic_analyzer import PartitionPlan
from repro.hadoop.catalog import BatchFile
from repro.hadoop.config import small_test_config
from repro.hadoop.hdfs import SimulatedHDFS
from repro.hadoop.types import Record


def _records(t0: float, t1: float, n: int, size: int = 100):
    dt = (t1 - t0) / n
    return [Record(ts=t0 + i * dt, value=i, size=size) for i in range(n)]


def _batch(i: int, t0: float, t1: float, source="S1"):
    return BatchFile(path=f"/b/{source}/{i}", source=source, t_start=t0, t_end=t1)


def make_packer(panes_per_file=1, pane_seconds=10.0, use_header=True):
    hdfs = SimulatedHDFS(small_test_config(), seed=2)
    spec = WindowSpec(win=pane_seconds * 3, slide=pane_seconds)
    plan = PartitionPlan(
        source="S1",
        pane_seconds=pane_seconds,
        panes_per_file=panes_per_file,
        expected_pane_bytes=1000.0,
    )
    return hdfs, DynamicDataPacker(hdfs, spec, plan, use_header=use_header)


class TestValidation:
    def test_plan_spec_pane_mismatch_rejected(self):
        hdfs = SimulatedHDFS(small_test_config(), seed=2)
        spec = WindowSpec(win=30.0, slide=10.0)  # pane = 10
        plan = PartitionPlan(
            source="S1", pane_seconds=5.0, panes_per_file=1,
            expected_pane_bytes=1.0,
        )
        with pytest.raises(ValueError):
            DynamicDataPacker(hdfs, spec, plan)

    def test_wrong_source_rejected(self):
        _hdfs, packer = make_packer()
        with pytest.raises(ValueError):
            packer.ingest_batch(_batch(0, 0, 10, source="S2"), [])

    def test_out_of_order_batch_rejected(self):
        _hdfs, packer = make_packer()
        packer.ingest_batch(_batch(0, 0.0, 10.0), _records(0, 10, 5))
        with pytest.raises(ValueError):
            packer.ingest_batch(_batch(1, 5.0, 15.0), [])

    def test_record_outside_batch_rejected(self):
        _hdfs, packer = make_packer()
        with pytest.raises(ValueError):
            packer.ingest_batch(
                _batch(0, 0.0, 10.0), [Record(ts=12.0, value=None)]
            )


class TestOversizeCase:
    def test_one_pane_one_file(self):
        hdfs, packer = make_packer(panes_per_file=1)
        packed = packer.ingest_batch(_batch(0, 0.0, 10.0), _records(0, 10, 8))
        assert len(packed) == 1
        pane = packed[0]
        assert pane.index == 0
        assert pane.pid == "S1P0"
        assert pane.path.endswith("S1P0")
        assert hdfs.exists(pane.path)
        assert not packer.is_shared(0)

    def test_batch_spanning_multiple_panes(self):
        _hdfs, packer = make_packer(panes_per_file=1)
        packed = packer.ingest_batch(_batch(0, 0.0, 30.0), _records(0, 30, 12))
        assert [p.index for p in packed] == [0, 1, 2]

    def test_partial_pane_not_sealed(self):
        _hdfs, packer = make_packer(panes_per_file=1)
        packed = packer.ingest_batch(_batch(0, 0.0, 5.0), _records(0, 5, 3))
        assert packed == []
        assert not packer.is_packed(0)
        # Completing the pane seals it.
        packed = packer.ingest_batch(_batch(1, 5.0, 10.0), _records(5, 10, 3))
        assert [p.index for p in packed] == [0]
        assert packer.pane(0).num_records == 6

    def test_read_pane_charges_pane_bytes(self):
        _hdfs, packer = make_packer(panes_per_file=1)
        packer.ingest_batch(_batch(0, 0.0, 10.0), _records(0, 10, 4, size=50))
        records, nbytes = packer.read_pane(0)
        assert len(records) == 4
        assert nbytes == 200

    def test_available_at_is_seal_time(self):
        _hdfs, packer = make_packer(panes_per_file=1)
        packed = packer.ingest_batch(_batch(0, 0.0, 12.0), _records(0, 12, 6))
        assert packed[0].available_at == 12.0


class TestUndersizedCase:
    def test_group_written_when_complete(self):
        hdfs, packer = make_packer(panes_per_file=2)
        assert packer.ingest_batch(_batch(0, 0.0, 10.0), _records(0, 10, 4)) == []
        packed = packer.ingest_batch(_batch(1, 10.0, 20.0), _records(10, 20, 4))
        assert [p.index for p in packed] == [0, 1]
        assert packed[0].path.endswith("S1P0_1")
        assert packed[0].path == packed[1].path
        assert packer.is_shared(0) and packer.is_shared(1)

    def test_header_charges_only_pane_bytes(self):
        _hdfs, packer = make_packer(panes_per_file=2)
        packer.ingest_batch(_batch(0, 0.0, 20.0), _records(0, 20, 8, size=100))
        records, nbytes = packer.read_pane(0)
        assert len(records) == 4
        assert nbytes == 400 + HEADER_BYTES

    def test_no_header_charges_whole_file(self):
        _hdfs, packer = make_packer(panes_per_file=2, use_header=False)
        packer.ingest_batch(_batch(0, 0.0, 20.0), _records(0, 20, 8, size=100))
        _records_, nbytes = packer.read_pane(0)
        assert nbytes == 800

    def test_flush_splits_partial_group(self):
        """A due execution forces the sealed remainder of a group out."""
        _hdfs, packer = make_packer(panes_per_file=2)
        packer.ingest_batch(_batch(0, 0.0, 10.0), _records(0, 10, 4))
        packed = packer.flush()
        assert [p.index for p in packed] == [0]
        assert packed[0].path.endswith("S1P0")  # single-pane file name
        # The group's second pane later lands in its own file.
        packed = packer.ingest_batch(_batch(1, 10.0, 20.0), _records(10, 20, 4))
        assert [p.index for p in packed] == [1]
        assert packed[0].path.endswith("S1P1")

    def test_flush_without_sealed_panes_is_noop(self):
        _hdfs, packer = make_packer(panes_per_file=2)
        packer.ingest_batch(_batch(0, 0.0, 5.0), _records(0, 5, 2))
        assert packer.flush() == []


class TestPaneAccess:
    def test_unpacked_pane_raises(self):
        _hdfs, packer = make_packer()
        with pytest.raises(KeyError):
            packer.pane(0)
        with pytest.raises(KeyError):
            packer.read_pane(0)
        with pytest.raises(KeyError):
            packer.is_shared(0)

    def test_packed_panes_sorted(self):
        _hdfs, packer = make_packer()
        packer.ingest_batch(_batch(0, 0.0, 30.0), _records(0, 30, 9))
        assert [p.index for p in packer.packed_panes()] == [0, 1, 2]

    def test_covered_until_tracks_batches(self):
        _hdfs, packer = make_packer()
        assert packer.covered_until == 0.0
        packer.ingest_batch(_batch(0, 0.0, 7.0), _records(0, 7, 3))
        assert packer.covered_until == 7.0

    def test_empty_pane_allowed(self):
        """A time range with no records still seals (empty pane file)."""
        _hdfs, packer = make_packer()
        packed = packer.ingest_batch(_batch(0, 0.0, 10.0), [])
        assert [p.index for p in packed] == [0]
        records, nbytes = packer.read_pane(0)
        assert records == ()
        assert nbytes == 0

    def test_records_bucketed_by_timestamp(self):
        _hdfs, packer = make_packer()
        recs = [
            Record(ts=3.0, value="a"),
            Record(ts=15.0, value="b"),
            Record(ts=7.0, value="c"),
        ]
        packer.ingest_batch(_batch(0, 0.0, 20.0), recs)
        pane0, _ = packer.read_pane(0)
        pane1, _ = packer.read_pane(1)
        assert [r.value for r in pane0] == ["a", "c"]
        assert [r.value for r in pane1] == ["b"]
