"""Per-node failure scoring and scheduler blacklisting."""

from __future__ import annotations

import pytest

from repro.core.scheduler import CacheAwareTaskScheduler, MapTaskRequest
from repro.hadoop import Cluster, small_test_config
from repro.hadoop.counters import Counters
from repro.hadoop.types import MEGABYTE


THRESHOLD = 3  # small_test_config default blacklist_threshold
COOLDOWN = 300.0  # small_test_config default blacklist_cooldown


@pytest.fixture
def cluster() -> Cluster:
    config = small_test_config()
    assert config.blacklist_threshold == THRESHOLD
    assert config.blacklist_cooldown == COOLDOWN
    return Cluster(config, seed=5)


@pytest.fixture
def counters() -> Counters:
    return Counters()


@pytest.fixture
def scheduler(cluster, counters) -> CacheAwareTaskScheduler:
    return CacheAwareTaskScheduler(cluster, counters=counters)


def map_request(locations=()):
    return MapTaskRequest(
        query="q",
        pid="S1P0",
        input_bytes=8 * MEGABYTE,
        locations=tuple(locations),
    )


class TestScoring:
    def test_below_threshold_not_blacklisted(self, scheduler):
        for _ in range(THRESHOLD - 1):
            scheduler.record_task_failure(1, now=10.0)
        assert not scheduler.is_blacklisted(1, now=10.0)
        assert scheduler.blacklisted_nodes(now=10.0) == []

    def test_crossing_threshold_blacklists(self, scheduler, counters):
        for _ in range(THRESHOLD):
            scheduler.record_task_failure(1, now=10.0)
        assert scheduler.is_blacklisted(1, now=10.0)
        assert scheduler.blacklisted_nodes(now=10.0) == [1]
        assert counters.get("sched.nodes_blacklisted") == 1

    def test_fractional_failures_accumulate(self, scheduler):
        scheduler.record_task_failure(2, now=0.0, failures=1.5)
        assert not scheduler.is_blacklisted(2, now=0.0)
        scheduler.record_task_failure(2, now=0.0, failures=1.5)
        assert scheduler.is_blacklisted(2, now=0.0)

    def test_scores_are_per_node(self, scheduler):
        for _ in range(THRESHOLD):
            scheduler.record_task_failure(1, now=0.0)
        assert scheduler.is_blacklisted(1, now=0.0)
        assert not scheduler.is_blacklisted(2, now=0.0)


class TestEq4Interaction:
    def test_selection_avoids_blacklisted_node(self, scheduler):
        # Node 2 holds the data, so Eq. 4 would pick it absent failures.
        assert (
            scheduler.select_map_node(map_request(locations=[2]), now=0.0)
            .node_id
            == 2
        )
        for _ in range(THRESHOLD):
            scheduler.record_task_failure(2, now=0.0)
        node = scheduler.select_map_node(map_request(locations=[2]), now=0.0)
        assert node.node_id != 2

    def test_all_blacklisted_degrades_to_all_live(self, scheduler, cluster):
        for node in cluster.live_nodes():
            for _ in range(THRESHOLD):
                scheduler.record_task_failure(node.node_id, now=0.0)
        # Every node excluded would deadlock the cluster; selection
        # must still return something.
        node = scheduler.select_map_node(map_request(), now=0.0)
        assert node.node_id in {n.node_id for n in cluster.live_nodes()}


class TestCooldown:
    def test_cooldown_expiry_unblacklists_and_resets(
        self, scheduler, counters
    ):
        for _ in range(THRESHOLD):
            scheduler.record_task_failure(1, now=0.0)
        assert scheduler.is_blacklisted(1, now=COOLDOWN - 1.0)
        assert not scheduler.is_blacklisted(1, now=COOLDOWN + 1.0)
        assert counters.get("sched.nodes_unblacklisted") == 1
        # The score reset with the expiry: one new failure is not
        # enough to re-blacklist.
        scheduler.record_task_failure(1, now=COOLDOWN + 2.0)
        assert not scheduler.is_blacklisted(1, now=COOLDOWN + 2.0)

    def test_reoffending_node_can_be_blacklisted_again(self, scheduler):
        for _ in range(THRESHOLD):
            scheduler.record_task_failure(1, now=0.0)
        assert not scheduler.is_blacklisted(1, now=COOLDOWN + 1.0)
        for _ in range(THRESHOLD):
            scheduler.record_task_failure(1, now=COOLDOWN + 5.0)
        assert scheduler.is_blacklisted(1, now=COOLDOWN + 5.0)
