"""Bounded cache budgets: admission control + window-aware eviction.

Policy units run against hand-built registries; the integration tests
run the wordcount runtime under budgets derived from its own measured
unbounded peak, asserting the budget holds at every step and that a
budget may cost recomputation but never changes a window's answer.
"""

from __future__ import annotations

import pytest

from repro.core import (
    EVICTION_POLICIES,
    LifespanPolicy,
    LruPolicy,
    RedoopRuntime,
    make_policy,
)
from repro.core.cache_registry import (
    REDUCE_INPUT,
    REDUCE_OUTPUT,
    LocalCacheRegistry,
)
from repro.core.eviction import select_victims
from repro.hadoop import Cluster, small_test_config
from repro.hadoop.node import TaskNode

from .test_runtime import RATE, feed, make_query


def make_registry(*entries):
    """Registry holding ``(pid, type, partition, size)`` rows in order.

    ``add_entry`` stamps each row with the next use-sequence number, so
    insertion order *is* recency order (oldest first).
    """
    registry = LocalCacheRegistry(
        TaskNode(0, map_slots=2, reduce_slots=1), purge_cycle=100.0
    )
    for pid, cache_type, partition, size in entries:
        registry.add_entry(pid, cache_type, partition, size, None)
    return registry


class TestPolicies:
    def test_factory_covers_every_policy(self):
        for name in EVICTION_POLICIES:
            assert make_policy(name).name == name

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError, match="ghost"):
            make_policy("ghost")

    def test_lru_ranks_least_recently_used_first(self):
        registry = make_registry(
            ("a", REDUCE_INPUT, 0, 10),
            ("b", REDUCE_OUTPUT, 0, 10),
            ("c", REDUCE_INPUT, 0, 10),
        )
        registry.read("a", REDUCE_INPUT, 0)  # refresh "a"
        ranked = LruPolicy().rank(registry.eviction_candidates(), lambda p: 0)
        assert [e.pid for e in ranked] == ["b", "c", "a"]

    def test_lifespan_ranks_fewest_remaining_uses_first(self):
        registry = make_registry(
            ("hot", REDUCE_INPUT, 0, 10),
            ("cold", REDUCE_INPUT, 0, 10),
        )
        uses = {"hot": 3, "cold": 0}
        ranked = LifespanPolicy().rank(
            registry.eviction_candidates(), lambda pid: uses[pid]
        )
        # cold scores 0 (no window still needs it) despite equal size
        # and being older-agnostic; hot scores 30.
        assert [e.pid for e in ranked] == ["cold", "hot"]

    def test_lifespan_breaks_score_ties_by_recency(self):
        registry = make_registry(
            ("a", REDUCE_INPUT, 0, 10),
            ("b", REDUCE_INPUT, 0, 10),
        )
        ranked = LifespanPolicy().rank(
            registry.eviction_candidates(), lambda pid: 1
        )
        assert [e.pid for e in ranked] == ["a", "b"]

    def test_select_victims_takes_minimal_prefix(self):
        registry = make_registry(
            ("a", REDUCE_INPUT, 0, 10),
            ("b", REDUCE_INPUT, 0, 10),
            ("c", REDUCE_INPUT, 0, 10),
        )
        victims = select_victims(
            LruPolicy(), registry.eviction_candidates(), 15, lambda p: 0
        )
        assert [e.pid for e in victims] == ["a", "b"]

    def test_select_victims_may_fall_short(self):
        registry = make_registry(("a", REDUCE_INPUT, 0, 10))
        victims = select_victims(
            LruPolicy(), registry.eviction_candidates(), 100, lambda p: 0
        )
        # Caller must check the total and reject the write instead.
        assert sum(e.size for e in victims) < 100

    def test_rank_is_deterministic(self):
        registry = make_registry(
            ("b", REDUCE_INPUT, 1, 10),
            ("a", REDUCE_OUTPUT, 0, 10),
        )
        for policy in (LruPolicy(), LifespanPolicy()):
            first = policy.rank(registry.eviction_candidates(), lambda p: 1)
            again = policy.rank(registry.eviction_candidates(), lambda p: 1)
            assert [(e.pid, e.cache_type) for e in first] == [
                (e.pid, e.cache_type) for e in again
            ]


def run_windows(cap=None, policy="lru", windows=(1, 2, 3)):
    """Feed 70 s, run ``windows``, return (runtime, outputs, peak)."""
    runtime = RedoopRuntime(
        Cluster(small_test_config(), seed=3),
        cache_capacity_bytes=cap,
        eviction_policy=policy,
    )
    runtime.register_query(make_query(), {"S1": RATE})
    feed(runtime, 70.0)
    outputs = []
    for k in windows:
        outputs.append(tuple(runtime.run_recurrence("wc", k).output))
        if cap is not None:
            for node_id, registry in runtime.registries().items():
                assert registry.cached_bytes <= cap, (
                    f"node {node_id} over budget after window {k}"
                )
    peak = max(
        (r.peak_cached_bytes for r in runtime.registries().values()),
        default=0,
    )
    return runtime, outputs, peak


class TestBoundedRuntime:
    @pytest.fixture(scope="class")
    def unbounded(self):
        return run_windows()

    def test_half_budget_evicts_but_answers_match(self, unbounded):
        _, reference, peak = unbounded
        cap = peak // 2
        runtime, outputs, _ = run_windows(cap=cap)
        assert outputs == reference
        assert runtime.counters.get("cache.evicted") > 0
        assert runtime.counters.get("cache.bytes_evicted") > 0

    @pytest.mark.parametrize("policy", list(EVICTION_POLICIES))
    def test_every_policy_preserves_answers(self, unbounded, policy):
        _, reference, peak = unbounded
        _, outputs, _ = run_windows(cap=peak // 2, policy=policy)
        assert outputs == reference

    def test_tiny_budget_rejects_admissions_but_answers_match(
        self, unbounded
    ):
        _, reference, _ = unbounded
        runtime, outputs, _ = run_windows(cap=200)
        assert outputs == reference
        assert runtime.counters.get("cache.admission_rejected") > 0

    def test_eviction_is_deterministic(self, unbounded):
        _, _, peak = unbounded
        first, _, _ = run_windows(cap=peak // 2)
        again, _, _ = run_windows(cap=peak // 2)
        assert first.counters.as_dict() == again.counters.as_dict()

    def test_bounded_run_passes_chaos_invariants(self, unbounded):
        from repro.chaos.invariants import check_invariants

        _, _, peak = unbounded
        runtime, _, _ = run_windows(cap=peak // 2)
        assert check_invariants(runtime) == []

    def test_budget_from_cluster_config(self, unbounded):
        _, reference, peak = unbounded
        config = small_test_config().with_overrides(
            cache_capacity_bytes=peak // 2,
            cache_eviction_policy="lifespan",
        )
        runtime = RedoopRuntime(Cluster(config, seed=3))
        assert runtime.cache_capacity_bytes == peak // 2
        assert runtime.eviction_policy.name == "lifespan"
        runtime.register_query(make_query(), {"S1": RATE})
        feed(runtime, 70.0)
        outputs = [
            tuple(runtime.run_recurrence("wc", k).output) for k in (1, 2, 3)
        ]
        assert outputs == reference

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RedoopRuntime(
                Cluster(small_test_config(), seed=3), cache_capacity_bytes=0
            )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            RedoopRuntime(
                Cluster(small_test_config(), seed=3), eviction_policy="fifo"
            )
