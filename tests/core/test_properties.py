"""Cross-cutting property-based tests for the core layer."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache_controller import (
    CACHE_AVAILABLE,
    HDFS_AVAILABLE,
    WindowAwareCacheController,
)
from repro.core.cache_registry import REDUCE_INPUT, LocalCacheRegistry
from repro.core.data_packer import DynamicDataPacker
from repro.core.panes import WindowSpec
from repro.core.semantic_analyzer import PartitionPlan
from repro.hadoop.catalog import BatchFile
from repro.hadoop.config import small_test_config
from repro.hadoop.hdfs import SimulatedHDFS
from repro.hadoop.node import TaskNode
from repro.hadoop.types import Record


class TestControllerReadyConsistency:
    """pane_ready == CACHE_AVAILABLE iff at least one cache placement exists."""

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["create", "lose"]),
                st.integers(0, 2),   # partition
                st.integers(0, 3),   # node
            ),
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_ready_bit_tracks_placements(self, ops):
        controller = WindowAwareCacheController()
        controller.register_query(
            "q", {"S1": WindowSpec(win=40.0, slide=10.0)}
        )
        pid = "S1P0"
        controller.pane_arrived(pid)
        live = set()
        for op, partition, node in ops:
            if op == "create":
                controller.cache_created(pid, REDUCE_INPUT, partition, node)
                live.add(partition)
            else:
                controller.cache_lost(pid, REDUCE_INPUT, partition)
                live.discard(partition)
            expected = CACHE_AVAILABLE if live else HDFS_AVAILABLE
            assert controller.pane_ready(pid) == expected


class TestPackerCoverage:
    """Every ingested record lands in exactly one pane, by timestamp."""

    @given(
        batch_cuts=st.lists(
            st.floats(0.5, 39.5), min_size=0, max_size=5, unique=True
        ),
        timestamps=st.lists(st.floats(0.0, 39.99), min_size=1, max_size=40),
        ppf=st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_records_partitioned_exactly(self, batch_cuts, timestamps, ppf):
        hdfs = SimulatedHDFS(small_test_config(), seed=1)
        spec = WindowSpec(win=30.0, slide=10.0)
        plan = PartitionPlan(
            source="S1", pane_seconds=10.0, panes_per_file=ppf,
            expected_pane_bytes=1000.0,
        )
        packer = DynamicDataPacker(hdfs, spec, plan)
        bounds = [0.0] + sorted(batch_cuts) + [40.0]
        records = [Record(ts=t, value=i, size=10) for i, t in enumerate(sorted(timestamps))]
        for i, (t0, t1) in enumerate(zip(bounds, bounds[1:])):
            if t1 - t0 < 1e-9:
                continue
            chunk = [r for r in records if t0 <= r.ts < t1]
            packer.ingest_batch(
                BatchFile(path=f"/b/{i}", source="S1", t_start=t0, t_end=t1),
                chunk,
            )
        packer.flush()
        seen = []
        for idx in range(4):
            pane_records, _bytes = packer.read_pane(idx)
            for r in pane_records:
                assert spec.pane_of_time(r.ts) == idx
                seen.append(r.value)
        assert sorted(seen) == [r.value for r in records]


class TestRegistryPurgeSafety:
    """Purging never removes a live (unexpired) entry."""

    @given(
        entries=st.lists(
            st.tuples(st.integers(0, 5), st.sampled_from([1, 2])),
            min_size=1,
            max_size=15,
        ),
        expired=st.sets(st.integers(0, 5)),
    )
    @settings(max_examples=50, deadline=None)
    def test_only_expired_purged(self, entries, expired):
        node = TaskNode(0, map_slots=1, reduce_slots=1)
        registry = LocalCacheRegistry(node, purge_cycle=1.0)
        for i, (pane, cache_type) in enumerate(entries):
            registry.add_entry(f"S1P{pane}", cache_type, i, 10, None)
        registry.mark_expired({f"S1P{p}" for p in expired})
        purged = registry.periodic_purge(now=100.0)
        for entry in purged:
            assert entry.pid in {f"S1P{p}" for p in expired}
        for entry in registry.entries():
            assert not entry.expiration  # everything expired is gone


class TestSpecConsistency:
    """Pane override never changes window boundaries or schedules."""

    @given(
        win_m=st.integers(1, 24),
        slide_m=st.integers(1, 24),
        div=st.sampled_from([1, 2, 3, 5]),
        k=st.integers(1, 10),
    )
    @settings(max_examples=60, deadline=None)
    def test_override_preserves_windows(self, win_m, slide_m, div, k):
        win, slide = max(win_m, slide_m) * 60.0, min(win_m, slide_m) * 60.0
        base = WindowSpec(win=win, slide=slide)
        pane_ms = round(base.pane_seconds * 1000)
        if pane_ms % div != 0:
            return  # override must divide the GCD exactly
        fine = base.with_pane(base.pane_seconds / div)
        assert fine.window_bounds(k) == base.window_bounds(k)
        assert fine.execution_time(k) == base.execution_time(k)
        base_panes = base.panes_in_window(k)
        fine_panes = fine.panes_in_window(k)
        assert len(fine_panes) == div * len(base_panes)
        # The fine panes tile exactly the same time range.
        assert fine.pane_bounds(fine_panes[0])[0] == base.pane_bounds(
            base_panes[0]
        )[0]
        assert fine.pane_bounds(fine_panes[-1])[1] == base.pane_bounds(
            base_panes[-1]
        )[1]
