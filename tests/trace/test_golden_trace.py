"""Golden-trace regression test.

Runs a small deterministic two-window aggregation and pins the shape of
the span spine it produces: the span tree levels, phase names, task
naming scheme, timestamp sanity, exporter validity, and agreement with
``WindowMetrics``. Any instrumentation regression — a phase span that
stops closing, tasks losing their parent, scheduler events vanishing —
fails here before it can silently corrupt exported traces.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentConfig, run_redoop_series
from repro.hadoop.config import small_test_config
from repro.hadoop.timeline import SchedulingDecision
from repro.trace import (
    CAT_PHASE,
    CAT_RECURRENCE,
    CAT_RUN,
    CAT_SCHED,
    CAT_TASK,
    PHASE_NAMES,
    chrome_trace_document,
    validate_chrome_trace,
    window_reports,
)


def golden_config() -> ExperimentConfig:
    return ExperimentConfig(
        kind="aggregation",
        win=40.0,
        overlap=0.75,
        num_windows=2,
        rate=2_000.0,
        record_size=100,
        num_reducers=4,
        cluster_config=small_test_config(),
        seed=11,
        batches_per_pane=2,
    )


@pytest.fixture(scope="module")
def result():
    return run_redoop_series(golden_config(), label="redoop")


@pytest.fixture(scope="module")
def tracer(result):
    assert result.tracer is not None
    return result.tracer


class TestSpanTree:
    def test_exactly_one_run_span(self, tracer):
        runs = tracer.spans(category=CAT_RUN)
        assert len(runs) == 1
        assert runs[0].name == "redoop-run"

    def test_one_recurrence_span_per_window(self, tracer, result):
        recs = tracer.spans(category=CAT_RECURRENCE)
        assert [r.attrs["window"] for r in recs] == [
            w.recurrence for w in result.windows
        ]
        run = tracer.spans(category=CAT_RUN)[0]
        assert all(r.parent_id == run.span_id for r in recs)

    def test_each_recurrence_has_all_five_phases(self, tracer):
        for rec in tracer.spans(category=CAT_RECURRENCE):
            phases = tracer.spans(category=CAT_PHASE, parent=rec)
            assert tuple(p.name for p in phases) == PHASE_NAMES

    def test_tasks_parent_to_phases_making_four_levels(self, tracer):
        # run -> recurrence -> phase -> task: the >=4 levels the issue pins.
        phase_ids = {p.span_id for p in tracer.spans(category=CAT_PHASE)}
        tasks = tracer.spans(category=CAT_TASK)
        assert tasks
        assert all(t.parent_id in phase_ids for t in tasks)

    def test_task_names_follow_the_scheme(self, tracer):
        prefixes = ("map/", "shuffle/", "pane-reduce/", "merge/", "join/")
        for task in tracer.spans(category=CAT_TASK):
            assert task.name.startswith(prefixes), task.name
            assert task.node_id is not None

    def test_timestamps_are_sane(self, tracer):
        run = tracer.spans(category=CAT_RUN)[0]
        for span in tracer.spans():
            assert span.end is not None, f"{span.name} never closed"
            assert span.end >= span.start >= 0.0
            assert run.start <= span.start and span.end <= run.end

    def test_recurrence_span_is_the_response_time(self, tracer, result):
        for rec, metrics in zip(
            tracer.spans(category=CAT_RECURRENCE), result.windows
        ):
            assert rec.duration == pytest.approx(metrics.response_time)
            assert rec.attrs["response_time"] == pytest.approx(
                metrics.response_time
            )


class TestSchedulerEvents:
    def test_decisions_ride_the_spine(self, tracer):
        events = tracer.events(category=CAT_SCHED)
        assert events, "scheduler decisions should be trace events"
        assert all(e.name.startswith("sched.") for e in events)
        assert all(isinstance(e.data, SchedulingDecision) for e in events)

    def test_algorithm2_vocabulary_present(self, tracer):
        names = {e.name for e in tracer.events(category=CAT_SCHED)}
        # Algorithm 2's pop -> select -> execute cycle, as event families.
        assert {"sched.pop", "sched.select", "sched.execute"} <= names


class TestExportAndReport:
    def test_exported_document_is_valid(self, tracer):
        doc = chrome_trace_document({"redoop": tracer})
        assert validate_chrome_trace(doc) == []

    def test_per_node_tracks_exist(self, tracer):
        doc = chrome_trace_document({"redoop": tracer})
        node_pids = {
            e["pid"]
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e["args"].get("category") == "task"
        }
        assert len(node_pids) >= 2, "tasks should span multiple node tracks"
        assert 0 not in node_pids, "tasks never live in the master process"

    def test_report_matches_window_metrics(self, tracer, result):
        reports = window_reports(tracer)
        assert len(reports) == len(result.windows)
        for report, metrics in zip(reports, result.windows):
            assert report.response_time == pytest.approx(metrics.response_time)
            assert report.finish == pytest.approx(metrics.finish_time, abs=1e-5)


class TestDeterminism:
    def test_identical_runs_produce_identical_spines(self):
        def fingerprint():
            tracer = run_redoop_series(golden_config(), label="redoop").tracer
            return [
                (s.name, s.category, s.node_id, round(s.start, 9),
                 round(s.end, 9))
                for s in tracer.spans()
            ]

        first, second = fingerprint(), fingerprint()
        assert first == second
