"""Tests for the Chrome-trace/Perfetto exporter."""

from __future__ import annotations

import json

import pytest

from repro.trace import (
    CAT_PHASE,
    CAT_RECURRENCE,
    CAT_RUN,
    CAT_TASK,
    Tracer,
    chrome_trace_document,
    export_chrome_trace,
    load_chrome_trace,
    validate_chrome_trace,
)
from repro.trace.chrome import PID_BLOCK


def small_tracer() -> Tracer:
    t = Tracer()
    run = t.begin("run", CAT_RUN, 0.0)
    rec = t.begin("w1", CAT_RECURRENCE, 10.0, parent=run, window=1)
    phase = t.begin("map", CAT_PHASE, 10.0, parent=rec)
    # Two tasks on the same node whose extents overlap -> two lanes.
    t.span("map/a", CAT_TASK, 10.0, 14.0, parent=phase, node_id=2, slot="map")
    t.span("map/b", CAT_TASK, 11.0, 13.0, parent=phase, node_id=2, slot="map")
    # A third that fits after the second finishes -> reuses a lane.
    t.span("map/c", CAT_TASK, 13.5, 15.0, parent=phase, node_id=2, slot="map")
    t.span("red/a", CAT_TASK, 14.0, 16.0, parent=rec, node_id=0, slot="reduce")
    t.end(phase, 14.0)
    t.end(rec, 16.0)
    t.end(run, 16.0)
    t.instant("node.failed", "fault", time=12.0, node_id=2)
    t.instant("sched.pop", "sched")  # timeless: must not be exported
    return t


class TestDocument:
    def test_document_validates(self):
        doc = chrome_trace_document(small_tracer())
        assert validate_chrome_trace(doc) == []

    def test_one_process_per_node_plus_master(self):
        doc = chrome_trace_document(small_tracer(), label="redoop")
        names = {
            e["pid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names[0] == "redoop (master)"
        assert names[1 + 2] == "redoop node-2"
        assert names[1 + 0] == "redoop node-0"

    def test_slot_contention_gets_distinct_lanes(self):
        doc = chrome_trace_document(small_tracer())
        tids = {
            e["name"]: e["tid"]
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e["name"].startswith("map/")
        }
        # a and b overlap -> different lanes; c starts after b -> reuses one.
        assert tids["map/a"] != tids["map/b"]
        assert tids["map/c"] in (tids["map/a"], tids["map/b"])

    def test_master_spans_live_in_master_process(self):
        doc = chrome_trace_document(small_tracer())
        by_name = {
            e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"
        }
        assert by_name["run"]["pid"] == 0
        assert by_name["w1"]["pid"] == 0
        assert by_name["map"]["pid"] == 0
        assert by_name["map/a"]["pid"] == 3

    def test_timeless_events_are_skipped(self):
        doc = chrome_trace_document(small_tracer())
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["node.failed"]

    def test_args_carry_span_links(self):
        doc = chrome_trace_document(small_tracer())
        by_name = {
            e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"
        }
        task = by_name["map/a"]["args"]
        phase = by_name["map"]["args"]
        assert task["parent"] == phase["span"]
        assert task["category"] == CAT_TASK

    def test_multi_series_pid_blocks(self):
        doc = chrome_trace_document(
            {"hadoop": small_tracer(), "redoop": small_tracer()}
        )
        assert doc["otherData"]["series"] == {
            "hadoop": 0,
            "redoop": PID_BLOCK,
        }
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert any(p >= PID_BLOCK for p in pids)
        assert validate_chrome_trace(doc) == []

    def test_empty_export_rejected(self):
        with pytest.raises(ValueError):
            chrome_trace_document({})


class TestFileRoundTrip:
    def test_export_and_load(self, tmp_path):
        path = str(tmp_path / "trace.json")
        count = export_chrome_trace(small_tracer(), path)
        assert count > 0
        doc = load_chrome_trace(path)
        assert len(doc["traceEvents"]) == count
        assert doc["otherData"]["exporter"] == "repro.trace.chrome"

    def test_load_rejects_garbage(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as fh:
            json.dump({"traceEvents": [{"ph": "Q"}]}, fh)
        with pytest.raises(ValueError):
            load_chrome_trace(path)


class TestValidator:
    def test_flags_bad_shapes(self):
        assert validate_chrome_trace([]) == ["top level must be an object"]
        assert validate_chrome_trace({}) == ["traceEvents must be a list"]
        problems = validate_chrome_trace(
            {
                "traceEvents": [
                    {"ph": "X", "name": "", "pid": 0, "tid": 0, "ts": -1},
                    {"ph": "i", "name": "x", "pid": "a", "tid": 0, "ts": 1},
                ]
            }
        )
        assert len(problems) >= 3
