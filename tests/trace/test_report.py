"""Tests for the per-window report consumer (``repro.trace.report``)."""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentConfig, run_redoop_series
from repro.hadoop.config import small_test_config
from repro.trace import (
    CAT_PHASE,
    CAT_RECURRENCE,
    CAT_RUN,
    CAT_TASK,
    Tracer,
    chrome_trace_document,
    format_window_reports,
    reports_as_rows,
    window_reports,
    window_reports_from_document,
)


def tiny_config(kind="aggregation", **kwargs):
    defaults = dict(
        kind=kind,
        win=40.0,
        overlap=0.75,
        num_windows=3,
        rate=2_000.0,
        record_size=100,
        num_reducers=4,
        cluster_config=small_test_config(),
        seed=11,
        batches_per_pane=2,
    )
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


def synthetic_tracer() -> Tracer:
    """Hand-built spine with one window, two phases, three tasks."""
    t = Tracer()
    run = t.begin("run", CAT_RUN, 0.0)
    rec = t.begin(
        "q@w1",
        CAT_RECURRENCE,
        40.0,
        parent=run,
        window=1,
        due=40.0,
        response_time=6.0,
        counters={"cache.pane_hits": 3, "panes.processed": 1},
    )
    mphase = t.begin("map", CAT_PHASE, 40.0, parent=rec)
    rphase = t.begin("pane-reduce", CAT_PHASE, 42.0, parent=rec)
    t.span("map/a#0", CAT_TASK, 40.0, 42.0, parent=mphase, node_id=0, slot="map")
    t.span("map/b#0", CAT_TASK, 40.0, 43.0, parent=mphase, node_id=1, slot="map")
    t.span(
        "pane-reduce/a/p0", CAT_TASK, 42.0, 46.0, parent=rphase, node_id=2,
        slot="reduce",
    )
    t.end(mphase, 43.0)
    t.end(rphase, 46.0)
    t.end(rec, 46.0)
    t.end(run, 46.0)
    return t


class TestSyntheticReport:
    def test_window_fields(self):
        (report,) = window_reports(synthetic_tracer(), series="s")
        assert report.series == "s"
        assert report.window == 1
        assert report.due == pytest.approx(40.0)
        assert report.finish == pytest.approx(46.0)
        assert report.response_time == pytest.approx(6.0)

    def test_phase_breakdown(self):
        (report,) = window_reports(synthetic_tracer())
        assert report.phases["map"] == pytest.approx(3.0)
        assert report.phases["pane-reduce"] == pytest.approx(4.0)

    def test_tasks_attach_to_their_phase(self):
        (report,) = window_reports(synthetic_tracer())
        assert len(report.tasks) == 3
        by_name = {t.name: t for t in report.tasks}
        assert by_name["map/a#0"].phase == "map"
        assert by_name["pane-reduce/a/p0"].phase == "pane-reduce"
        assert by_name["map/b#0"].node_id == 1

    def test_top_tasks_ranked_by_duration(self):
        (report,) = window_reports(synthetic_tracer())
        top = report.top_tasks(2)
        assert [t.name for t in top] == ["pane-reduce/a/p0", "map/b#0"]

    def test_cache_hit_ratio(self):
        (report,) = window_reports(synthetic_tracer())
        assert report.cache_hit_ratio() == pytest.approx(0.75)

    def test_no_collision_across_merged_series(self):
        # Two tracers with identical (colliding) span ids in one file:
        # every window must keep its own phases and tasks.
        doc = chrome_trace_document(
            {"left": synthetic_tracer(), "right": synthetic_tracer()}
        )
        reports = window_reports_from_document(doc)
        assert set(reports) == {"left", "right"}
        for series in ("left", "right"):
            (report,) = reports[series]
            assert len(report.tasks) == 3
            assert set(report.phases) == {"map", "pane-reduce"}


class TestLiveRunReport:
    @pytest.fixture(scope="class")
    def result(self):
        return run_redoop_series(tiny_config(num_windows=2), label="redoop")

    def test_response_times_match_window_metrics(self, result):
        reports = window_reports(result.tracer)
        assert len(reports) == len(result.windows)
        for report, metrics in zip(reports, result.windows):
            assert report.window == metrics.recurrence
            assert report.response_time == pytest.approx(
                metrics.response_time, abs=1e-6
            )

    def test_reports_have_phases_and_tasks(self, result):
        for report in window_reports(result.tracer):
            assert "map" in report.phases
            assert report.tasks, "window should carry task spans"

    def test_counters_snapshot_present(self, result):
        last = window_reports(result.tracer)[-1]
        assert last.counters.get("map.tasks", 0) > 0


class TestRendering:
    def test_format_text(self):
        text = format_window_reports(window_reports(synthetic_tracer()), top_k=2)
        assert "--- series:" in text
        assert "window 1: due 40.0s, finish 46.0s, response 6.0s" in text
        assert "map 3.00s" in text
        assert "pane hits" in text
        assert "slowest 2 tasks:" in text

    def test_rows_json_shape(self):
        doc = chrome_trace_document({"s": synthetic_tracer()})
        rows = reports_as_rows(window_reports_from_document(doc))
        assert len(rows) == 1
        row = rows[0]
        assert row["series"] == "s"
        assert row["response_time"] == pytest.approx(6.0)
        assert row["cache_hit_ratio"] == pytest.approx(0.75)
        assert row["top_tasks"][0]["name"] == "pane-reduce/a/p0"
