"""Unit tests for the span spine (``repro.trace.spine``)."""

from __future__ import annotations

import pytest

from repro.trace import (
    CAT_PHASE,
    CAT_RECURRENCE,
    CAT_RUN,
    CAT_SCHED,
    CAT_TASK,
    PHASE_NAMES,
    Tracer,
)


class TestSpans:
    def test_begin_end_records_extent(self):
        t = Tracer()
        span = t.begin("run", CAT_RUN, 5.0)
        assert span.end is None
        assert span.duration == 0.0
        t.end(span, 9.0)
        assert span.duration == pytest.approx(4.0)

    def test_end_before_start_rejected(self):
        t = Tracer()
        span = t.begin("run", CAT_RUN, 5.0)
        with pytest.raises(ValueError):
            t.end(span, 4.0)

    def test_extend_never_shrinks(self):
        t = Tracer()
        span = t.begin("run", CAT_RUN, 0.0)
        t.extend(span, 10.0)
        t.extend(span, 3.0)
        assert span.end == 10.0

    def test_hierarchy_via_parent(self):
        t = Tracer()
        run = t.begin("run", CAT_RUN, 0.0)
        rec = t.begin("w1", CAT_RECURRENCE, 1.0, parent=run)
        phase = t.begin("map", CAT_PHASE, 1.0, parent=rec)
        task = t.span("map/x", CAT_TASK, 1.0, 2.0, parent=phase, node_id=3)
        assert t.children(run) == [rec]
        assert t.children(rec) == [phase]
        assert t.children(phase) == [task]
        assert task.node_id == 3
        assert t.get_span(task.span_id) is task

    def test_span_queries_filter(self):
        t = Tracer()
        run = t.begin("run", CAT_RUN, 0.0)
        t.begin("w1", CAT_RECURRENCE, 0.0, parent=run)
        t.begin("w2", CAT_RECURRENCE, 1.0, parent=run)
        assert len(t.spans(category=CAT_RECURRENCE)) == 2
        assert len(t.spans(category=CAT_RECURRENCE, parent=run)) == 2
        assert t.spans(category=CAT_RUN) == [run]

    def test_ids_are_unique(self):
        t = Tracer()
        ids = {t.begin(f"s{i}", CAT_TASK, 0.0).span_id for i in range(10)}
        ids |= {t.instant(f"e{i}", CAT_SCHED).event_id for i in range(10)}
        assert len(ids) == 20

    def test_envelope(self):
        t = Tracer()
        a = t.span("a", CAT_TASK, 2.0, 5.0)
        b = t.span("b", CAT_TASK, 1.0, 4.0)
        assert t.envelope([a, b]) == (1.0, 5.0)
        assert t.envelope([]) is None

    def test_phase_names_cover_the_paper_stages(self):
        assert PHASE_NAMES == ("map", "shuffle", "pane-reduce", "combine", "post")


class TestEvents:
    def test_instant_carries_payload_and_attrs(self):
        t = Tracer()
        payload = object()
        e = t.instant(
            "sched.pop", CAT_SCHED, time=3.0, node_id=1, data=payload, rank=2
        )
        assert e.data is payload
        assert e.attrs["rank"] == 2
        assert t.events(category=CAT_SCHED) == [e]

    def test_timeless_events_allowed(self):
        t = Tracer()
        e = t.instant("sched.pop", CAT_SCHED)
        assert e.time is None

    def test_clear_events_keeps_spans(self):
        t = Tracer()
        t.begin("run", CAT_RUN, 0.0)
        t.instant("sched.pop", CAT_SCHED, time=1.0)
        t.instant("node.failed", "fault", time=2.0)
        t.clear_events(CAT_SCHED)
        assert t.events(category=CAT_SCHED) == []
        assert len(t.events(category="fault")) == 1
        assert len(t.spans()) == 1

    def test_high_water_tracks_latest_time(self):
        t = Tracer()
        assert t.high_water() == 0.0
        t.span("a", CAT_TASK, 0.0, 7.0)
        t.instant("x", CAT_SCHED, time=9.0)
        assert t.high_water() == 9.0
