"""Service-layer reuse: rewrite-on-submit, checkpoint/restore survival."""

from __future__ import annotations

from pathlib import Path

from repro.bench.service import (
    ServiceScenario,
    build_server,
    drive_scenario,
)
from repro.reuse import ReuseStore
from repro.service import QueryServer

SCENARIO = ServiceScenario(tenants=3, recurrences=8, churn=False)


def reuse_counters(server) -> dict:
    return {
        name: value
        for name, value in server.counters.as_dict().items()
        if name.startswith("reuse.")
    }


class TestRewriteOnSubmit:
    def test_submissions_against_a_warm_store_are_rewritten(self):
        # Warm the store with one full run, then stand up a fresh server
        # on the same store: every tenant shares the scenario's operator
        # chain, so each submission finds stored plans to match.
        store = ReuseStore()
        drive_scenario(SCENARIO, build_server(SCENARIO, reuse_store=store))
        assert len(store) > 0
        server = build_server(SCENARIO, reuse_store=store)
        assert server.counters.as_dict()["reuse.rewrites"] == SCENARIO.tenants
        events = [
            e for e in server.tracer.events() if e.name == "reuse-rewrite"
        ]
        assert events and all(e.attrs["matches"] > 0 for e in events)

    def test_no_store_no_rewrite_counter(self):
        server = build_server(SCENARIO)
        assert "reuse.rewrites" not in server.counters.as_dict()

    def test_tenants_share_pane_artifacts(self):
        server = build_server(SCENARIO, reuse_store=ReuseStore())
        run = drive_scenario(SCENARIO, server)
        counters = reuse_counters(server)
        assert counters["reuse.hits"] > 0
        assert counters["reuse.panes_seeded"] > 0
        # Shared artifacts must not change any tenant's answers.
        baseline = drive_scenario(SCENARIO, build_server(SCENARIO))
        assert run.digests == baseline.digests


class TestCheckpointSurvival:
    def test_store_rides_checkpoints_and_keeps_serving(self, tmp_path):
        ckpt_dir = Path(tmp_path) / "ckpts"
        ckpt_dir.mkdir()
        server = build_server(
            SCENARIO,
            checkpoint_dir=ckpt_dir,
            checkpoint_every=1,
            reuse_store=ReuseStore(),
        )
        drive_scenario(SCENARIO, server, stop_after_recurrences=5)
        published = len(server.runtime.reuse)
        assert published > 0

        newest = sorted(ckpt_dir.glob("ckpt-r*.bin"))[-1]
        restored = QueryServer.restore(newest)
        store = restored.runtime.reuse
        assert store is not None
        assert len(store) == published
        assert store.hdfs is restored.runtime.cluster.hdfs

        # Finishing the drive on the restored server reproduces both the
        # clean with-store run and the store-free run byte-for-byte.
        resumed = drive_scenario(SCENARIO, restored)
        clean = drive_scenario(
            SCENARIO, build_server(SCENARIO, reuse_store=ReuseStore())
        )
        off = drive_scenario(SCENARIO, build_server(SCENARIO))
        assert resumed.digests == clean.digests == off.digests
        assert reuse_counters(restored)["reuse.hits"] > 0
